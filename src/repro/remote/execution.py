"""A uniform evaluator for remote-execution scenarios.

Every scheme in the paper faces the same test (§5.1, §5.2, §6-II): a
parent invokes a child on another machine/subsystem and passes names
as arguments — does each argument denote, for the child, what the
parent meant?  :func:`evaluate_remote_exec` runs that test for any
scheme (the scheme decides how the child's context was built) and
returns a comparable report; the E5/E6/E11 benches print one report
per scheme/policy.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.closure.meta import ContextRegistry
from repro.closure.rules import RReceiver
from repro.coherence.auditor import CoherenceAuditor, Verdict
from repro.coherence.definitions import EntityEquivalence, strict_identity
from repro.model.entities import Activity
from repro.model.names import NameLike
from repro.remote.arguments import argument_events

__all__ = ["RemoteExecReport", "evaluate_remote_exec"]


@dataclass
class RemoteExecReport:
    """Outcome of one remote-execution argument-passing test."""

    label: str
    total: int
    coherent: int
    weakly_coherent: int
    incoherent: int
    unresolved: int

    @property
    def coherence_rate(self) -> float:
        """Fraction of arguments that reached the intended entity
        (strongly or weakly)."""
        if self.total == 0:
            return 1.0
        return (self.coherent + self.weakly_coherent) / self.total

    def row(self) -> list[object]:
        """A report row: label, total, coherent, incoherent,
        unresolved, rate."""
        return [self.label, self.total, self.coherent, self.incoherent,
                self.unresolved, self.coherence_rate]

    def __str__(self) -> str:
        return (f"{self.label}: {self.coherent}/{self.total} coherent "
                f"({self.coherence_rate:.2f})")


def evaluate_remote_exec(registry: ContextRegistry, parent: Activity,
                         child: Activity, arguments: Iterable[NameLike],
                         label: str = "", *,
                         equivalence: EntityEquivalence = strict_identity,
                         ) -> RemoteExecReport:
    """Score argument passing from *parent* to an already-spawned
    remote *child*.

    Arguments are resolved in the child's own context — the
    ``R(receiver)`` rule, which is what every §5 scheme actually does;
    the *scheme's* job was to arrange the child's context so this
    works (invoker-root Newcastle, shared-graph prefixes, imported
    per-process namespaces...).
    """
    events = argument_events(registry, parent, child, arguments)
    auditor = CoherenceAuditor(RReceiver(registry), equivalence=equivalence)
    auditor.observe_all(events)
    summary = auditor.summary
    return RemoteExecReport(
        label=label or f"{parent.label}→{child.label}",
        total=summary.total,
        coherent=summary.count(Verdict.COHERENT),
        weakly_coherent=summary.count(Verdict.WEAKLY_COHERENT),
        incoherent=summary.count(Verdict.INCOHERENT),
        unresolved=summary.count(Verdict.UNRESOLVED),
    )
