"""Remote execution: argument passing, the uniform evaluator, and the
wire-protocol facility of section 6-II."""

from repro.remote.arguments import argument_events
from repro.remote.execution import RemoteExecReport, evaluate_remote_exec
from repro.remote.facility import (
    ExecOutcome,
    ExecServer,
    RemoteExecFacility,
)

__all__ = [
    "ExecOutcome",
    "ExecServer",
    "RemoteExecFacility",
    "RemoteExecReport",
    "argument_events",
    "evaluate_remote_exec",
]
