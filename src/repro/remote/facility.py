"""The remote-execution facility as a wire protocol (§6-II).

The scheme-level ``PerProcessSystem.remote_spawn`` creates the child
directly; this module is the *distributed* version the paper's phrase
"a powerful remote execution facility" implies: every machine runs an
:class:`ExecServer` process, and a parent requests execution by
sending it a message carrying

* the command label,
* the parent's **namespace recipe** — its mount table, by reference —
  which the server replays into the child's fresh namespace (the
  §6-II import that makes parameters coherent), and
* the argument names, which the child resolves on arrival (scored by
  the usual auditor machinery).

Requests, replies and argument resolutions all travel through the
simulator kernel, so exec latency is visible, a crashed target machine
surfaces as a timeout, and the whole flow interleaves with other
traffic.  Correctness property (tested): the child created over the
wire resolves every argument to exactly what
``PerProcessSystem.remote_spawn`` would have given it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SchemeError
from repro.model.entities import Activity, Entity
from repro.model.names import CompoundName, NameLike
from repro.namespaces.perprocess import PerProcessSystem
from repro.sim.events import ScheduledEvent
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.network import Machine
from repro.sim.process import SimProcess

__all__ = ["ExecOutcome", "ExecServer", "RemoteExecFacility"]


@dataclass
class ExecOutcome:
    """Result of one remote-exec request."""

    label: str
    child: Optional[Activity] = None
    #: Argument name → entity the child resolved it to (⊥E allowed).
    resolved_arguments: dict[str, Entity] = field(default_factory=dict)
    failed: bool = False
    reason: str = ""
    request_time: float = 0.0
    completed_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed and self.child is not None

    @property
    def latency(self) -> float:
        return self.completed_time - self.request_time


class ExecServer:
    """One machine's execution server: spawns children on request.

    The server is itself a simulator process; a request's child is
    created on the *server's* machine with a namespace assembled from
    the recipe in the message (mount-table replay plus the local
    mount), exactly the §6-II construction.
    """

    def __init__(self, facility: "RemoteExecFacility", machine: Machine):
        self.facility = facility
        self.machine = machine
        self.process = facility.simulator.spawn(
            machine, f"execd@{machine.label}")
        self.process.on_message(self._handle)
        self.requests_served = 0

    def _handle(self, _process: SimProcess, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "exec" not in payload:
            return
        request = payload["exec"]
        self.requests_served += 1
        child = self.facility.spawn_child(
            machine=self.machine,
            label=request["label"],
            mounts=request["mounts"],
            local_mount=request["local_mount"],
        )
        resolved = {
            str(name_): self.facility.system.resolve_for(child, name_)
            for name_ in request["arguments"]}
        self.process.send(message.sender, payload={"exec-reply": {
            "request_id": request["request_id"],
            "child": child,
            "resolved": resolved,
        }}, latency=self.facility.latency)


class RemoteExecFacility:
    """Client/server remote execution over a :class:`PerProcessSystem`.

    Args:
        simulator: Kernel carrying the protocol (machines used for
            exec must exist in it).
        system: The per-process naming scheme children are created in.
        timeout: Virtual time before an un-answered request fails.
    """

    def __init__(self, simulator: Simulator, system: PerProcessSystem,
                 latency: float = 1.0, timeout: float = 10.0):
        self.simulator = simulator
        self.system = system
        self.latency = latency
        self.timeout = timeout
        self._servers: dict[int, ExecServer] = {}
        #: machine label in the scheme → simulator Machine.
        self._machine_map: dict[str, Machine] = {}
        self._pending: dict[int, tuple[ExecOutcome,
                                       Callable[[ExecOutcome], None],
                                       ScheduledEvent]] = {}
        self._ids = itertools.count(1)
        self._clients: set[int] = set()

    # -- wiring ----------------------------------------------------------

    def host_machine(self, scheme_label: str,
                     machine: Machine) -> ExecServer:
        """Associate a scheme machine label with a simulator machine
        and start (or return) its exec server."""
        self._machine_map[scheme_label] = machine
        server = self._servers.get(id(machine))
        if server is None:
            server = ExecServer(self, machine)
            self._servers[id(machine)] = server
        return server

    def spawn_child(self, machine: Machine, label: str,
                    mounts: list[tuple[CompoundName, Entity]],
                    local_mount: Optional[str]) -> Activity:
        """Create the child (server side): fresh sim process adopted
        into the scheme with the replayed namespace."""
        scheme_label = next(
            (name for name, m in self._machine_map.items()
             if m is machine), None)
        if scheme_label is None:
            raise SchemeError(f"{machine.label} is not hosted")
        sim_child = self.simulator.spawn(machine, label)
        child = self.system.spawn(scheme_label, label,
                                  activity=sim_child)
        namespace = self.system.namespace_of(child)
        for path, node in mounts:
            namespace.attach(path, node)
        if local_mount is not None:
            namespace.attach(CompoundName.coerce(local_mount),
                             self.system.machine_tree(scheme_label).root)
        return child

    # -- client side ----------------------------------------------------------

    def request(self, parent: Activity, parent_process: SimProcess,
                target_scheme_machine: str, label: str,
                arguments: list[NameLike],
                completion: Callable[[ExecOutcome], None],
                local_mount: Optional[str] = "local") -> int:
        """Ask *target*'s exec server to run *label* with *arguments*.

        The parent's mount table is shipped in the request (the
        namespace import).  Returns the request id; *completion* fires
        once, from the kernel, with the :class:`ExecOutcome`.
        """
        machine = self._machine_map.get(target_scheme_machine)
        if machine is None:
            raise SchemeError(
                f"no exec server hosted for {target_scheme_machine!r}")
        server = self._servers[id(machine)]
        if parent_process.uid not in self._clients:
            parent_process.on_message(self._on_reply)
            self._clients.add(parent_process.uid)
        request_id = next(self._ids)
        outcome = ExecOutcome(label=label,
                              request_time=self.simulator.clock.now)
        mounts = self.system.namespace_of(parent).attachments()
        parent_process.send(server.process, payload={"exec": {
            "request_id": request_id,
            "label": label,
            "mounts": mounts,
            "local_mount": local_mount,
            "arguments": [CompoundName.coerce(a) for a in arguments],
        }}, latency=self.latency)
        timer = self.simulator.schedule(
            self.timeout, lambda: self._on_timeout(request_id),
            note=f"exec-timeout req#{request_id}")
        self._pending[request_id] = (outcome, completion, timer)
        return request_id

    def _on_reply(self, _process: SimProcess, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "exec-reply" not in payload:
            return
        reply = payload["exec-reply"]
        entry = self._pending.pop(reply["request_id"], None)
        if entry is None:
            return  # reply after timeout — the child exists but the
            # parent already gave up; nothing to corrupt.
        outcome, completion, timer = entry
        timer.cancel()
        outcome.child = reply["child"]
        outcome.resolved_arguments = dict(reply["resolved"])
        outcome.completed_time = self.simulator.clock.now
        completion(outcome)

    def _on_timeout(self, request_id: int) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return
        outcome, completion, _timer = entry
        outcome.failed = True
        outcome.reason = "timeout"
        outcome.completed_time = self.simulator.clock.now
        completion(outcome)

    def outstanding(self) -> int:
        """Requests still waiting for a reply."""
        return len(self._pending)
