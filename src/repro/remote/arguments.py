"""Passing names as arguments between activities.

"Systems such as Unix and Thoth execute a command by creating a new
process and passing arguments to it; the arguments can be names of
entities" (§4).  Whether the child sees what the parent meant is the
coherence question for the MESSAGE source.

:func:`argument_events` turns an argument list into resolution events
(sender = parent, resolver = child, intended = the parent's
denotation), ready for the :class:`~repro.coherence.auditor
.CoherenceAuditor` under any rule.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent
from repro.model.entities import Activity
from repro.model.names import CompoundName, NameLike
from repro.model.resolution import resolve

__all__ = ["argument_events"]


def argument_events(registry: ContextRegistry, parent: Activity,
                    child: Activity, names: Iterable[NameLike],
                    ) -> list[ResolutionEvent]:
    """Build MESSAGE resolution events for arguments passed
    parent→child.

    Each event's *intended* entity is the parent's own denotation of
    the name (the paper's "a name denoting an entity"); arguments the
    parent itself cannot resolve get no intent and are audited only
    for definedness.
    """
    parent_context = registry.context_of(parent)
    events: list[ResolutionEvent] = []
    for name_ in names:
        name_ = CompoundName.coerce(name_)
        intended = resolve(parent_context, name_)
        events.append(ResolutionEvent(
            name=name_,
            source=NameSource.MESSAGE,
            resolver=child,
            sender=parent,
            intended=intended if intended.is_defined() else None,
        ))
    return events
