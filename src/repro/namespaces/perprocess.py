"""The per-process view of naming (§6-II — Plan 9, extended Port).

"Each process has its own individual root node to which the naming
trees of subsystems known to the process are attached.  The
per-process view of naming decouples a process from the underlying
context of its execution site: a process executing on a subsystem may
use the context of another subsystem. ... this yields a flexible
naming environment which is used to construct a powerful remote
execution facility.  The remotely executing process can access files
on both its local and its parent's machines.  Thus, in spite of not
having global names, the approach allows us to provide coherence for
names passed as parameters from a parent process to its remote child."

A process's namespace is modelled as a *mount table*: a private root
directory plus an ordered list of attachments of subsystem trees.
Forking or importing a namespace replays the mount table into fresh
private directories — the attached subsystem trees themselves are
shared, so the copy resolves every attached name to the same entities
(coherence), while later attach/detach operations stay private.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemeError
from repro.model.context import Context, context_object
from repro.model.entities import Activity, Entity, ObjectEntity
from repro.model.names import CompoundName, NameLike
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree

__all__ = ["PerProcessNamespace", "PerProcessSystem"]


class PerProcessNamespace:
    """A private root directory plus an ordered mount table."""

    def __init__(self, sigma: GlobalState, label: str):
        self._sigma = sigma
        self.label = label
        self.root: ObjectEntity = context_object(f"ns:{label}")
        sigma.add(self.root)
        self._attachments: list[tuple[CompoundName, Entity]] = []
        # Directories owned by this namespace (the root and the
        # intermediates it creates); attach may only descend these.
        self._private: set[int] = {self.root.uid}

    def attach(self, path: NameLike, node: Entity) -> None:
        """Attach a subsystem tree node at *path* in this namespace.

        Intermediate directories along *path* are private to the
        namespace; attaching inside an attached subsystem is rejected
        (mutate the subsystem's own tree instead).
        """
        path = CompoundName.coerce(path).relative().require_nonempty()
        directory = self.root
        for component in path.parent.parts:
            context: Context = directory.state
            child = context(component)
            if not child.is_defined():
                child = context_object(component)
                self._sigma.add(child)
                self._private.add(child.uid)
                context.bind(component, child)
            elif (not child.is_context_object()
                  or child.uid not in self._private):
                raise SchemeError(
                    f"{component!r} along {path} is not a private "
                    f"directory of namespace {self.label}; mount points "
                    f"inside attached subsystems are not allowed")
            directory = child
        if directory.state(path.last).is_defined() and \
                directory.state(path.last).uid not in self._private:
            raise SchemeError(
                f"{path} is already an attachment in namespace "
                f"{self.label}; detach it first")
        directory.state.bind(path.last, node)
        self._attachments.append((path, node))

    def detach(self, path: NameLike) -> Entity:
        """Remove the attachment at *path*."""
        path = CompoundName.coerce(path).relative().require_nonempty()
        for index, (mounted, node) in enumerate(self._attachments):
            if mounted == path:
                directory = self.root
                for component in path.parent.parts:
                    directory = directory.state(component)
                directory.state.unbind(path.last)
                del self._attachments[index]
                return node
        raise SchemeError(f"nothing attached at {path} in {self.label}")

    def attachments(self) -> list[tuple[CompoundName, Entity]]:
        """The mount table, in attach order."""
        return list(self._attachments)

    def copy(self, label: str) -> "PerProcessNamespace":
        """A fresh namespace with the same mount table.

        Private directories are re-created; attached subsystem nodes
        are shared — so the copy is coherent with the original for all
        attached names, until one of them changes its mount table.
        """
        clone = PerProcessNamespace(self._sigma, label)
        for path, node in self._attachments:
            clone.attach(path, node)
        return clone

    def __repr__(self) -> str:
        return (f"<PerProcessNamespace {self.label!r} "
                f"{len(self._attachments)} mounts>")


class PerProcessSystem(NamingScheme):
    """A distributed system with per-process naming.

    >>> port = PerProcessSystem()
    >>> _ = port.add_machine("m1")
    >>> _ = port.add_machine("m2")
    >>> _ = port.machine_tree("m1").mkfile("src/prog.c")
    >>> p = port.spawn("m1", "dev", mounts=[("home", "m1")])
    >>> port.resolve_for(p, "/home/src/prog.c").label
    'prog.c'
    """

    scheme_name = "per-process"

    def __init__(self, label: str = "port",
                 sigma: Optional[GlobalState] = None):
        super().__init__(sigma)
        self.label = label
        self._machine_trees: dict[str, NamingTree] = {}
        self._namespaces: dict[int, PerProcessNamespace] = {}
        self._machine_of: dict[int, str] = {}

    # -- machines -----------------------------------------------------------

    def add_machine(self, machine_label: str) -> NamingTree:
        """Add a machine (a subsystem with its own naming tree)."""
        if machine_label in self._machine_trees:
            raise SchemeError(f"machine {machine_label!r} already added")
        tree = NamingTree(label=f"{machine_label}:/", sigma=self.sigma,
                          parent_links=True)
        self._machine_trees[machine_label] = tree
        return tree

    def machine_tree(self, machine_label: str) -> NamingTree:
        try:
            return self._machine_trees[machine_label]
        except KeyError:
            raise SchemeError(
                f"unknown machine {machine_label!r}") from None

    def machines(self) -> list[str]:
        return sorted(self._machine_trees)

    # -- processes ---------------------------------------------------------------

    def spawn(self, machine_label: str, label: str,
              mounts: Optional[list[tuple[NameLike, str]]] = None,
              activity: Optional[Activity] = None) -> Activity:
        """Create a process with its own individual root node.

        Args:
            machine_label: Execution site (a metric group only — the
                namespace is decoupled from it).
            mounts: Initial mount table entries ``(path, machine)``
                attaching machines' trees.
        """
        if machine_label not in self._machine_trees:
            raise SchemeError(f"unknown machine {machine_label!r}")
        namespace = PerProcessNamespace(self.sigma, f"{label}")
        for path, mounted_machine in (mounts or []):
            namespace.attach(path, self.machine_tree(mounted_machine).root)
        return self._adopt(namespace, machine_label, label, activity)

    def fork(self, parent: Activity, label: str,
             activity: Optional[Activity] = None) -> Activity:
        """Fork: the child starts with a copy of the parent's mount
        table (same execution site)."""
        namespace = self.namespace_of(parent).copy(label)
        machine_label = self._machine_of[parent.uid]
        return self._adopt(namespace, machine_label, label, activity)

    def remote_spawn(self, parent: Activity, target_machine: str,
                     label: str, *,
                     import_namespace: bool = True,
                     local_mount: Optional[NameLike] = "local",
                     activity: Optional[Activity] = None) -> Activity:
        """The §6-II remote-execution facility.

        The remote child *imports the parent's namespace* (a mount-
        table copy), so every name the parent can pass resolves to the
        same entity for the child — coherence for parameters without
        global names.  With *local_mount*, the target machine's tree is
        additionally attached, so the child "can access files on both
        its local and its parent's machines".
        """
        if target_machine not in self._machine_trees:
            raise SchemeError(f"unknown machine {target_machine!r}")
        if import_namespace:
            namespace = self.namespace_of(parent).copy(label)
        else:
            namespace = PerProcessNamespace(self.sigma, label)
        if local_mount is not None:
            mount_path = CompoundName.coerce(local_mount)
            namespace.attach(mount_path,
                             self.machine_tree(target_machine).root)
        return self._adopt(namespace, target_machine, label, activity)

    # -- namespace access -----------------------------------------------------------

    def namespace_of(self, process: Activity) -> PerProcessNamespace:
        """The process's private namespace."""
        try:
            return self._namespaces[process.uid]
        except KeyError:
            raise SchemeError(
                f"{process.label} has no per-process namespace") from None

    def attach(self, process: Activity, path: NameLike,
               machine_label: str) -> None:
        """Attach a machine's tree into one process's namespace."""
        self.namespace_of(process).attach(
            path, self.machine_tree(machine_label).root)

    def attach_union(self, process: Activity, path: NameLike,
                     sources: list[tuple[str, NameLike]]) -> Entity:
        """Attach a Plan 9-style union directory into a namespace.

        Args:
            sources: ``(machine, subpath)`` pairs; each contributes the
                directory at *subpath* in that machine's tree, searched
                in the given order (earlier shadows later).

        Two processes attaching unions built from the same sources in
        the same order are coherent for every name the union serves.
        """
        from repro.namespaces.union import union_directory

        members = []
        for machine_label, subpath in sources:
            tree = self.machine_tree(machine_label)
            node = tree.directory(subpath)
            members.append(node)
        union = union_directory(
            f"union:{CompoundName.coerce(path)}", members,
            sigma=self.sigma)
        self.namespace_of(process).attach(path, union)
        return union

    # -- probes ------------------------------------------------------------------------

    def probe_names(self) -> list[CompoundName]:
        """Rooted names through every process's mount table (dedup)."""
        unique: dict[CompoundName, None] = {}
        for process in self.activities():
            namespace = self._namespaces.get(process.uid)
            if namespace is None:
                continue
            for mount_path, node in namespace.attachments():
                unique.setdefault(mount_path.as_rooted())
                if node.is_context_object():
                    for label, tree in self._machine_trees.items():
                        if node is tree.root:
                            for sub in tree.all_paths():
                                unique.setdefault(
                                    mount_path.join(sub).as_rooted())
        return list(unique)

    # -- helpers --------------------------------------------------------------------------

    def _adopt(self, namespace: PerProcessNamespace, machine_label: str,
               label: str, activity: Optional[Activity]) -> Activity:
        context = ProcessContext(namespace.root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        adopted = self.adopt_activity(target, context, group=machine_label)
        self._namespaces[adopted.uid] = namespace
        self._machine_of[adopted.uid] = machine_label
        return adopted
