"""The shared naming graph approach (§5.2, Figure 4 — Andrew, Port).

Numerous *client subsystems* share one naming graph while keeping
their own private naming graphs.  Activities in a client subsystem see
the local graph *and* the shared graph — but not other clients' local
graphs.  In Andrew each client machine attaches the shared tree in its
local tree under ``/vice``; only files in the shared graph have global
names (those prefixed with ``/vice``).

Reproduced claims:

* coherence among **all** processes for ``/vice``-prefixed names;
* coherence for local names only **within** a client subsystem;
* *weak* coherence for replicated commands and libraries (``/bin``,
  ``/usr/bin``, ...) — each client has bindings mapping these names to
  local instances (see :meth:`SharedGraphSystem.replicate_command`);
* on cross-client remote execution only entities in the shared graph
  can be passed as arguments (the Andrew rule: the child ignores the
  client's home subsystem) — :meth:`SharedGraphSystem.passable`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemeError
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName, NameLike
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree
from repro.replication.replica import ReplicaRegistry

__all__ = ["ClientSubsystem", "SharedGraphSystem"]


class ClientSubsystem:
    """One client subsystem: a private tree with the shared tree
    mounted at the system's shared prefix."""

    def __init__(self, system: "SharedGraphSystem", label: str):
        self.system = system
        self.label = label
        self.tree = NamingTree(label=f"{label}:/", sigma=system.sigma,
                               parent_links=True)
        # Mount the shared tree; its ``..`` stays inside the shared
        # graph (set_parent=False) because *every* client mounts it.
        self.tree.attach(system.shared_prefix, system.shared.root,
                         set_parent=False)

    def spawn(self, label: str,
              activity: Optional[Activity] = None) -> Activity:
        """Create a process on this client: root = the client's root."""
        context = ProcessContext(self.tree.root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.system.adopt_activity(target, context, group=self.label)

    def __repr__(self) -> str:
        return f"<ClientSubsystem {self.label!r}>"


class SharedGraphSystem(NamingScheme):
    """An Andrew-style system: one shared tree, many client subsystems.

    >>> andrew = SharedGraphSystem()
    >>> _ = andrew.shared.mkfile("usr/alice/thesis")
    >>> c1, c2 = andrew.add_client("ws1"), andrew.add_client("ws2")
    >>> p1, p2 = c1.spawn("p1"), c2.spawn("p2")
    >>> a = andrew.resolve_for(p1, "/vice/usr/alice/thesis")
    >>> b = andrew.resolve_for(p2, "/vice/usr/alice/thesis")
    >>> a is b
    True
    """

    scheme_name = "shared-graph"

    def __init__(self, label: str = "andrew",
                 shared_prefix: NameLike = "vice",
                 sigma: Optional[GlobalState] = None):
        super().__init__(sigma)
        self.label = label
        self.shared_prefix = CompoundName.coerce(shared_prefix)
        self.shared_prefix.require_nonempty()
        self.shared = NamingTree(label=f"{label}:shared",
                                 sigma=self.sigma, parent_links=True)
        self.replicas = ReplicaRegistry()
        self._clients: dict[str, ClientSubsystem] = {}

    # -- clients ---------------------------------------------------------

    def add_client(self, label: str) -> ClientSubsystem:
        """Create a client subsystem (mounting the shared tree)."""
        if label in self._clients:
            raise SchemeError(f"client {label!r} already exists")
        client = ClientSubsystem(self, label)
        self._clients[label] = client
        return client

    def client(self, label: str) -> ClientSubsystem:
        try:
            return self._clients[label]
        except KeyError:
            raise SchemeError(f"unknown client {label!r}") from None

    def clients(self) -> list[ClientSubsystem]:
        return [self._clients[k] for k in sorted(self._clients)]

    # -- replicated commands (§5.2) -----------------------------------------

    def replicate_command(self, path: NameLike, content: object = None,
                          ) -> int:
        """Install a replicated command: one instance per client, all
        bound at the *same* local path, registered as a replica set.

        E.g. ``replicate_command("bin/ls")`` gives every client a
        ``/bin/ls`` whose denotation is machine-local but weakly
        coherent across the system.
        """
        path = CompoundName.coerce(path).relative().require_nonempty()
        if not self._clients:
            raise SchemeError("add clients before replicating commands")
        members: list[ObjectEntity] = []
        for client in self.clients():
            instance = client.tree.mkfile(path,
                                          label=f"{path.last}@{client.label}")
            members.append(instance)
        return self.replicas.create_set(
            members, content=content if content is not None
            else f"binary:{path}")

    # -- remote execution / argument passing ------------------------------------

    def passable(self, name_: NameLike) -> bool:
        """True if *name_* can be passed as an argument across client
        subsystems — i.e. it is rooted in the shared graph.

        Andrew "ignores all files in the client's home subsystem", so
        only shared-prefix names survive a cross-client hop.
        """
        name_ = CompoundName.coerce(name_)
        return name_.rooted and name_.starts_with(
            self.shared_prefix.as_rooted())

    def remote_spawn(self, parent: Activity, target_client: str,
                     label: str,
                     activity: Optional[Activity] = None) -> Activity:
        """Remote execution onto another client subsystem.

        The child runs with the *target* client's root (the Andrew
        approach); coherence with the parent holds exactly for shared-
        graph names, which is why only those are :meth:`passable`.
        """
        client = self.client(target_client)
        return client.spawn(label, activity=activity)

    # -- probes ---------------------------------------------------------------------

    def shared_probe_names(self) -> list[CompoundName]:
        """All ``/<shared_prefix>/…`` names."""
        return [CompoundName(self.shared_prefix.parts + p.parts, rooted=True)
                for p in self.shared.all_paths()]

    def local_probe_names(self) -> list[CompoundName]:
        """Rooted local names drawn from every client's private tree
        (shared mount excluded), textual duplicates merged."""
        unique: dict[CompoundName, None] = {}
        for client in self.clients():
            for path in client.tree.all_paths():
                if path.starts_with(self.shared_prefix):
                    continue
                unique.setdefault(path.as_rooted())
        return list(unique)

    def probe_names(self) -> list[CompoundName]:
        """Shared and local probes together."""
        return self.shared_probe_names() + self.local_probe_names()
