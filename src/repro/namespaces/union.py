"""Union directories (Plan 9-style; extension of §6-II).

The per-process systems the paper points to (Plan 9, the extended
Waterloo Port) attach name spaces directly into a process's context.
Plan 9's characteristic refinement is the *union directory*: one mount
point backed by an ordered list of directories, searched first-match.
A process can build its ``/bin`` from several subsystems' binaries
without global names, and two processes that assemble the same union
are coherent for every name it serves.

A union directory is an ordinary context object whose state is a
:class:`UnionContext` — so the section-2 resolution recursion, the
naming graph, and every coherence definition work on it unchanged.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import PARENT
from repro.model.state import GlobalState

__all__ = ["UnionContext", "union_directory"]


class UnionContext(Context):
    """A context searching an ordered list of member directories.

    Lookup returns the first member's binding for the name; members
    earlier in the list shadow later ones (Plan 9's ``bind -b``
    semantics, with the list order encoding before/after).  Explicit
    bindings made directly on the union (including ``..``) take
    precedence over all members.
    """

    __slots__ = ("_members",)

    def __init__(self, members: list[ObjectEntity] | None = None,
                 label: str = ""):
        super().__init__(label=label)
        self._members: list[ObjectEntity] = []
        for member in (members or []):
            self.add_member(member)

    # -- membership ---------------------------------------------------

    def add_member(self, directory: ObjectEntity,
                   first: bool = False) -> None:
        """Append (or prepend, with ``first=True``) a member."""
        if not directory.is_context_object():
            raise SchemeError(
                f"union members must be directories: {directory!r}")
        if first:
            self._members.insert(0, directory)
        else:
            self._members.append(directory)

    def remove_member(self, directory: ObjectEntity) -> None:
        """Remove a member (no error if absent)."""
        self._members = [m for m in self._members if m is not directory]

    def members(self) -> list[ObjectEntity]:
        """The member directories, search order."""
        return list(self._members)

    # -- the function ----------------------------------------------------

    def __call__(self, name_: str) -> Entity:
        if name_ in self._bindings:
            return self._bindings[name_]
        if name_ == PARENT:
            return UNDEFINED_ENTITY  # unions don't inherit members' ..
        for member in self._members:
            context: Context = member.state
            found = context(name_)
            if found.is_defined():
                return found
        return UNDEFINED_ENTITY

    def names(self) -> list[str]:
        """All names the union serves (explicit + members), sorted."""
        served: set[str] = set(self._bindings)
        for member in self._members:
            served.update(n for n in member.state.names()
                          if n != PARENT)
        return sorted(served)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def copy(self, label: str = "") -> "UnionContext":
        """An independent union with the same members and explicit
        bindings (overrides the base copy, which would lose members)."""
        clone = UnionContext(list(self._members),
                             label=label or self.label)
        clone._bindings = dict(self._bindings)
        return clone

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UnionContext):
            return (self._bindings == other._bindings
                    and len(self._members) == len(other._members)
                    and all(a is b for a, b in zip(self._members,
                                                   other._members)))
        return NotImplemented

    def __repr__(self) -> str:
        inner = " + ".join(m.label for m in self._members)
        return f"<UnionContext [{inner}]>"


def union_directory(label: str,
                    members: list[ObjectEntity] | None = None,
                    sigma: GlobalState | None = None) -> ObjectEntity:
    """Create a union directory object.

    >>> from repro.model.context import context_object
    >>> from repro.model.entities import ObjectEntity
    >>> a = context_object("bin-a")
    >>> a.state.bind("ls", ObjectEntity("ls"))
    >>> u = union_directory("bin", [a])
    >>> u.state("ls").label
    'ls'
    """
    directory = ObjectEntity(label)
    directory.state = UnionContext(members, label=label)
    if sigma is not None:
        sigma.add(directory)
    return directory
