"""The single naming graph approach — global tree (§5.1, Locus / V).

"The V system and distributed versions of Unix, such as Locus, combine
subtrees in different parts of the distributed system to form a single
naming tree.  These systems follow the tradition of binding the root
directory of each process to the root of the naming tree."

With the root binding shared by *every* process on *every* machine,
there is a high degree of coherence: every rooted name is global.
This scheme is the paper's baseline "early distributed system" design
(and the thing it argues is unrealistic at world scale).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemeError
from repro.model.entities import Activity
from repro.model.names import CompoundName, NameLike
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree

__all__ = ["SingleTreeSystem"]


class SingleTreeSystem(NamingScheme):
    """Locus/V-style: one tree; every process's root is the tree root.

    Machines contribute subtrees (mounted under a name of the
    integrator's choosing) but do not get their own root bindings.

    >>> system = SingleTreeSystem()
    >>> m = system.add_machine("vax1")
    >>> _ = system.machine_tree("vax1").mkfile("tmp/scratch")
    >>> p = system.spawn("vax1", "editor")
    >>> system.resolve_for(p, "/vax1/tmp/scratch").label
    'scratch'
    """

    scheme_name = "single-tree"

    def __init__(self, label: str = "locus",
                 sigma: Optional[GlobalState] = None):
        super().__init__(sigma)
        self.label = label
        self.tree = NamingTree(label=f"{label}:/", sigma=self.sigma,
                               parent_links=True)
        self._machine_trees: dict[str, NamingTree] = {}

    # -- machines -----------------------------------------------------------

    def add_machine(self, machine_label: str,
                    mount_at: Optional[NameLike] = None) -> NamingTree:
        """Add a machine: its subtree is combined into the single tree.

        Args:
            machine_label: Name of the machine (also the default mount
                point directly under the root).
            mount_at: Where in the global tree to mount the machine's
                subtree (default: ``/<machine_label>``).
        """
        if machine_label in self._machine_trees:
            raise SchemeError(f"machine {machine_label!r} already added")
        subtree = NamingTree(label=f"{machine_label}:/", sigma=self.sigma,
                             parent_links=True)
        self.tree.attach(
            CompoundName.coerce(mount_at) if mount_at is not None
            else CompoundName([machine_label]),
            subtree.root)
        self._machine_trees[machine_label] = subtree
        return subtree

    def machine_tree(self, machine_label: str) -> NamingTree:
        """The subtree a machine contributed."""
        try:
            return self._machine_trees[machine_label]
        except KeyError:
            raise SchemeError(f"unknown machine {machine_label!r}") from None

    def machines(self) -> list[str]:
        """Labels of the machines combined into the tree."""
        return sorted(self._machine_trees)

    # -- processes --------------------------------------------------------------

    def spawn(self, machine_label: str, label: str,
              activity: Optional[Activity] = None) -> Activity:
        """Create a process on a machine.  Its root binding is the
        *global* root — the defining property of this approach."""
        if machine_label not in self._machine_trees:
            raise SchemeError(f"unknown machine {machine_label!r}")
        context = ProcessContext(self.tree.root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.adopt_activity(target, context, group=machine_label)

    # -- probes -----------------------------------------------------------------

    def probe_names(self) -> list[CompoundName]:
        """All rooted paths of the combined tree."""
        return [path.as_rooted() for path in self.tree.all_paths()]
