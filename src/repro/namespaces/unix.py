"""The Unix naming scheme (§5.1, "Unix File Names").

Unix names files in a single naming tree per system.  The context
``R(p)`` of a process ``p`` has two bindings — root directory and
working directory.  The paper's observations, all reproducible with
this module:

* in a typical system ``R(p)(/)`` is the tree root for all processes,
  so there is coherence for the set of compound names starting with
  ``/``;
* the working directory adds flexibility, and the resulting
  restriction of coherence (relative names) is acceptable;
* processes need *not* all have the same root (``chroot``), and then
  there is coherence only among processes with the same root binding;
* a child inherits (a copy of) its parent's context, so parent and
  child have coherence for **all** names until one of them modifies
  its context — which is why a parent can pass any file name to a
  child.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemeError
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName, NameLike
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree

__all__ = ["UnixSystem"]


class UnixSystem(NamingScheme):
    """A single Unix machine: one naming tree, per-process contexts.

    >>> unix = UnixSystem("wombat")
    >>> _ = unix.tree.mkfile("etc/passwd")
    >>> init = unix.spawn("init")
    >>> child = unix.fork(init, "login")
    >>> unix.resolve_for(child, "/etc/passwd").label
    'passwd'
    """

    scheme_name = "unix"

    def __init__(self, label: str = "unix",
                 sigma: Optional[GlobalState] = None,
                 parent_links: bool = True):
        super().__init__(sigma)
        self.label = label
        self.tree = NamingTree(label=f"{label}:/", sigma=self.sigma,
                               parent_links=parent_links)

    # -- processes ------------------------------------------------------

    def spawn(self, label: str,
              root: Optional[ObjectEntity] = None,
              cwd: NameLike = "",
              activity: Optional[Activity] = None,
              group: str = "") -> Activity:
        """Create a process with its own :class:`ProcessContext`.

        Args:
            label: Process label (ignored when *activity* is passed).
            root: Root-directory binding; defaults to the tree root.
            cwd: Working directory *path* (resolved in the tree).
            activity: An existing activity (e.g. a
                :class:`~repro.sim.process.SimProcess`) to adopt
                instead of creating a plain one.
            group: Metric group; defaults to the system label.
        """
        root_dir = root if root is not None else self.tree.root
        cwd_dir = self._directory_at(root_dir, cwd) if cwd else root_dir
        context = ProcessContext(root_dir, cwd_dir, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.adopt_activity(target, context,
                                   group=group or self.label)

    def fork(self, parent: Activity, label: str,
             activity: Optional[Activity] = None,
             group: str = "") -> Activity:
        """Fork: the child starts with a *copy* of the parent's context
        (coherent with the parent for all names until either rebinds).
        """
        parent_context = self.context_of(parent)
        if not isinstance(parent_context, ProcessContext):
            raise SchemeError(f"{parent.label} has no process context")
        child_context = parent_context.copy(label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.adopt_activity(target, child_context,
                                   group=group or self.label)

    # -- context mutation ----------------------------------------------------

    def chdir(self, process: Activity, path: NameLike) -> None:
        """Change the process's working directory to *path*.

        The path is resolved in the process's own context (so ``/``-
        rooted and relative paths both work, honouring any chroot).
        """
        context = self._process_context(process)
        node = self.resolve_for(process, path)
        if not node.is_defined() or not node.is_context_object():
            raise SchemeError(f"chdir: {CompoundName.coerce(path)} is not "
                              f"a directory for {process.label}")
        context.set_cwd(node)  # type: ignore[arg-type]

    def chroot(self, process: Activity, path: NameLike) -> None:
        """Rebind the process's root directory to *path*.

        After a chroot the process generally loses coherence with
        processes keeping the original root (§5.1: "in general, there
        is coherence only among processes that have the same binding
        for the root directory").
        """
        context = self._process_context(process)
        node = self.resolve_for(process, path)
        if not node.is_defined() or not node.is_context_object():
            raise SchemeError(f"chroot: {CompoundName.coerce(path)} is not "
                              f"a directory for {process.label}")
        context.set_root(node)  # type: ignore[arg-type]
        context.set_cwd(node)   # type: ignore[arg-type]

    # -- probes ---------------------------------------------------------------

    def probe_names(self) -> list[CompoundName]:
        """All rooted paths of the tree — the ``/…`` name population
        §5.1's coherence claim quantifies over."""
        return [path.as_rooted() for path in self.tree.all_paths()]

    # -- helpers ----------------------------------------------------------------

    def _process_context(self, process: Activity) -> ProcessContext:
        context = self.context_of(process)
        if not isinstance(context, ProcessContext):
            raise SchemeError(f"{process.label} has no process context")
        return context

    def _directory_at(self, root_dir: ObjectEntity,
                      path: NameLike) -> ObjectEntity:
        from repro.model.resolution import resolve

        node = resolve(ProcessContext(root_dir),
                       CompoundName.coerce(path).as_rooted())
        if not node.is_defined() or not node.is_context_object():
            raise SchemeError(f"not a directory: {CompoundName.coerce(path)}")
        return node  # type: ignore[return-value]
