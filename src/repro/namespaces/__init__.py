"""The naming schemes of section 5 and the tree substrate they share.

One module per scheme the paper analyses: Unix trees (§5.1), the
single global tree of Locus/V (§5.1), the Newcastle Connection (§5.1,
Figure 3), the Andrew-style shared naming graph (§5.2, Figure 4), OSF
DCE cells (§5.2), federated cross-links (§5.3, Figure 5), and the
per-process view of naming (§6-II).
"""

from repro.namespaces.base import CWD_NAME, NamingScheme, ProcessContext
from repro.namespaces.crosslink import CrossLink, FederatedSystems
from repro.namespaces.dce import (
    CELL_NAME,
    DCEMachine,
    DCESystem,
    GLOBAL_ROOT_NAME,
)
from repro.namespaces.newcastle import NewcastleSystem, RemoteRootPolicy
from repro.namespaces.perprocess import PerProcessNamespace, PerProcessSystem
from repro.namespaces.shared_graph import ClientSubsystem, SharedGraphSystem
from repro.namespaces.single_tree import SingleTreeSystem
from repro.namespaces.tree import NamingTree
from repro.namespaces.union import UnionContext, union_directory
from repro.namespaces.unix import UnixSystem

__all__ = [
    "CELL_NAME",
    "CWD_NAME",
    "ClientSubsystem",
    "CrossLink",
    "DCEMachine",
    "DCESystem",
    "FederatedSystems",
    "GLOBAL_ROOT_NAME",
    "NamingScheme",
    "NamingTree",
    "NewcastleSystem",
    "PerProcessNamespace",
    "PerProcessSystem",
    "ProcessContext",
    "RemoteRootPolicy",
    "SharedGraphSystem",
    "SingleTreeSystem",
    "UnionContext",
    "UnixSystem",
    "union_directory",
]
