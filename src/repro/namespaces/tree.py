"""Naming trees: the substrate every section-5 scheme is wired from.

A :class:`NamingTree` manages a tree of context objects (directories)
and leaf objects (files), with the operations the paper's scheme
analyses need:

* building paths (``mkdir``, ``mkfile``, ``add``);
* lookups relative to the tree root;
* **attach** (mount) — binding another tree's node into this tree,
  which is how Locus/V combine machine subtrees, how the Newcastle
  Connection hangs machine trees under a super-root, how Andrew mounts
  the shared tree at ``/vice``, and how per-process namespaces attach
  subsystem trees (§5, §6-II);
* optional parent links: a ``..`` binding from each directory to its
  parent, which gives the Newcastle ``'..'`` notation meaning;
* subtree copy — used by the embedded-names experiments ("relocated or
  copied without changing the meaning of the embedded names", §6).

Trees do not own per-activity contexts; naming schemes build those in
:mod:`repro.namespaces.base` on top of trees.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from typing import Callable, Optional

from repro.errors import SchemeError
from repro.model.context import Context, context_object
from repro.model.entities import Entity, ObjectEntity
from repro.model.names import PARENT, CompoundName, NameLike
from repro.model.resolution import resolve
from repro.model.state import GlobalState

__all__ = ["NamingTree"]


class NamingTree:
    """A tree of directories (context objects) and leaf objects.

    Args:
        label: Label of the root directory object.
        sigma: Optional :class:`GlobalState` in which every created
            entity is registered (pass the simulator's σ to make the
            tree visible in the system's naming graph).
        parent_links: When True, every directory gets a ``..`` binding
            to its parent (and the root to itself unless reattached),
            enabling Newcastle-style upward traversal.
    """

    def __init__(self, label: str = "root",
                 sigma: Optional[GlobalState] = None,
                 parent_links: bool = False):
        self._sigma = sigma
        self.parent_links = parent_links
        self.root = self._new_directory(label)
        if parent_links:
            self.root.state.bind(PARENT, self.root)

    # -- creation -----------------------------------------------------

    def _register(self, entity: ObjectEntity) -> ObjectEntity:
        if self._sigma is not None:
            self._sigma.add(entity)
        return entity

    def _new_directory(self, label: str) -> ObjectEntity:
        return self._register(context_object(label))

    def _new_file(self, label: str) -> ObjectEntity:
        obj = ObjectEntity(label)
        return self._register(obj)

    def mkdir(self, path: NameLike) -> ObjectEntity:
        """Create (or return) the directory at *path*, making every
        missing intermediate directory along the way."""
        path = CompoundName.coerce(path)
        node = self.root
        for component in path.parts:
            context: Context = node.state
            child = context(component)
            if not child.is_defined():
                child = self._new_directory(component)
                context.bind(component, child)
                if self.parent_links:
                    child.state.bind(PARENT, node)
            elif not child.is_context_object():
                raise SchemeError(
                    f"{component!r} along {path} is not a directory")
            node = child
        return node

    def mkfile(self, path: NameLike, label: str = "") -> ObjectEntity:
        """Create a leaf object at *path* (intermediate dirs created).

        Raises:
            SchemeError: if *path* is already bound.
        """
        path = CompoundName.coerce(path).require_nonempty()
        parent = self.mkdir(path.parent.relative())
        context: Context = parent.state
        if context(path.last).is_defined():
            raise SchemeError(f"{path} is already bound in the tree")
        leaf = self._new_file(label or path.last)
        context.bind(path.last, leaf)
        return leaf

    def add(self, path: NameLike, entity: Entity) -> Entity:
        """Bind an existing *entity* at *path* (intermediate dirs
        created); rebinding an existing name is allowed."""
        path = CompoundName.coerce(path).require_nonempty()
        parent = self.mkdir(path.parent.relative())
        parent.state.bind(path.last, entity)
        if (self.parent_links and entity.is_context_object()
                and not entity.state.binds(PARENT)):
            entity.state.bind(PARENT, parent)
        if self._sigma is not None and isinstance(entity, ObjectEntity):
            self._sigma.add(entity)
        return entity

    # -- lookup ---------------------------------------------------------

    def lookup(self, path: NameLike) -> Entity:
        """Resolve *path* relative to the tree root (``⊥E`` if absent).

        A rooted path (``/a/b``) is treated the same as a relative one:
        "rooted at *this* tree" — per-activity root bindings are a
        scheme concern.
        """
        path = CompoundName.coerce(path).relative()
        if len(path) == 0:
            return self.root
        return resolve(self.root.state, path)

    def directory(self, path: NameLike) -> ObjectEntity:
        """Resolve *path* and require a directory (context object)."""
        node = self.lookup(path)
        if not node.is_defined() or not node.is_context_object():
            raise SchemeError(f"{CompoundName.coerce(path)} is not a "
                              f"directory in this tree")
        return node  # type: ignore[return-value]

    def exists(self, path: NameLike) -> bool:
        """True if *path* resolves to a defined entity."""
        return self.lookup(path).is_defined()

    def entries(self, path: NameLike = ()) -> list[str]:
        """Sorted entry names of the directory at *path*
        (``..`` omitted)."""
        node = self.directory(path)
        return [n for n in node.state.names() if n != PARENT]

    # -- structure edits ---------------------------------------------------

    def attach(self, path: NameLike, node: Entity,
               set_parent: bool = True) -> None:
        """Mount *node* (e.g. another tree's directory) at *path*.

        With ``parent_links`` and *set_parent*, the mounted directory's
        ``..`` is rebound to its new parent — the Newcastle behaviour
        where a machine root's parent becomes the super-root.  Pass
        ``set_parent=False`` to attach without touching the mounted
        subtree (multi-attach of a shared subtree, §6 Example 2).
        """
        path = CompoundName.coerce(path).require_nonempty()
        parent = self.mkdir(path.parent.relative())
        parent.state.bind(path.last, node)
        if (self.parent_links and set_parent
                and node.is_context_object()):
            node.state.bind(PARENT, parent)
        if self._sigma is not None and isinstance(node, ObjectEntity):
            self._sigma.add(node)

    def detach(self, path: NameLike) -> Entity:
        """Unbind the entry at *path*; returns the detached entity."""
        path = CompoundName.coerce(path).require_nonempty()
        parent = self.directory(path.parent.relative())
        node = parent.state(path.last)
        if not node.is_defined():
            raise SchemeError(f"nothing attached at {path}")
        parent.state.unbind(path.last)
        return node

    # -- traversal -----------------------------------------------------------

    def walk(self, max_depth: int = 64,
             ) -> Iterator[tuple[CompoundName, Entity]]:
        """Yield ``(path, entity)`` for every entity reachable from the
        root, in deterministic (BFS, name-sorted) order.  ``..`` edges
        are not followed.  Shared nodes reachable by several paths are
        yielded once per path; cycles are cut by *max_depth*.
        """
        frontier: deque[tuple[CompoundName, Entity, int]] = deque(
            [(CompoundName(), self.root, 0)])
        visited_on_path: set[tuple[int, tuple[str, ...]]] = set()
        while frontier:
            path, node, depth = frontier.popleft()
            key = (node.uid, path.parts)
            if key in visited_on_path or depth > max_depth:
                continue
            visited_on_path.add(key)
            if len(path) > 0:
                yield path, node
            if node.is_context_object():
                context: Context = node.state
                for name_ in context.names():
                    if name_ == PARENT:
                        continue
                    frontier.append(
                        (path.child(name_), context(name_), depth + 1))

    def all_paths(self, max_depth: int = 64) -> list[CompoundName]:
        """Every path produced by :meth:`walk` (deterministic order)."""
        return [path for path, _entity in self.walk(max_depth=max_depth)]

    def leaf_paths(self, max_depth: int = 64) -> list[CompoundName]:
        """Paths of non-directory entities."""
        return [path for path, entity in self.walk(max_depth=max_depth)
                if not entity.is_context_object()]

    def path_of(self, target: Entity,
                max_depth: int = 64) -> Optional[CompoundName]:
        """The first path (walk order) that reaches *target*, or None."""
        for path, entity in self.walk(max_depth=max_depth):
            if entity is target:
                return path
        return None

    # -- copying ------------------------------------------------------------

    def copy_subtree(self, source: ObjectEntity, *,
                     copy_leaf: Optional[Callable[[ObjectEntity],
                                                  ObjectEntity]] = None,
                     ) -> ObjectEntity:
        """Deep-copy the directory *source* (and its subdirectories).

        Leaf objects are copied by *copy_leaf* when given (used by the
        embedded-names experiments to clone structured objects), else
        shared between original and copy.  ``..`` bindings are rebuilt
        inside the copy, not carried over.
        """
        if not source.is_context_object():
            raise SchemeError("copy_subtree needs a directory")

        def clone(node: ObjectEntity,
                  new_parent: Optional[ObjectEntity]) -> ObjectEntity:
            fresh = self._new_directory(node.label)
            if self.parent_links and new_parent is not None:
                fresh.state.bind(PARENT, new_parent)
            context: Context = node.state
            for name_ in context.names():
                if name_ == PARENT:
                    continue
                child = context(name_)
                if child.is_context_object():
                    fresh.state.bind(name_, clone(child, fresh))
                elif copy_leaf is not None and isinstance(child, ObjectEntity):
                    fresh.state.bind(name_, self._register(copy_leaf(child)))
                else:
                    fresh.state.bind(name_, child)
            return fresh

        return clone(source, None)

    def __repr__(self) -> str:
        return f"<NamingTree root={self.root.label!r}>"
