"""Common machinery for the section-5 naming schemes.

Every scheme the paper analyses boils down to *how the per-activity
context ``R(a)`` is constructed* over one or more naming trees ("The
resolution rule is R(a) in all three approaches ... the degree of
coherence can be determined by comparing the contexts R(a)", §5).
This module provides:

* :class:`ProcessContext` — the two-binding context of §5.1: a *root
  directory* binding (consulted for rooted names, ``R(p)(/)``) and a
  *working directory* binding (relative names delegate to it);
* :class:`NamingScheme` — the base class that owns the scheme's
  :class:`~repro.closure.meta.ContextRegistry`, its activity
  population and groups, and the shared measurement entry points used
  by every experiment.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from repro.closure.meta import ContextRegistry
from repro.coherence.definitions import EntityEquivalence, strict_identity
from repro.coherence.metrics import CoherenceDegree, measure_degree
from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Activity, Entity, ObjectEntity
from repro.model.names import ROOT_NAME, SELF, CompoundName, NameLike
from repro.model.resolution import resolve
from repro.model.state import GlobalState

__all__ = ["ProcessContext", "NamingScheme", "CWD_NAME"]

#: The binding name under which a process context stores its working
#: directory.  ``.`` components are elided from compound names during
#: parsing, so the binding never collides with path components.
CWD_NAME = SELF


class ProcessContext(Context):
    """The §5.1 process context: root + working-directory bindings.

    ``R(p)`` "has two bindings: one for the root directory, and the
    other for the working directory".  Rooted names (``/a/b``) resolve
    through the root binding (handled generically by
    :func:`repro.model.resolution.resolve_traced`); relative names
    (``a/b``) delegate their first lookup to the working directory's
    context.

    Extensional identity of a process context is its pair of bindings,
    which is exactly how §5 compares the contexts ``R(a)``.
    """

    __slots__ = ()

    def __init__(self, root_dir: ObjectEntity,
                 cwd: Optional[ObjectEntity] = None, label: str = ""):
        super().__init__(label=label)
        self.set_root(root_dir)
        self.set_cwd(cwd if cwd is not None else root_dir)

    # -- the two bindings ------------------------------------------------

    @property
    def root_dir(self) -> ObjectEntity:
        """The root-directory binding, ``R(p)(/)``."""
        return self(ROOT_NAME)  # type: ignore[return-value]

    @property
    def cwd(self) -> ObjectEntity:
        """The working-directory binding."""
        return self._bindings[CWD_NAME]  # type: ignore[return-value]

    def set_root(self, root_dir: ObjectEntity) -> None:
        """Rebind the root directory (e.g. ``chroot``)."""
        if not root_dir.is_context_object():
            raise SchemeError(f"root must be a directory: {root_dir!r}")
        self.bind(ROOT_NAME, root_dir)

    def set_cwd(self, cwd: ObjectEntity) -> None:
        """Rebind the working directory (``chdir``)."""
        if not cwd.is_context_object():
            raise SchemeError(f"cwd must be a directory: {cwd!r}")
        self.bind(CWD_NAME, cwd)

    # -- lookup delegation --------------------------------------------------

    def __call__(self, name_: str) -> Entity:
        """Explicit bindings first; other atomic names delegate to the
        working directory's context (so ``a/b`` means ``./a/b``)."""
        if name_ in self._bindings:
            return self._bindings[name_]
        cwd = self._bindings.get(CWD_NAME)
        if cwd is not None and cwd.is_context_object():
            return cwd.state(name_)
        from repro.model.entities import UNDEFINED_ENTITY

        return UNDEFINED_ENTITY

    def copy(self, label: str = "") -> "ProcessContext":
        """An independent context with the same two bindings — Unix
        ``fork`` inheritance (§5.1): parent and child stay coherent for
        *all* names until one of them rebinds."""
        return ProcessContext(self.root_dir, self.cwd,
                              label=label or self.label)


class NamingScheme:
    """Base class for the section-5 naming schemes.

    A scheme owns:

    * ``sigma`` — the global state its entities live in;
    * ``registry`` — per-activity contexts, the scheme's ``R(a)``;
    * an ordered activity population, partitioned into named *groups*
      (per machine, per client subsystem, ...), matching the paper's
      "coherence only among activities in the same ..." statements.
    """

    #: Scheme name used in reports (overridden by subclasses).
    scheme_name = "abstract"

    def __init__(self, sigma: Optional[GlobalState] = None):
        self.sigma = sigma if sigma is not None else GlobalState()
        self.registry = ContextRegistry(label=self.scheme_name)
        self._activities: list[Activity] = []
        self._groups: dict[str, list[Activity]] = {}

    # -- population ---------------------------------------------------------

    def adopt_activity(self, activity: Activity, context: Context,
                       group: str = "") -> Activity:
        """Register *activity* with its context ``R(a)`` (and group)."""
        self.sigma.add(activity)
        self.registry.register(activity, context)
        self._activities.append(activity)
        if group:
            self._groups.setdefault(group, []).append(activity)
        return activity

    def new_activity(self, label: str, context: Context,
                     group: str = "") -> Activity:
        """Create and adopt a fresh plain activity."""
        return self.adopt_activity(Activity(label), context, group=group)

    def activities(self) -> list[Activity]:
        """The scheme's activity population, in adoption order."""
        return list(self._activities)

    def groups(self) -> dict[str, list[Activity]]:
        """Named activity groups (per machine / subsystem / system)."""
        return {k: list(v) for k, v in self._groups.items()}

    def context_of(self, activity: Activity) -> Context:
        """The scheme's ``R(a)`` for *activity*."""
        return self.registry.context_of(activity)

    # -- resolution & measurement ---------------------------------------------

    def resolve_for(self, activity: Activity, name_: NameLike) -> Entity:
        """``R(a)(n)``: resolve *name_* in *activity*'s context."""
        return resolve(self.context_of(activity), name_)

    def probe_names(self) -> list[CompoundName]:
        """A default probe-name population for coherence measurement.

        Subclasses override this to enumerate the names their trees
        make meaningful; the base returns an empty list.
        """
        return []

    def measure(self, probes: Optional[Iterable[NameLike]] = None,
                activities: Optional[Sequence[Activity]] = None, *,
                equivalence: EntityEquivalence = strict_identity,
                ) -> CoherenceDegree:
        """Measure the scheme's degree of coherence.

        Defaults: all adopted activities, the scheme's
        :meth:`probe_names`, the scheme's groups.
        """
        return measure_degree(
            list(activities if activities is not None else self._activities),
            list(probes) if probes is not None else self.probe_names(),
            self.registry,
            groups=self._groups,
            equivalence=equivalence,
        )

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.scheme_name!r} "
                f"{len(self._activities)} activities>")
