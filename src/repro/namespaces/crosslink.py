"""Cross-links between autonomous systems (§5.3, Figure 5).

"Often it is necessary to extend the naming schemes to support limited
interactions between autonomous systems in a federated environment.
Cross-links can be added to extend the naming graphs of the systems
... The context of each activity is still based on its local system,
but has been extended to allow access to the remote naming graph.
There are no global names between systems unless they happen to use
the same prefix name for a shared entity."

A :class:`FederatedPair` (generalised to any number of systems) wires
existing autonomous systems — any :class:`NamingTree`-rooted schemes —
with cross-link bindings, and answers the §5.3 questions: what can be
accessed remotely, which names happen to be coherent, and where
exchanged/embedded names break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SchemeError
from repro.model.entities import Activity, Entity
from repro.model.names import CompoundName, NameLike
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree

__all__ = ["CrossLink", "FederatedSystems"]


@dataclass(frozen=True)
class CrossLink:
    """One cross-link: *path* in *from_system* binds a node of
    *to_system* (located by *target_path* in that system's tree)."""

    from_system: str
    path: CompoundName
    to_system: str
    target_path: CompoundName


class FederatedSystems(NamingScheme):
    """Autonomous systems, each with its own tree, joined by
    cross-links.

    >>> fed = FederatedSystems()
    >>> _ = fed.add_system("sys1")
    >>> _ = fed.add_system("sys2")
    >>> _ = fed.tree("sys2").mkfile("projects/apollo/plan")
    >>> fed.add_link("sys1", "remote/sys2", "sys2", "projects")
    >>> p = fed.spawn("sys1", "p")
    >>> fed.resolve_for(p, "/remote/sys2/apollo/plan").label
    'plan'
    """

    scheme_name = "cross-links"

    def __init__(self, sigma: Optional[GlobalState] = None):
        super().__init__(sigma)
        self._trees: dict[str, NamingTree] = {}
        self._links: list[CrossLink] = []

    # -- systems -----------------------------------------------------------

    def add_system(self, label: str) -> NamingTree:
        """Create an autonomous system (its own naming tree)."""
        if label in self._trees:
            raise SchemeError(f"system {label!r} already exists")
        tree = NamingTree(label=f"{label}:/", sigma=self.sigma,
                          parent_links=True)
        self._trees[label] = tree
        return tree

    def tree(self, label: str) -> NamingTree:
        try:
            return self._trees[label]
        except KeyError:
            raise SchemeError(f"unknown system {label!r}") from None

    def systems(self) -> list[str]:
        return sorted(self._trees)

    # -- cross-links ----------------------------------------------------------

    def add_link(self, from_system: str, path: NameLike,
                 to_system: str, target_path: NameLike = ()) -> CrossLink:
        """Extend *from_system*'s naming graph with a cross-link.

        The node at *target_path* in *to_system* (its root when the
        path is empty) becomes visible at *path* in *from_system*.
        The remote subtree's own ``..`` is untouched: the remote
        system stays autonomous.
        """
        source = self.tree(from_system)
        target_tree = self.tree(to_system)
        target_path = CompoundName.coerce(target_path).relative()
        node = (target_tree.root if len(target_path) == 0
                else target_tree.lookup(target_path))
        if not node.is_defined():
            raise SchemeError(
                f"{target_path} does not exist in {to_system!r}")
        path = CompoundName.coerce(path).relative().require_nonempty()
        source.attach(path, node, set_parent=False)
        link = CrossLink(from_system, path, to_system, target_path)
        self._links.append(link)
        return link

    def links(self) -> list[CrossLink]:
        return list(self._links)

    # -- processes ----------------------------------------------------------------

    def spawn(self, system_label: str, label: str,
              activity: Optional[Activity] = None) -> Activity:
        """Create a process in an autonomous system; its context is
        based on its local system (root = local tree root)."""
        tree = self.tree(system_label)
        context = ProcessContext(tree.root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.adopt_activity(target, context, group=system_label)

    # -- analysis --------------------------------------------------------------------

    def accessible(self, process: Activity, entity: Entity) -> bool:
        """True if *entity* is reachable from the process's root via
        any directed path (including cross-links)."""
        from repro.model.graph import NamingGraph

        context = self.context_of(process)
        if not isinstance(context, ProcessContext):
            raise SchemeError(f"{process.label} has no process context")
        graph = NamingGraph(self.sigma)
        return entity in graph.reachable_from(context.root_dir)

    def coincidental_global_names(self) -> list[CompoundName]:
        """Names that happen to denote the same entity in *every*
        system — the §5.3 "unless they happen to use the same prefix
        name for a shared entity" case."""
        from repro.coherence.definitions import is_global_name

        activities = self.activities()
        if len(activities) < 2:
            return []
        out = []
        for probe in self.probe_names():
            if is_global_name(probe, activities, self.registry):
                out.append(probe)
        return out

    def probe_names(self) -> list[CompoundName]:
        """Rooted paths drawn from every system's tree (textual dedup),
        including paths through cross-links."""
        unique: dict[CompoundName, None] = {}
        for label in self.systems():
            for path in self._trees[label].all_paths(max_depth=16):
                unique.setdefault(path.as_rooted())
        return list(unique)
