"""The Newcastle Connection (§5.1, Figure 3).

The Newcastle Connection creates a single naming tree from the
individual trees of several machines — "by attaching the naming tree
of one machine to another, or by creating a new root node and
attaching the trees of two or more machines" — but, unlike Locus/V,
processes on different machines keep *different* root bindings:
typically ``R(p)(/)`` is the root of the machine on which ``p``
executes.  The Unix ``..`` notation refers to nodes above a machine's
root.

Consequences reproduced here:

* only processes with the same root binding (typically: on the same
  machine) have coherence for ``/``-rooted names;
* a shared naming tree does **not** imply global names — whether names
  are global depends on the relationship between the contexts
  ``R(a)``;
* a simple rule maps names across machines: prefix ``../<machine>``
  (:meth:`NewcastleSystem.map_name`);
* remote execution has two root-binding variants (§5.1): bind the
  child's root to the **invoker**'s machine root (coherence for passed
  names) or to the **target**'s machine root (access to local objects,
  no coherence for parameters).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import SchemeError
from repro.model.context import context_object
from repro.model.entities import Activity
from repro.model.names import PARENT, CompoundName, NameLike
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree

__all__ = ["NewcastleSystem", "RemoteRootPolicy"]


class RemoteRootPolicy(enum.Enum):
    """Root binding of a remotely executed child (§5.1).

    ``INVOKER``: the child's root is bound to the root of the machine
    where execution was *invoked* — provides coherence, names can be
    passed as parameters.

    ``TARGET``: the child's root is the root of the machine where it
    executes — no coherence for parameters, but the program can access
    local objects on that machine.
    """

    INVOKER = "invoker"
    TARGET = "target"


class NewcastleSystem(NamingScheme):
    """A Newcastle Connection: machine trees under a created super-root.

    >>> nc = NewcastleSystem()
    >>> for m in ("unix1", "unix2", "unix3"):
    ...     _ = nc.add_machine(m)
    >>> _ = nc.machine_tree("unix2").mkfile("usr/data")
    >>> p = nc.spawn("unix1", "client")
    >>> nc.resolve_for(p, "../unix2/usr/data").label
    'data'
    """

    scheme_name = "newcastle"

    def __init__(self, label: str = "newcastle",
                 sigma: Optional[GlobalState] = None):
        super().__init__(sigma)
        self.label = label
        # The created super-root node joining the machine trees.
        self.super_root = context_object(f"{label}:super-root")
        self.sigma.add(self.super_root)
        self.super_root.state.bind(PARENT, self.super_root)
        self._machine_trees: dict[str, NamingTree] = {}

    # -- machines ------------------------------------------------------------

    def add_machine(self, machine_label: str) -> NamingTree:
        """Attach a new machine's naming tree under the super-root.

        The machine root's ``..`` is bound to the super-root, giving
        the Newcastle ``'..'`` notation its meaning.
        """
        if machine_label in self._machine_trees:
            raise SchemeError(f"machine {machine_label!r} already attached")
        tree = NamingTree(label=f"{machine_label}:/", sigma=self.sigma,
                          parent_links=True)
        self.super_root.state.bind(machine_label, tree.root)
        tree.root.state.bind(PARENT, self.super_root)
        self._machine_trees[machine_label] = tree
        return tree

    def machine_tree(self, machine_label: str) -> NamingTree:
        """A machine's own naming tree."""
        try:
            return self._machine_trees[machine_label]
        except KeyError:
            raise SchemeError(f"unknown machine {machine_label!r}") from None

    def machines(self) -> list[str]:
        """Labels of attached machines, sorted."""
        return sorted(self._machine_trees)

    def machine_of(self, process: Activity) -> str:
        """The machine whose root is the process's root binding."""
        context = self.context_of(process)
        if isinstance(context, ProcessContext):
            for label, tree in self._machine_trees.items():
                if context.root_dir is tree.root:
                    return label
        raise SchemeError(f"{process.label} has no machine root binding")

    # -- processes --------------------------------------------------------------

    def spawn(self, machine_label: str, label: str,
              activity: Optional[Activity] = None) -> Activity:
        """Create a process whose root is its *own machine's* root —
        the typical Newcastle binding."""
        tree = self.machine_tree(machine_label)
        context = ProcessContext(tree.root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.adopt_activity(target, context, group=machine_label)

    def remote_spawn(self, parent: Activity, target_machine: str,
                     label: str,
                     policy: RemoteRootPolicy = RemoteRootPolicy.TARGET,
                     activity: Optional[Activity] = None) -> Activity:
        """Remote execution with one of the two §5.1 root policies."""
        parent_context = self.context_of(parent)
        if not isinstance(parent_context, ProcessContext):
            raise SchemeError(f"{parent.label} has no process context")
        if policy is RemoteRootPolicy.INVOKER:
            root = parent_context.root_dir
        else:
            root = self.machine_tree(target_machine).root
        context = ProcessContext(root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.adopt_activity(target, context, group=target_machine)

    # -- the cross-machine mapping rule ------------------------------------------

    def map_name(self, name_: NameLike, from_machine: str,
                 to_machine: str) -> CompoundName:
        """Map a rooted name valid on *from_machine* so it denotes the
        same entity when resolved on *to_machine*.

        The "simple rule" of §5.1: a name ``/x`` on machine ``A``
        becomes ``/../A/x`` on machine ``B`` (up to the super-root,
        down into ``A``'s tree).  Names that are already relative are
        returned unchanged.
        """
        name_ = CompoundName.coerce(name_)
        if not name_.rooted:
            return name_
        if from_machine not in self._machine_trees:
            raise SchemeError(f"unknown machine {from_machine!r}")
        if to_machine not in self._machine_trees:
            raise SchemeError(f"unknown machine {to_machine!r}")
        if from_machine == to_machine:
            return name_
        return CompoundName((PARENT, from_machine) + name_.parts,
                            rooted=True)

    # -- recursive extension (§5.3) ------------------------------------------

    def connect_system(self, other: "NewcastleSystem",
                       label: str) -> None:
        """Attach another Newcastle system under this one's super-root.

        §5.3: "The Newcastle Connection is a distributed system that
        can be extended recursively because each extended system is
        still a Unix system with a single tree."  The other system's
        super-root becomes a child named *label*; its ``..`` now leads
        here, so its processes can reach this system via longer
        ``..``-prefixed names (and vice versa).

        The other system's machines and activities remain registered
        with *their* scheme object; use :meth:`absorb` to fold its
        population into this one for joint measurement.
        """
        if self.super_root.state(label).is_defined():
            raise SchemeError(f"{label!r} already bound at the "
                              f"super-root")
        self.super_root.state.bind(label, other.super_root)
        other.super_root.state.bind(PARENT, self.super_root)

    def absorb(self, other: "NewcastleSystem", label: str) -> None:
        """Connect *other* (see :meth:`connect_system`) and fold its
        machines and activity population into this scheme so combined
        coherence can be measured with one registry.

        Machine trees are re-keyed as ``<label>/<machine>``; groups
        likewise.
        """
        self.connect_system(other, label)
        for machine_label, tree in other._machine_trees.items():
            self._machine_trees[f"{label}/{machine_label}"] = tree
        for group, members in other.groups().items():
            for activity in members:
                self.adopt_activity(activity,
                                    other.registry.context_of(activity),
                                    group=f"{label}/{group}")

    def boundary_mapper(self):
        """A :class:`~repro.closure.boundary.NameMapper` applying
        :meth:`map_name` between the sender's and receiver's machines.

        Installed in a gateway, this automates §5.1's "simple rule" so
        rooted names exchanged across machine boundaries keep their
        sender-side meaning.  Relative names and names between
        same-machine processes pass through unchanged.
        """

        def mapper(sender: Activity, receiver: Activity,
                   name_: CompoundName) -> Optional[CompoundName]:
            try:
                from_machine = self.machine_of(sender)
                to_machine = self.machine_of(receiver)
            except SchemeError:
                return None
            return self.map_name(name_, from_machine, to_machine)

        return mapper

    # -- probes --------------------------------------------------------------------

    def probe_names(self) -> list[CompoundName]:
        """Rooted paths drawn from every machine's own tree.

        Each probe reads as ``/…`` — resolved against each process's
        own root binding, which is precisely where Newcastle
        incoherence shows up.
        """
        probes: list[CompoundName] = []
        for label in self.machines():
            probes.extend(p.as_rooted()
                          for p in self._machine_trees[label].all_paths())
        # Deduplicate textual forms: /usr on two machines is ONE name.
        unique: dict[CompoundName, None] = {}
        for probe in probes:
            unique.setdefault(probe)
        return list(unique)
