"""OSF DCE naming (§5.2): the global directory at ``/...`` and the
cell context at ``/.:``.

"In the OSF DCE environment, the shared naming tree (called the Global
Directory Service) is attached in the local naming tree under '/...'.
DCE allows an additional local context called a cell which is accessed
via the name '/.:'.  The cell is an organizational unit ...
Incoherence arises for names that are relative to the cell context.
An organization can have several cells, but a machine is allowed to
know of only one local cell."

This module reproduces that structure: a global directory tree holding
cells, machines that each mount the global tree at ``/...`` and bind
``/.:`` to their one local cell.  The paper's criticism — that a single
local context is not sufficient, and names relative to the cell are
incoherent across machines in different cells — falls out of the
measurements.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemeError
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName, NameLike
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree

__all__ = ["DCESystem", "DCEMachine", "GLOBAL_ROOT_NAME", "CELL_NAME"]

#: The name under which the Global Directory Service is attached.
GLOBAL_ROOT_NAME = "..."

#: The name of the cell context binding.
CELL_NAME = ".:"


class DCEMachine:
    """A DCE machine: local tree + ``/...`` mount + one ``/.:`` cell."""

    def __init__(self, system: "DCESystem", label: str, cell: str):
        if cell not in system.cells():
            raise SchemeError(f"unknown cell {cell!r}")
        self.system = system
        self.label = label
        self.cell = cell
        self.tree = NamingTree(label=f"{label}:/", sigma=system.sigma,
                               parent_links=True)
        self.tree.attach(CompoundName([GLOBAL_ROOT_NAME]),
                         system.global_tree.root, set_parent=False)
        self.tree.attach(CompoundName([CELL_NAME]),
                         system.cell_directory(cell), set_parent=False)

    def add_local_context(self, name_: str, cell: str,
                          path: NameLike = ()) -> None:
        """Attach an additional local context under ``/<name_>``.

        The paper criticises DCE for allowing only one local context:
        "A single local context such as the cell is not going to be
        sufficient; it is useful to be able to use names relative to
        several local contexts such as those of the divisions,
        departments, and projects within an organization."  This
        extension lets a machine bind extra global-directory subtrees
        (e.g. a division's area) under short local names, at the cost
        of more non-global names — the incoherence the paper predicts
        is then measurable.
        """
        subtree = self.system.cell_tree(cell)
        path = CompoundName.coerce(path).relative()
        node = (subtree.root if len(path) == 0
                else subtree.directory(path))
        self.tree.attach(CompoundName([name_]), node, set_parent=False)

    def spawn(self, label: str,
              activity: Optional[Activity] = None) -> Activity:
        """Create a process on this machine; root = machine root."""
        context = ProcessContext(self.tree.root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        return self.system.adopt_activity(target, context,
                                          group=f"cell:{self.cell}")

    def __repr__(self) -> str:
        return f"<DCEMachine {self.label!r} cell={self.cell!r}>"


class DCESystem(NamingScheme):
    """A DCE environment: global directory, cells, machines.

    >>> dce = DCESystem()
    >>> _ = dce.add_cell("research")
    >>> _ = dce.cell_tree("research").mkfile("services/db")
    >>> m = dce.add_machine("ws1", cell="research")
    >>> p = m.spawn("client")
    >>> dce.resolve_for(p, "/.:/services/db").label
    'db'
    >>> dce.resolve_for(p, "/.../research/services/db").label
    'db'
    """

    scheme_name = "dce"

    def __init__(self, label: str = "dce",
                 sigma: Optional[GlobalState] = None):
        super().__init__(sigma)
        self.label = label
        self.global_tree = NamingTree(label=f"{label}:gds",
                                      sigma=self.sigma, parent_links=True)
        self._cell_trees: dict[str, NamingTree] = {}
        self._machines: dict[str, DCEMachine] = {}

    # -- cells ---------------------------------------------------------------

    def add_cell(self, cell: str) -> NamingTree:
        """Create a cell: a subtree of the global directory."""
        if cell in self._cell_trees:
            raise SchemeError(f"cell {cell!r} already exists")
        tree = NamingTree(label=f"cell:{cell}", sigma=self.sigma,
                          parent_links=True)
        self.global_tree.attach(CompoundName([cell]), tree.root)
        self._cell_trees[cell] = tree
        return tree

    def cell_tree(self, cell: str) -> NamingTree:
        try:
            return self._cell_trees[cell]
        except KeyError:
            raise SchemeError(f"unknown cell {cell!r}") from None

    def cell_directory(self, cell: str) -> ObjectEntity:
        return self.cell_tree(cell).root

    def cells(self) -> list[str]:
        return sorted(self._cell_trees)

    # -- machines ---------------------------------------------------------------

    def add_machine(self, label: str, cell: str) -> DCEMachine:
        """Add a machine knowing exactly one local cell."""
        if label in self._machines:
            raise SchemeError(f"machine {label!r} already exists")
        machine = DCEMachine(self, label, cell)
        self._machines[label] = machine
        return machine

    def machine(self, label: str) -> DCEMachine:
        try:
            return self._machines[label]
        except KeyError:
            raise SchemeError(f"unknown machine {label!r}") from None

    def machines(self) -> list[DCEMachine]:
        return [self._machines[k] for k in sorted(self._machines)]

    # -- name forms -------------------------------------------------------------------

    def global_name(self, cell: str, path: NameLike) -> CompoundName:
        """The ``/.../<cell>/<path>`` form of a cell-relative name."""
        path = CompoundName.coerce(path).relative()
        return CompoundName((GLOBAL_ROOT_NAME, cell) + path.parts,
                            rooted=True)

    def cell_relative_name(self, path: NameLike) -> CompoundName:
        """The ``/.:/<path>`` form of a cell-relative name."""
        path = CompoundName.coerce(path).relative()
        return CompoundName((CELL_NAME,) + path.parts, rooted=True)

    # -- probes -----------------------------------------------------------------------

    def global_probe_names(self) -> list[CompoundName]:
        """All ``/.../…`` names of the global directory."""
        return [CompoundName((GLOBAL_ROOT_NAME,) + p.parts, rooted=True)
                for p in self.global_tree.all_paths()]

    def cell_probe_names(self) -> list[CompoundName]:
        """``/.:/…`` names drawn from every cell (textual dedup)."""
        unique: dict[CompoundName, None] = {}
        for cell in self.cells():
            for path in self._cell_trees[cell].all_paths():
                unique.setdefault(self.cell_relative_name(path))
        return list(unique)

    def probe_names(self) -> list[CompoundName]:
        return self.global_probe_names() + self.cell_probe_names()
