"""Exporters: Chrome trace-event JSON, Prometheus text, run summaries.

Three read-only views over one instrumented run:

* :func:`to_chrome_trace` — the Chrome ``trace_event`` format
  (a ``{"traceEvents": [...]}`` document loadable in Perfetto or
  ``chrome://tracing``); spans become complete (``"X"``) events,
  instants become ``"i"`` events, and each trace gets its own named
  thread row so resolution trees render side by side;
* :func:`to_prometheus_text` — the Prometheus exposition format for a
  :class:`~repro.obs.metrics.MetricsRegistry`;
* :func:`run_summary` — one JSON document tying spans, metrics and
  (optionally) the kernel's :class:`~repro.sim.trace.TraceLog`
  together, consumed by ``tools/inspect_run.py``.

All exporters are **export-safe**: arbitrary attribute/payload values
are passed through :func:`json_safe`, which summarizes anything not
JSON-serialisable as a truncated ``repr`` instead of crashing the
export (simulation payloads routinely hold entities and processes).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = ["json_safe", "to_chrome_trace", "to_prometheus_text",
           "run_summary"]

#: Longest repr kept for a non-serialisable payload before truncation.
_REPR_LIMIT = 120

#: Virtual-time unit expressed in Chrome-trace microseconds: one unit
#: of simulator time renders as one millisecond on the timeline.
_TICK_US = 1000.0


def json_safe(value: Any, _depth: int = 0) -> Any:
    """*value* coerced to something ``json.dumps`` accepts.

    Scalars pass through; mappings/sequences are converted
    recursively (keys stringified); anything else — entities,
    processes, exceptions — is summarized as a truncated ``repr``.
    Depth is bounded so cyclic payloads cannot recurse forever.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if _depth >= 6:
        return _truncated_repr(value)
    if isinstance(value, dict):
        return {str(key): json_safe(item, _depth + 1)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item, _depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(item, _depth + 1) for item in value)
    return _truncated_repr(value)


def _truncated_repr(value: Any) -> str:
    try:
        text = repr(value)
    except Exception:  # pragma: no cover - pathological __repr__
        text = f"<unreprable {type(value).__name__}>"
    if len(text) > _REPR_LIMIT:
        text = text[:_REPR_LIMIT - 1] + "…"
    return text


# -- Chrome trace_event ------------------------------------------------------

def to_chrome_trace(spans: Iterable[Span],
                    label: str = "repro simulation") -> dict:
    """Spans rendered as a Chrome ``trace_event`` JSON document.

    Each distinct ``trace_id`` becomes one named thread (so a batch
    and its resolutions share a row and nest by time containment);
    durationless spans become instant events.  The result is a plain
    dict — ``json.dump`` it to produce a file Perfetto loads directly.
    """
    spans = list(spans)
    tids: dict[str, int] = {}
    for span in spans:
        tids.setdefault(span.trace_id, len(tids) + 1)

    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": 1,
        "args": {"name": label},
    }]
    for trace_id, tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": 1,
                       "tid": tid,
                       "args": {"name": f"trace {trace_id}"}})
    for span in spans:
        args = {key: json_safe(value)
                for key, value in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_span_id"] = span.parent_id
        args["status"] = span.status
        if span.reason:
            args["reason"] = span.reason
        common = {
            "name": span.name,
            "cat": span.kind,
            "pid": 1,
            "tid": tids[span.trace_id],
            "ts": span.start * _TICK_US,
            "args": args,
        }
        if span.duration > 0:
            events.append({**common, "ph": "X",
                           "dur": span.duration * _TICK_US})
        else:
            events.append({**common, "ph": "i", "s": "t"})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- Prometheus text ---------------------------------------------------------

def _prom_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{{{inner}}}"


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def typeline(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        typeline(counter.name, "counter")
        lines.append(f"{counter.name}{_prom_labels(counter.labels)} "
                     f"{_prom_number(counter.value)}")
    for gauge in registry.gauges():
        typeline(gauge.name, "gauge")
        lines.append(f"{gauge.name}{_prom_labels(gauge.labels)} "
                     f"{_prom_number(gauge.value)}")
    for histogram in registry.histograms():
        typeline(histogram.name, "histogram")
        base = list(histogram.labels)
        for bound, cumulative in histogram.cumulative():
            labels = _prom_labels(base + [("le", _prom_number(bound))])
            lines.append(f"{histogram.name}_bucket{labels} {cumulative}")
        lines.append(f"{histogram.name}_sum{_prom_labels(histogram.labels)} "
                     f"{_prom_number(histogram.total)}")
        lines.append(f"{histogram.name}_count"
                     f"{_prom_labels(histogram.labels)} {histogram.count}")
    return "\n".join(lines) + "\n"


# -- run summary -------------------------------------------------------------

def span_to_dict(span: Span) -> dict:
    """One span as a JSON-safe dict (the run-summary span schema)."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "kind": span.kind,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "status": span.status,
        "reason": span.reason,
        "attrs": {key: json_safe(value)
                  for key, value in span.attrs.items()},
    }


def run_summary(spans: Iterable[Span],
                registry: Optional[MetricsRegistry] = None,
                trace_log=None, clock: Optional[float] = None,
                notes: Optional[dict] = None) -> dict:
    """One JSON document describing an instrumented run.

    Args:
        spans: The tracer's spans (grouped by trace in the output).
        registry: Metrics to snapshot alongside, if any.
        trace_log: An optional kernel
            :class:`~repro.sim.trace.TraceLog` (duck-typed: iterable
            of entries with time/kind/detail/data); payloads are made
            export-safe.
        clock: Final virtual time of the run.
        notes: Free-form scenario parameters to carry along.
    """
    spans = list(spans)
    traces: dict[str, list[dict]] = {}
    failed = 0
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span_to_dict(span))
        if span.status != "ok":
            failed += 1
    document: dict[str, Any] = {
        "clock": clock,
        "span_count": len(spans),
        "failed_span_count": failed,
        "traces": traces,
        "notes": json_safe(notes or {}),
    }
    if registry is not None:
        document["metrics"] = registry.snapshot()
    if trace_log is not None:
        document["kernel_trace"] = [
            {"time": entry.time, "kind": entry.kind,
             "detail": entry.detail, "data": json_safe(entry.data)}
            for entry in trace_log]
    return document
