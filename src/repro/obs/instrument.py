"""The instrumentation seam: one object components publish into.

An :class:`Instrumentation` bundles a :class:`~repro.obs.trace.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry` behind a single
``enabled`` flag.  Every instrumented component (`Simulator`,
`DistributedResolver`, `PrefixCache`, `FailureInjector`, the async
protocol) holds one and guards its emission with ``if obs.enabled:``
— so an un-instrumented run (the :data:`NO_OBS` default) pays one
attribute check per would-be emission and allocates nothing.

Usage::

    from repro.obs import Instrumentation
    obs = Instrumentation()
    sim = Simulator(seed=0, obs=obs)
    ...
    print(obs.metrics.snapshot())
    print(len(obs.tracer.spans), "spans")
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanSampler, Tracer

__all__ = ["Instrumentation", "NO_OBS"]


class Instrumentation:
    """A tracer + metrics registry pair, enabled or inert.

    Args:
        enabled: When False the object is a pure sentinel — holders
            must skip emission (every built-in component does).
        max_spans: Ring-buffer bound forwarded to the tracer.
        sampler: Optional :class:`~repro.obs.trace.SpanSampler` — the
            always-on seam: sampled-out traces skip span storage, and
            the kernel degrades per-message metric emission to
            aggregate flushes at pump boundaries.  ``None`` (the
            default) keeps behaviour byte-identical to full
            instrumentation.
        auditor: Optional
            :class:`~repro.obs.audit.CoherenceAuditor`.  The
            resolver/caching-service hooks fire whenever an auditor is
            present — even on a *disabled* instrumentation, which is
            how experiments audit timed runs without span or metric
            overhead (the auditor only publishes metrics when the
            instrumentation is enabled).
    """

    __slots__ = ("enabled", "tracer", "metrics", "sampler", "auditor")

    def __init__(self, enabled: bool = True,
                 max_spans: Optional[int] = None,
                 sampler: Optional[SpanSampler] = None,
                 auditor: Any = None):
        self.enabled = enabled
        self.sampler = sampler
        self.tracer = Tracer(max_spans=max_spans, sampler=sampler)
        self.metrics = MetricsRegistry()
        self.auditor = auditor
        if auditor is not None:
            auditor.bind_obs(self)

    def __bool__(self) -> bool:
        """Truthiness mirrors ``enabled`` so hot paths can guard with
        ``if obs:`` — one C-level truth test instead of an attribute
        chain.  Components on the kernel's hottest paths go further
        and snapshot ``enabled`` into a local once at construction
        (the flag is fixed for an instrumentation's lifetime)."""
        return self.enabled

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<Instrumentation {state}: {len(self.tracer)} spans, "
                f"{len(self.metrics)} series>")


#: The shared inert sentinel used when no instrumentation is wired in.
#: Never emit into it and never flip its flag — construct a fresh
#: :class:`Instrumentation` to observe a run.
NO_OBS = Instrumentation(enabled=False)
