"""Ground-truth coherence auditing (extension).

Every policy in the coherence spectrum *claims* something about the
answers it serves: ``NONE`` and ``INVALIDATE`` claim freshness (up to
callback delivery), ``TTL`` claims staleness bounded by its TTL,
``LEASE`` claims staleness bounded by the lease term, and degraded
reads declare themselves weakly coherent (``cost.weak``).  Until now
the repo only ever *reported* those claims.  The
:class:`CoherenceAuditor` measures them: it subscribes to the
authoritative binding history — every bind/rebind/unbind flowing
through the resolver's and caching service's write discipline, with
its virtual timestamp and placement epoch — and tags every observed
resolution with

* **measured staleness**: the virtual-time lag between the observation
  and the last instant at which the returned answer was the
  authoritative one (``0.0`` for a fresh answer), computed by
  re-resolving the name against the recorded history ("resolve as of
  *t*"); and
* a **verdict** against the policy's :class:`CoherenceContract`:
  ``fresh``, ``stale_declared`` (the service tagged the answer weakly
  coherent — staleness was admitted), ``stale_allowed`` (claimed
  coherent, stale, but within the policy's bound, e.g. a LEASE answer
  inside ``term + delivery slack``), or ``violation`` (claimed
  coherent and stale beyond the bound — for ``INVALIDATE`` that means
  stale past the callback-delivery slack, the signature of a *lost*
  invalidation).

Verdicts feed per-policy/per-shard staleness histograms and the
:mod:`repro.obs.slo` burn counters through the ordinary metrics
registry (so the existing Prometheus/JSON exporters carry them), and
every violation or SLO burn triggers the :class:`FlightRecorder`,
which snapshots the window of kernel trace entries and recent spans —
including spans the :class:`~repro.obs.trace.SpanSampler` sampled out
of the main store — around the event into a replayable JSON artifact.

The auditor consults only the *pure* naming model
(:mod:`repro.model`) for its ground truth; it never sends messages,
never draws randomness and never touches shard load counters, so an
audited run is event-for-event identical to an unaudited one.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.model.context import Context
from repro.model.entities import Entity, UNDEFINED_ENTITY
from repro.model.names import CompoundName, NameLike, ROOT_NAME

__all__ = [
    "BindingWrite",
    "CoherenceAuditor",
    "CoherenceContract",
    "FlightRecorder",
    "VERDICTS",
]

#: Verdict vocabulary, in decreasing order of health.
VERDICTS = ("fresh", "stale_declared", "stale_allowed", "violation",
            "failed")

#: Staleness histogram buckets in virtual-time units — resolutions lag
#: by lease terms / TTLs (tens of units), not by the default
#: millisecond-flavoured scale.
STALENESS_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                     200.0, 500.0, 1000.0)

#: Sentinel: "this binding has no audited history — trust the live σ".
_NO_HISTORY = object()


class BindingWrite:
    """One committed write through the rebind discipline."""

    __slots__ = ("directory_uid", "directory_label", "component",
                 "old", "new", "time", "epoch", "seq")

    def __init__(self, directory_uid: int, directory_label: str,
                 component: str, old: Entity, new: Entity,
                 time: float, epoch: int, seq: int):
        self.directory_uid = directory_uid
        self.directory_label = directory_label
        self.component = component
        self.old = old
        self.new = new
        self.time = time
        self.epoch = epoch
        self.seq = seq

    def to_dict(self) -> dict:
        return {"seq": self.seq, "time": self.time,
                "epoch": self.epoch,
                "directory": self.directory_label,
                "component": self.component,
                "old": self.old.label if self.old.is_defined() else None,
                "new": self.new.label if self.new.is_defined() else None}

    def __repr__(self) -> str:
        return (f"<write #{self.seq} t={self.time:g} "
                f"{self.directory_label}/{self.component}: "
                f"{self.old.label}→{self.new.label} e{self.epoch}>")


class CoherenceContract:
    """What each policy promises about claimed-coherent answers.

    The bound is the maximum *measured* staleness a claimed-coherent
    (not weakly-tagged) answer may carry without being a violation:

    ============ ====================================================
    policy       allowed staleness of a claimed-coherent answer
    ============ ====================================================
    none         ``slack`` (no caching — nothing to be stale *by*)
    invalidate   ``slack`` (callbacks take delivery time; beyond it,
                 the callback was lost — §"lost INVALIDATE")
    ttl          ``ttl + slack``
    lease        ``term + slack`` (Gray & Cheriton: a server must
                 wait out the term before acting; delivery rides on
                 top)
    ============ ====================================================

    *slack* is the deployment's callback/message delivery allowance —
    the same quantity A9 calls its delivery slack.
    """

    __slots__ = ("ttl", "lease_term", "slack")

    def __init__(self, ttl: float = 0.0, lease_term: float = 0.0,
                 slack: float = 6.0):
        self.ttl = ttl
        self.lease_term = lease_term
        self.slack = slack

    def bound(self, policy: str, ttl: Optional[float] = None,
              lease_term: Optional[float] = None) -> float:
        """Allowed claimed-coherent staleness under *policy*."""
        kind = policy.lower()
        if "ttl" in kind:
            return (ttl if ttl is not None else self.ttl) + self.slack
        if "lease" in kind:
            return ((lease_term if lease_term is not None
                     else self.lease_term) + self.slack)
        return self.slack

    def __repr__(self) -> str:
        return (f"<CoherenceContract ttl={self.ttl:g} "
                f"lease_term={self.lease_term:g} slack={self.slack:g}>")


class FlightRecorder:
    """A bounded ring of violation-window dumps.

    On :meth:`capture` the recorder snapshots everything observable
    about the last *window* units of virtual time: the kernel
    :class:`~repro.sim.trace.TraceLog` entries (resolved to stable
    dicts exactly once — safe against later ring-buffer eviction) and
    the tracer's recent spans (drawn from the always-kept sampling
    ring, so a sampled-out trace still shows up in its violation
    window).  Dumps are bounded by *max_dumps*; older ones are
    discarded and counted in :attr:`dropped`.
    """

    def __init__(self, trace_log: Any = None, tracer: Any = None,
                 window: float = 25.0, max_dumps: int = 64):
        if max_dumps < 1:
            raise ValueError("max_dumps must be positive")
        self.trace_log = trace_log
        self.tracer = tracer
        self.window = window
        self.dumps: deque[dict] = deque(maxlen=max_dumps)
        self.captured = 0
        self.dropped = 0

    def wire(self, trace_log: Any = None, tracer: Any = None) -> None:
        """Late-attach the sources (the simulator usually exists only
        after the instrumentation carrying this recorder)."""
        if trace_log is not None:
            self.trace_log = trace_log
        if tracer is not None:
            self.tracer = tracer

    def capture(self, *, kind: str, time: float,
                detail: Optional[dict] = None) -> dict:
        """Dump the window ``[time - window, time]`` around an event.

        Returns the dump dict (also retained in :attr:`dumps`).
        """
        from repro.obs.export import span_to_dict

        start = time - self.window
        kernel_trace: list[dict] = []
        if self.trace_log is not None:
            kernel_trace = self.trace_log.window(start, time)
        spans: list[dict] = []
        if self.tracer is not None:
            spans = [span_to_dict(span)
                     for span in self.tracer.recent_window(start, time)]
        dump = {
            "seq": self.captured,
            "kind": kind,
            "time": time,
            "window": [start, time],
            "detail": dict(detail) if detail else {},
            "kernel_trace": kernel_trace,
            "spans": spans,
        }
        if len(self.dumps) == self.dumps.maxlen:
            self.dropped += 1
        self.dumps.append(dump)
        self.captured += 1
        return dump

    def to_dict(self) -> dict:
        """The full recorder state as a replayable JSON-safe dict."""
        return {"window": self.window,
                "captured": self.captured,
                "dropped": self.dropped,
                "dumps": list(self.dumps)}

    def dump_json(self, path: str) -> None:
        """Write :meth:`to_dict` to *path* as indented JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self.dumps)

    def __repr__(self) -> str:
        return (f"<FlightRecorder {self.captured} captured "
                f"({self.dropped} dropped) window={self.window:g}>")


class CoherenceAuditor:
    """Measures staleness against the authoritative binding history.

    Wire one into an :class:`~repro.obs.instrument.Instrumentation`
    (``Instrumentation(auditor=...)``); the resolver and caching
    service feed it writes (:meth:`record_write`) and reads
    (:meth:`observe_resolution` / :meth:`observe_lookup`).  The
    instrumentation may be *disabled*: the auditor then keeps its
    pure-python tallies (``summary()`` still works) without emitting
    any metric — that is how A9 audits its timed runs at near-zero
    overhead.

    Args:
        contract: Policy bounds; defaults match A9's deployment
            (slack 6.0).
        slo: Optional :class:`~repro.obs.slo.SLOTracker` whose burns
            also trip the recorder.
        recorder: Optional :class:`FlightRecorder` capturing windows
            around violations and SLO burns.
        max_violations: Bound on retained per-violation detail
            records (counts are never bounded).
    """

    def __init__(self, contract: Optional[CoherenceContract] = None,
                 slo: Any = None,
                 recorder: Optional[FlightRecorder] = None,
                 max_violations: int = 256):
        self.contract = contract or CoherenceContract()
        self.slo = slo
        self.recorder = recorder
        self._metrics = None        # set by bind_obs when obs is live
        self._writes: dict[tuple[int, str], list[BindingWrite]] = {}
        self._write_times: list[float] = []
        self.writes = 0
        self.observed = 0
        self.by_verdict: dict[str, int] = {v: 0 for v in VERDICTS}
        self.max_staleness = 0.0
        self.max_claimed_staleness = 0.0   # staleness of non-weak reads
        self.violations: deque[dict] = deque(maxlen=max_violations)
        self.slo_burns = 0

    # -- wiring -------------------------------------------------------------

    def bind_obs(self, obs: Any) -> None:
        """Adopt *obs*'s metrics registry (enabled instrumentation
        only) and offer its tracer to the recorder.  Called by
        ``Instrumentation.__init__``; idempotent."""
        if getattr(obs, "enabled", False):
            self._metrics = obs.metrics
            if self.recorder is not None and self.recorder.tracer is None:
                self.recorder.wire(tracer=obs.tracer)

    # -- the write side -----------------------------------------------------

    def record_write(self, directory: Entity, component: str,
                     old: Entity, new: Entity, time: float,
                     epoch: int) -> BindingWrite:
        """Record one committed bind/rebind/unbind of
        ``directory/component`` at virtual *time* under placement
        *epoch* (``old``/``new`` may be ``⊥E`` for bind/unbind)."""
        write = BindingWrite(directory.uid, directory.label, component,
                             old, new, time, epoch, self.writes)
        self._writes.setdefault(
            (directory.uid, component), []).append(write)
        times = self._write_times
        if not times or time != times[-1]:
            times.append(time)
        self.writes += 1
        if self._metrics is not None:
            self._metrics.counter("audit_writes_total").inc()
        return write

    def history_of(self, directory: Entity,
                   component: str) -> list[BindingWrite]:
        """The recorded writes for one binding, oldest first."""
        return list(self._writes.get((directory.uid, component), ()))

    # -- ground truth -------------------------------------------------------

    def _value_at(self, directory_uid: Optional[int], component: str,
                  at: float, strict: bool) -> Any:
        """The audited value of ``directory/component`` at *at*, or
        :data:`_NO_HISTORY` when no write discipline ever touched it
        (→ the live σ value is authoritative for all time)."""
        if directory_uid is None:
            return _NO_HISTORY
        writes = self._writes.get((directory_uid, component))
        if not writes:
            return _NO_HISTORY
        value = _NO_HISTORY
        for write in writes:
            if (write.time < at) if strict else (write.time <= at):
                value = write.new
            else:
                break
        if value is _NO_HISTORY:
            # *at* precedes the first write: its recorded old value is
            # the pre-history binding.
            return writes[0].old
        return value

    def resolve_as_of(self, context: Context, name_: NameLike,
                      at: float, *, strict: bool = False) -> Entity:
        """Resolve *name_* in *context* as the namespace stood at
        virtual time *at* — the §2 recursion with every audited
        binding replaced by its historical value (``strict`` excludes
        writes committed exactly at *at*).  Bindings outside the write
        discipline never change, so their live value stands in for
        all of history."""
        name_ = CompoundName.coerce(name_)
        current: Optional[Context] = context
        current_uid: Optional[int] = None
        if name_.rooted:
            root = context(ROOT_NAME)
            if len(name_) == 0:
                return root
            if not root.is_defined():
                return UNDEFINED_ENTITY
            state = root.state
            if not isinstance(state, Context):
                return UNDEFINED_ENTITY
            current, current_uid = state, root.uid
        elif len(name_) == 0:
            return UNDEFINED_ENTITY
        parts = name_.parts
        last = len(parts) - 1
        for index, component in enumerate(parts):
            entity = self._value_at(current_uid, component, at, strict)
            if entity is _NO_HISTORY:
                entity = current(component)
            if index == last:
                return entity
            if not entity.is_defined():
                return UNDEFINED_ENTITY
            state = entity.state
            if not isinstance(state, Context):
                return UNDEFINED_ENTITY
            current, current_uid = state, entity.uid
        return UNDEFINED_ENTITY

    def measure(self, context: Context, name_: NameLike,
                entity: Entity, now: float) -> float:
        """Measured staleness of answering *entity* for *name_* at
        *now*: the lag behind the newest committed binding the answer
        fails to reflect — ``now - sup{t ≤ now :
        resolve_as_of(t) = entity}``, and ``0.0`` for a fresh answer.
        An answer that was *never* authoritative (a phantom) measures
        from the oldest committed write — the conservative bound."""
        name_ = CompoundName.coerce(name_)
        truth = self.resolve_as_of(context, name_, now)
        if self._same(truth, entity):
            return 0.0
        boundaries = [t for t in self._write_times if t <= now]
        for time in reversed(boundaries):
            if self._same(self.resolve_as_of(context, name_, time,
                                             strict=True), entity):
                return now - time
        if boundaries:
            return now - boundaries[0]
        return 0.0

    @staticmethod
    def _same(a: Entity, b: Entity) -> bool:
        defined_a, defined_b = a.is_defined(), b.is_defined()
        if not defined_a or not defined_b:
            return defined_a == defined_b
        return a.uid == b.uid

    # -- the read side ------------------------------------------------------

    def observe_resolution(self, context: Context, name_: NameLike,
                           entity: Entity, *, now: float,
                           policy: str, weak: bool = False,
                           failed: bool = False,
                           latency: float = 0.0,
                           ttl: Optional[float] = None,
                           lease_term: Optional[float] = None,
                           placement: Any = None,
                           directory: Any = None,
                           component: Optional[str] = None) -> str:
        """Audit one finished resolution; returns the verdict.

        *placement*/*directory*/*component* (when supplied by the
        resolver) label the staleness sample with the owning shard —
        derived through the shard map's pure routing function, never
        the load-counting lookup paths, so auditing cannot perturb
        split decisions.
        """
        if failed:
            return self._publish("failed", 0.0, policy, "-", now,
                                 str(name_), latency, weak)
        name_ = CompoundName.coerce(name_)
        staleness = self.measure(context, name_, entity, now)
        if (directory is None and placement is not None
                and len(name_.parts) >= 1):
            directory, component = self._live_parent(context, name_)
        shard = self._shard_label(placement, directory, component)
        verdict = self._judge(staleness, weak, policy, ttl, lease_term)
        return self._publish(verdict, staleness, policy, shard, now,
                             str(name_), latency, weak)

    @staticmethod
    def _live_parent(context: Context,
                     name_: CompoundName) -> tuple[Any, Optional[str]]:
        """The directory entity holding *name_*'s final binding (live
        σ walk — pure reads, no load counting), for shard labelling."""
        current: Context = context
        parent: Any = None
        if name_.rooted:
            root = context(ROOT_NAME)
            if not root.is_defined() \
                    or not isinstance(root.state, Context):
                return None, None
            current, parent = root.state, root
        parts = name_.parts
        for component in parts[:-1]:
            entity = current(component)
            if not entity.is_defined() \
                    or not isinstance(entity.state, Context):
                return None, None
            current, parent = entity.state, entity
        return parent, (parts[-1] if parts else None)

    def observe_lookup(self, directory: Entity, component: str,
                       entity: Entity, *, now: float, policy: str,
                       weak: bool = False,
                       ttl: Optional[float] = None,
                       lease_term: Optional[float] = None,
                       placement: Any = None) -> str:
        """Audit one binding-level read (a
        :meth:`~repro.nameservice.cache.CachingDirectoryService.lookup`
        answered from cache); returns the verdict."""
        value = self._value_at(directory.uid, component, now,
                               strict=False)
        staleness = 0.0
        if value is not _NO_HISTORY and not self._same(value, entity):
            writes = self._writes[(directory.uid, component)]
            staleness = None
            for write in reversed(writes):
                if write.time <= now and self._same(write.old, entity):
                    staleness = now - write.time
                    break
            if staleness is None:
                # Phantom value: measure from the oldest commit.
                staleness = now - writes[0].time
        verdict = self._judge(staleness, weak, policy, ttl, lease_term)
        shard = self._shard_label(placement, directory, component)
        return self._publish(verdict, staleness, policy, shard, now,
                             f"{directory.label}/{component}", 0.0,
                             weak)

    # -- verdicts and accounting --------------------------------------------

    def _judge(self, staleness: float, weak: bool, policy: str,
               ttl: Optional[float],
               lease_term: Optional[float]) -> str:
        if staleness <= 0.0:
            return "fresh"
        if weak:
            return "stale_declared"
        if staleness <= self.contract.bound(policy, ttl, lease_term):
            return "stale_allowed"
        return "violation"

    def _shard_label(self, placement: Any, directory: Any,
                     component: Optional[str]) -> str:
        if placement is None or directory is None or component is None:
            return "-"
        # Pure routing read (DirectoryPlacement.shard_of_binding):
        # never the load-counting lookup, so auditing cannot perturb
        # the split policy.
        shard = placement.shard_of_binding(directory, component)
        if shard is None:
            return "-"
        return f"{shard.machine.label}@0x{shard.lo:08x}"

    def _publish(self, verdict: str, staleness: float, policy: str,
                 shard: str, now: float, name: str, latency: float,
                 weak: bool) -> str:
        self.observed += 1
        self.by_verdict[verdict] = self.by_verdict.get(verdict, 0) + 1
        if staleness > self.max_staleness:
            self.max_staleness = staleness
        if not weak and staleness > self.max_claimed_staleness:
            self.max_claimed_staleness = staleness
        metrics = self._metrics
        if metrics is not None:
            labels = {"policy": policy, "shard": shard}
            metrics.histogram("audit_staleness", labels,
                              buckets=STALENESS_BUCKETS).observe(staleness)
            metrics.counter("audit_resolutions_total",
                            {"policy": policy,
                             "verdict": verdict}).inc()
            if verdict == "violation":
                metrics.counter("audit_violations_total", labels).inc()
        detail = None
        if verdict == "violation":
            detail = {"name": name, "policy": policy, "shard": shard,
                      "time": now, "staleness": staleness,
                      "verdict": verdict}
            self.violations.append(detail)
        burned: list[str] = []
        if self.slo is not None and verdict != "failed":
            burned = self.slo.observe(staleness=staleness,
                                      latency=latency,
                                      violation=(verdict == "violation"),
                                      policy=policy)
            self.slo_burns += len(burned)
        if self.recorder is not None:
            if detail is not None:
                self.recorder.capture(kind="violation", time=now,
                                      detail=detail)
            for objective in burned:
                self.recorder.capture(
                    kind="slo_burn", time=now,
                    detail={"slo": objective, "name": name,
                            "policy": policy, "staleness": staleness,
                            "latency": latency})
        return verdict

    # -- reading ------------------------------------------------------------

    @property
    def violation_count(self) -> int:
        return self.by_verdict.get("violation", 0)

    def summary(self) -> dict:
        """A JSON-safe digest of everything measured — what
        experiments embed as ``ExperimentResult.audit``."""
        stale = (self.by_verdict.get("stale_declared", 0)
                 + self.by_verdict.get("stale_allowed", 0)
                 + self.by_verdict.get("violation", 0))
        summary = {
            "observed": self.observed,
            "writes": self.writes,
            "stale": stale,
            "violations": self.violation_count,
            "slo_burns": self.slo_burns,
            "max_staleness": round(self.max_staleness, 6),
            "max_claimed_staleness": round(self.max_claimed_staleness,
                                           6),
            "by_verdict": {k: v for k, v in sorted(
                self.by_verdict.items()) if v},
        }
        if self.slo is not None:
            summary["slo"] = self.slo.status()
        if self.recorder is not None:
            summary["flight_dumps"] = self.recorder.captured
        return summary

    def __repr__(self) -> str:
        return (f"<CoherenceAuditor observed={self.observed} "
                f"writes={self.writes} "
                f"violations={self.violation_count}>")
