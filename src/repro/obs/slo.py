"""Service-level objectives over audited resolutions (extension).

An :class:`SLObjective` declares what "good" means for one aspect of
the naming service — a staleness ceiling, a latency ceiling, or simply
"no contract violations" — together with the fraction of observations
that must be good (``target``).  The :class:`SLOTracker` scores every
audited resolution against each declared objective, keeps good/burn
tallies, and exports them as ``slo_events_total{slo=...,outcome=...}``
counters through the ordinary metrics registry, so the existing
Prometheus/JSON exporters carry SLO burn rates with no new plumbing.

A *burn* is one observation that misses an objective.  The
:class:`~repro.obs.audit.CoherenceAuditor` forwards each burn to its
flight recorder, so the window around any burn is preserved even when
span sampling is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["SLObjective", "SLOTracker"]


@dataclass(frozen=True)
class SLObjective:
    """One declared objective.

    Any ``None`` ceiling is not checked; an objective with only
    ``violation_free`` set scores the auditor's verdict alone.

    Args:
        name: Label carried on the exported counters.
        max_staleness: Good answers measure at most this stale.
        max_latency: Good answers cost at most this much virtual
            time.
        violation_free: Good answers are not contract violations.
        target: Required good fraction (``0.999`` → "three nines").
    """

    name: str
    max_staleness: Optional[float] = None
    max_latency: Optional[float] = None
    violation_free: bool = True
    target: float = 1.0

    def good(self, staleness: float, latency: float,
             violation: bool) -> bool:
        if self.violation_free and violation:
            return False
        if (self.max_staleness is not None
                and staleness > self.max_staleness):
            return False
        if self.max_latency is not None and latency > self.max_latency:
            return False
        return True


class SLOTracker:
    """Scores observations against declared objectives.

    Args:
        objectives: The declared :class:`SLObjective` set.
        metrics: Optional
            :class:`~repro.obs.metrics.MetricsRegistry` receiving
            ``slo_events_total`` counters (omitted → tallies only).
    """

    def __init__(self, objectives: list[SLObjective],
                 metrics: Any = None):
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.objectives = list(objectives)
        self.metrics = metrics
        self.events: dict[str, int] = {n: 0 for n in names}
        self.burns: dict[str, int] = {n: 0 for n in names}

    def observe(self, *, staleness: float, latency: float = 0.0,
                violation: bool = False,
                policy: str = "-") -> list[str]:
        """Score one observation; returns the names of the objectives
        it burned."""
        burned: list[str] = []
        metrics = self.metrics
        for objective in self.objectives:
            name = objective.name
            self.events[name] += 1
            good = objective.good(staleness, latency, violation)
            if not good:
                self.burns[name] += 1
                burned.append(name)
            if metrics is not None:
                metrics.counter(
                    "slo_events_total",
                    {"slo": name, "policy": policy,
                     "outcome": "good" if good else "burn"}).inc()
        return burned

    def burn_fraction(self, name: str) -> float:
        """Burned fraction of the observations scored so far."""
        events = self.events[name]
        return (self.burns[name] / events) if events else 0.0

    def met(self, name: str) -> bool:
        """Whether the objective currently holds (burn fraction within
        the error budget ``1 - target``)."""
        objective = next(o for o in self.objectives if o.name == name)
        return self.burn_fraction(name) <= (1.0 - objective.target)

    def status(self) -> dict:
        """Per-objective state as a JSON-safe dict."""
        return {
            objective.name: {
                "events": self.events[objective.name],
                "burns": self.burns[objective.name],
                "burn_fraction": round(
                    self.burn_fraction(objective.name), 6),
                "target": objective.target,
                "met": self.met(objective.name),
            }
            for objective in self.objectives
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{self.burns[name]}/{self.events[name]}"
            for name in self.events)
        return f"<SLOTracker {parts}>"
