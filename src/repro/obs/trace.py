"""Typed spans over virtual time: the tracing half of `repro.obs`.

A :class:`Span` is one timed, attributed unit of work — a resolution,
one message hop, a cache probe — linked into a tree by
``parent_id`` and grouped into a *trace* by ``trace_id``.  The
:class:`Tracer` mints ids (deterministically, from counters, so runs
with the same seed produce identical traces), keeps an activation
stack so nested work parents itself automatically, and stores every
span for export (`repro.obs.export`) and inspection
(`repro.obs.inspect`).

Span taxonomy (see docs/observability.md for the catalog):

========== ==========================================================
kind       meaning
========== ==========================================================
batch      one :meth:`DistributedResolver.resolve_many` call
resolution one compound name's walk (root span in single resolves)
hop        one message leg (named referral/query/forward/answer/…)
step       one component consumed at a server (instant)
cache      a prefix-cache probe outcome (instant: ``prefix.hit``,
           ``prefix.miss``, ``prefix.expired``)
rebind     one write through the resolver's write discipline
deliver    kernel delivery of a trace-carrying message (instant)
drop       kernel drop of a trace-carrying message (instant)
lookup     one async-protocol lookup (`repro.nameservice.protocol`)
failure    an injected failure/reconfiguration event (instant)
========== ==========================================================
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Span", "Tracer"]

#: Sentinel distinguishing "parent omitted → use the active span" from
#: an explicit ``parent=None`` (→ start a new root/trace).
_CURRENT = object()


@dataclass
class Span:
    """One timed, attributed unit of work in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    kind: str
    name: str
    start: float
    end: Optional[float] = None
    status: str = "ok"          #: ``"ok"`` or ``"failed"``
    reason: str = ""            #: failure detail when status is failed
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed virtual time (0.0 while open or for instants)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def fail(self, reason: str) -> "Span":
        """Mark the span failed; returns self for chaining."""
        self.status = "failed"
        self.reason = reason
        return self

    def __repr__(self) -> str:
        flag = "" if self.status == "ok" else f" FAILED({self.reason})"
        return (f"<span {self.span_id} {self.kind}:{self.name} "
                f"t={self.start:g}..{self.end if self.end is not None else '…'}"
                f"{flag}>")


class Tracer:
    """Mints, activates and stores spans.

    Args:
        max_spans: Optional ring-buffer bound — the oldest spans are
            evicted once the store is full (``dropped_spans`` counts
            them), so long benchmark runs cannot grow without bound.
    """

    def __init__(self, max_spans: Optional[int] = None):
        self.max_spans = max_spans
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.dropped_spans = 0

    # -- minting -----------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span (automatic parent), if any."""
        return self._stack[-1] if self._stack else None

    def new_trace_id(self) -> str:
        return f"t{next(self._trace_ids)}"

    def _store(self, span: Span) -> Span:
        if (self.max_spans is not None
                and len(self._spans) == self.max_spans):
            self.dropped_spans += 1
        self._spans.append(span)
        return span

    def begin(self, kind: str, name: str, time: float, *,
              parent: Any = _CURRENT,
              trace_id: Optional[str] = None,
              attrs: Optional[dict] = None,
              activate: bool = True) -> Span:
        """Open a span starting at virtual *time*.

        With *parent* omitted the span nests under :attr:`current`;
        pass ``parent=None`` to root a **new trace** (unless an
        explicit *trace_id* joins an existing one).  Activated spans
        become :attr:`current` until :meth:`end`.
        """
        parent_span: Optional[Span] = (self.current
                                       if parent is _CURRENT else parent)
        if trace_id is None:
            trace_id = (parent_span.trace_id if parent_span is not None
                        else self.new_trace_id())
        span = Span(trace_id=trace_id,
                    span_id=f"s{next(self._span_ids)}",
                    parent_id=(parent_span.span_id
                               if parent_span is not None else None),
                    kind=kind, name=name, start=time,
                    attrs=dict(attrs) if attrs else {})
        self._store(span)
        if activate:
            self._stack.append(span)
        return span

    def end(self, span: Span, time: float) -> Span:
        """Close *span* at virtual *time* and deactivate it."""
        span.end = time
        if span in self._stack:
            # Pop through to the span (defensive: tolerates a child
            # left open by an aborted walk).
            while self._stack:
                if self._stack.pop() is span:
                    break
        return span

    def event(self, kind: str, name: str, time: float, *,
              trace_id: Optional[str] = None,
              parent_span_id: Optional[str] = None,
              attrs: Optional[dict] = None) -> Span:
        """Record an instant (zero-duration) span.

        Unlike :meth:`begin`, the parent may be given as a raw span
        id — that is how trace context carried by a kernel
        :class:`~repro.sim.messages.Message` re-enters the tracer at
        delivery time without holding a :class:`Span` object.
        """
        active = self.current
        if trace_id is None and active is not None:
            trace_id = active.trace_id
        if parent_span_id is None and active is not None:
            parent_span_id = active.span_id
        span = Span(trace_id=trace_id or self.new_trace_id(),
                    span_id=f"s{next(self._span_ids)}",
                    parent_id=parent_span_id,
                    kind=kind, name=name, start=time, end=time,
                    attrs=dict(attrs) if attrs else {})
        return self._store(span)

    # -- reading -----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Every stored span, in start order (a copy)."""
        return list(self._spans)

    def of_trace(self, trace_id: str) -> list[Span]:
        """All spans of one trace, in start order."""
        return [s for s in self._spans if s.trace_id == trace_id]

    def of_kind(self, kind: str) -> list[Span]:
        """All spans of one kind, in start order."""
        return [s for s in self._spans if s.kind == kind]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all stored spans (the activation stack survives)."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)
