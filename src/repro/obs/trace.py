"""Typed spans over virtual time: the tracing half of `repro.obs`.

A :class:`Span` is one timed, attributed unit of work — a resolution,
one message hop, a cache probe — linked into a tree by
``parent_id`` and grouped into a *trace* by ``trace_id``.  The
:class:`Tracer` mints ids (deterministically, from counters, so runs
with the same seed produce identical traces), keeps an activation
stack so nested work parents itself automatically, and stores every
span for export (`repro.obs.export`) and inspection
(`repro.obs.inspect`).

Span taxonomy (see docs/observability.md for the catalog):

========== ==========================================================
kind       meaning
========== ==========================================================
batch      one :meth:`DistributedResolver.resolve_many` call
resolution one compound name's walk (root span in single resolves)
hop        one message leg (named referral/query/forward/answer/…)
step       one component consumed at a server (instant)
cache      a prefix-cache probe outcome (instant: ``prefix.hit``,
           ``prefix.miss``, ``prefix.expired``)
rebind     one write through the resolver's write discipline
deliver    kernel delivery of a trace-carrying message (instant)
drop       kernel drop of a trace-carrying message (instant)
lookup     one async-protocol lookup (`repro.nameservice.protocol`)
failure    an injected failure/reconfiguration event (instant)
========== ==========================================================
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Span", "SpanSampler", "Tracer"]

#: Sentinel distinguishing "parent omitted → use the active span" from
#: an explicit ``parent=None`` (→ start a new root/trace).
_CURRENT = object()


class SpanSampler:
    """Deterministic, seed-driven head sampling of whole traces.

    The decision is a pure function of ``(seed, trace sequence
    number)`` — no RNG state, so two runs with the same seed sample
    the *same* traces regardless of what else executed, and the
    kernel's virtual-time event order never shifts.  A sampled-out
    trace still mints its ids and drives the activation stack (so
    nesting and determinism are untouched); only storage in the
    tracer's main span store is skipped.  Every span — kept or not —
    additionally lands in a bounded ``recent`` ring sized by
    *window*, which is what the flight recorder reads to reconstruct
    the moments around a violation: violation windows are always
    kept, whatever the sampling rate.

    Args:
        rate: Fraction of traces to keep in the main store
            (``0.0`` → none, ``1.0`` → all).
        seed: Decision seed; runs sharing it sample identically.
        window: Size of the always-kept recent-span ring.
    """

    __slots__ = ("rate", "seed", "window")

    def __init__(self, rate: float, seed: int = 0, window: int = 256):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if window < 1:
            raise ValueError("window must be positive")
        self.rate = rate
        self.seed = seed
        self.window = window

    def keep_trace(self, trace_seq: int) -> bool:
        """Whether trace number *trace_seq* goes to the main store.

        A splitmix-style integer hash of (seed, sequence) compared
        against the rate: deterministic, stateless, uniform enough for
        sampling decisions.
        """
        x = (trace_seq * 0x9E3779B97F4A7C15
             + self.seed * 0xBF58476D1CE4E5B9 + 0x94D049BB) \
            & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        return (x & 0xFFFFFFFF) < self.rate * 4294967296.0

    def __repr__(self) -> str:
        return (f"<SpanSampler rate={self.rate:g} seed={self.seed} "
                f"window={self.window}>")


@dataclass
class Span:
    """One timed, attributed unit of work in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    kind: str
    name: str
    start: float
    end: Optional[float] = None
    status: str = "ok"          #: ``"ok"`` or ``"failed"``
    reason: str = ""            #: failure detail when status is failed
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed virtual time (0.0 while open or for instants)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def fail(self, reason: str) -> "Span":
        """Mark the span failed; returns self for chaining."""
        self.status = "failed"
        self.reason = reason
        return self

    def __repr__(self) -> str:
        flag = "" if self.status == "ok" else f" FAILED({self.reason})"
        return (f"<span {self.span_id} {self.kind}:{self.name} "
                f"t={self.start:g}..{self.end if self.end is not None else '…'}"
                f"{flag}>")


class Tracer:
    """Mints, activates and stores spans.

    Args:
        max_spans: Optional ring-buffer bound — the oldest spans are
            evicted once the store is full (``dropped_spans`` counts
            them), so long benchmark runs cannot grow without bound.
        sampler: Optional :class:`SpanSampler`.  Sampled-out traces
            skip the main store (counted in ``sampled_out``) but every
            span still transits the bounded ``recent`` ring, which
            :meth:`recent_window` serves to the flight recorder.
            ``None`` keeps every span — byte-identical to the
            pre-sampling tracer.
    """

    def __init__(self, max_spans: Optional[int] = None,
                 sampler: Optional[SpanSampler] = None):
        self.max_spans = max_spans
        self.sampler = sampler
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._recent: Optional[deque[Span]] = (
            deque(maxlen=sampler.window) if sampler is not None else None)
        self._stack: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.dropped_spans = 0
        self.sampled_out = 0

    # -- minting -----------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span (automatic parent), if any."""
        return self._stack[-1] if self._stack else None

    def new_trace_id(self) -> str:
        return f"t{next(self._trace_ids)}"

    def _kept(self, trace_id: str) -> bool:
        """Whether *trace_id*'s spans go to the main store.

        A pure function of the id — minted ids are ``t<seq>``, so the
        sampler's stateless hash decides without any per-trace state.
        Foreign-format ids (never minted here) are always kept.
        """
        sampler = self.sampler
        if sampler is None:
            return True
        try:
            seq = int(trace_id[1:])
        except (ValueError, IndexError):
            return True
        return sampler.keep_trace(seq)

    def _store(self, span: Span) -> Span:
        recent = self._recent
        if recent is not None:
            recent.append(span)
            if not self._kept(span.trace_id):
                self.sampled_out += 1
                return span
        if (self.max_spans is not None
                and len(self._spans) == self.max_spans):
            self.dropped_spans += 1
        self._spans.append(span)
        return span

    def begin(self, kind: str, name: str, time: float, *,
              parent: Any = _CURRENT,
              trace_id: Optional[str] = None,
              attrs: Optional[dict] = None,
              activate: bool = True) -> Span:
        """Open a span starting at virtual *time*.

        With *parent* omitted the span nests under :attr:`current`;
        pass ``parent=None`` to root a **new trace** (unless an
        explicit *trace_id* joins an existing one).  Activated spans
        become :attr:`current` until :meth:`end`.
        """
        parent_span: Optional[Span] = (self.current
                                       if parent is _CURRENT else parent)
        if trace_id is None:
            trace_id = (parent_span.trace_id if parent_span is not None
                        else self.new_trace_id())
        span = Span(trace_id=trace_id,
                    span_id=f"s{next(self._span_ids)}",
                    parent_id=(parent_span.span_id
                               if parent_span is not None else None),
                    kind=kind, name=name, start=time,
                    attrs=dict(attrs) if attrs else {})
        self._store(span)
        if activate:
            self._stack.append(span)
        return span

    def end(self, span: Span, time: float) -> Span:
        """Close *span* at virtual *time* and deactivate it."""
        span.end = time
        if span in self._stack:
            # Pop through to the span (defensive: tolerates a child
            # left open by an aborted walk).
            while self._stack:
                if self._stack.pop() is span:
                    break
        return span

    def event(self, kind: str, name: str, time: float, *,
              trace_id: Optional[str] = None,
              parent_span_id: Optional[str] = None,
              attrs: Optional[dict] = None) -> Span:
        """Record an instant (zero-duration) span.

        Unlike :meth:`begin`, the parent may be given as a raw span
        id — that is how trace context carried by a kernel
        :class:`~repro.sim.messages.Message` re-enters the tracer at
        delivery time without holding a :class:`Span` object.
        """
        active = self.current
        if trace_id is None and active is not None:
            trace_id = active.trace_id
        if parent_span_id is None and active is not None:
            parent_span_id = active.span_id
        span = Span(trace_id=trace_id or self.new_trace_id(),
                    span_id=f"s{next(self._span_ids)}",
                    parent_id=parent_span_id,
                    kind=kind, name=name, start=time, end=time,
                    attrs=dict(attrs) if attrs else {})
        return self._store(span)

    # -- reading -----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Every stored span, in start order (a copy)."""
        return list(self._spans)

    def of_trace(self, trace_id: str) -> list[Span]:
        """All spans of one trace, in start order."""
        return [s for s in self._spans if s.trace_id == trace_id]

    def of_kind(self, kind: str) -> list[Span]:
        """All spans of one kind, in start order."""
        return [s for s in self._spans if s.kind == kind]

    def recent_window(self, start: float, end: float) -> list[Span]:
        """Spans whose start lies within ``[start, end]``, drawn from
        the always-kept recent ring when sampling is active (so
        sampled-out spans are still visible to the flight recorder),
        falling back to the main store otherwise."""
        source = self._recent if self._recent is not None else self._spans
        return [s for s in source if start <= s.start <= end]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all stored spans (the activation stack survives)."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)
