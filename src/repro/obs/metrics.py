"""Metrics: counters, gauges and bounded histograms (extension).

A :class:`MetricsRegistry` is the numeric half of the observability
layer (`repro.obs`): components publish named instruments into it —
message counts, cache hit/miss tallies, per-server load, resolution
latency distributions — and exporters read one consistent
:meth:`MetricsRegistry.snapshot` out.

Instruments are *labelled* (Prometheus-style): the same metric name
with different label sets yields independent time series, so e.g.
``resolver_server_load_total{server="dirserver@b-m"}`` and the same
counter for another server never collide.  Histograms are **bounded**:
fixed bucket boundaries and running aggregates only, never a growing
sample list — safe for benchmark runs of any length.

Everything here is pure bookkeeping over the *virtual* clock; nothing
imports the simulator, so the package stays a dependency leaf that
``repro.sim`` and ``repro.nameservice`` can hook into freely.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LabelSet"]

#: A frozen, order-normalised label set (how series are keyed).
LabelSet = tuple[tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count (events, messages, steps)."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be nonnegative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A value that goes up and down (queue depth, cache size)."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0
    #: High-water mark since creation (or the last explicit reset).
    high_water: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)
        if self.value > self.high_water:
            self.high_water = self.value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


#: Default histogram bucket upper bounds, in virtual time units or
#: counts — a rough log scale wide enough for both latencies and
#: messages-per-resolution.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                   500.0, 1000.0)


@dataclass
class Histogram:
    """A bounded histogram: fixed buckets plus running aggregates.

    Only ``len(buckets) + 1`` bucket counters and five scalars are
    kept, regardless of how many observations arrive — the bounded
    counterpart of keeping every sample.
    """

    name: str
    labels: LabelSet = ()
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.bucket_counts:
            # One count per bound plus the +Inf overflow bucket.
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending
        with the ``+Inf`` bucket."""
        out = []
        running = 0
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out


class MetricsRegistry:
    """A namespace of labelled instruments, get-or-create style.

    >>> registry = MetricsRegistry()
    >>> registry.counter("messages_total").inc()
    >>> registry.counter("messages_total").value
    1.0
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}

    # -- get-or-create -----------------------------------------------------

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, _freeze_labels(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        return instrument

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, _freeze_labels(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1])
            self._gauges[key] = instrument
        return instrument

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = (name, _freeze_labels(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(
                name, key[1],
                buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS)
            self._histograms[key] = instrument
        return instrument

    # -- reading -----------------------------------------------------------

    def counters(self) -> list[Counter]:
        return list(self._counters.values())

    def gauges(self) -> list[Gauge]:
        return list(self._gauges.values())

    def histograms(self) -> list[Histogram]:
        return list(self._histograms.values())

    def value_of(self, name: str,
                 labels: Optional[Mapping[str, str]] = None) -> float:
        """The current value of a counter or gauge (0.0 if absent)."""
        key = (name, _freeze_labels(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return 0.0

    def total_of(self, name: str) -> float:
        """The summed value of every series of a counter family."""
        return sum(c.value for c in self._counters.values()
                   if c.name == name)

    def snapshot(self) -> dict:
        """A JSON-serialisable dump of every instrument.

        Series keys render labels Prometheus-style
        (``name{k="v",...}``) so snapshots diff cleanly run-to-run.
        """
        def series_key(name: str, labels: LabelSet) -> str:
            if not labels:
                return name
            inner = ",".join(f'{k}="{v}"' for k, v in labels)
            return f"{name}{{{inner}}}"

        return {
            "counters": {series_key(c.name, c.labels): c.value
                         for c in self._counters.values()},
            "gauges": {series_key(g.name, g.labels):
                       {"value": g.value, "high_water": g.high_water}
                       for g in self._gauges.values()},
            "histograms": {
                series_key(h.name, h.labels): {
                    "count": h.count,
                    "sum": h.total,
                    "mean": h.mean,
                    "min": h.min_value if h.count else None,
                    "max": h.max_value if h.count else None,
                    "buckets": [[bound, count] for bound, count
                                in h.cumulative()
                                if bound != float("inf")],
                    "inf_count": h.cumulative()[-1][1],
                }
                for h in self._histograms.values()},
        }

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))
