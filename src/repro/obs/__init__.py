"""Observability for the simulated name service (extension).

The paper's cost arguments — §2 resolution walks, closure-rule
choices, cache-coherence trade-offs — are credible only if every
message hop, cache decision and invalidation is *observable* rather
than inferred from aggregate counters.  This package is that seam:

* :mod:`repro.obs.trace` — typed :class:`Span` trees over virtual
  time, with trace-context propagation through kernel messages;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labelled
  counters, gauges and bounded histograms;
* :mod:`repro.obs.instrument` — the :class:`Instrumentation` bundle
  components publish into (no-op by default via :data:`NO_OBS`);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON, Prometheus
  text, and JSON run summaries (all export-safe for arbitrary
  simulation payloads);
* :mod:`repro.obs.inspect` — hop-tree reconstruction and hot-spot
  rankings, driven by ``tools/inspect_run.py``;
* :mod:`repro.obs.audit` — the :class:`CoherenceAuditor` measuring
  ground-truth staleness against the authoritative binding history,
  with the violation-triggered :class:`FlightRecorder`;
* :mod:`repro.obs.slo` — declared staleness/latency objectives with
  burn counters over the audited stream.

The package is (almost) a dependency leaf: apart from the audit
module consulting the *pure* naming model (:mod:`repro.model`, itself
dependency-free) as its ground-truth oracle, it imports nothing from
the rest of ``repro``, so the kernel and name service can hook into
it freely.
"""

from repro.obs.audit import (
    BindingWrite,
    CoherenceAuditor,
    CoherenceContract,
    FlightRecorder,
)
from repro.obs.export import (
    json_safe,
    run_summary,
    to_chrome_trace,
    to_prometheus_text,
)
from repro.obs.inspect import (
    format_hop_tree,
    hop_tree,
    hottest_directories,
    hottest_servers,
    trace_roots,
)
from repro.obs.instrument import NO_OBS, Instrumentation
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import SLObjective, SLOTracker
from repro.obs.trace import Span, SpanSampler, Tracer

__all__ = [
    "BindingWrite",
    "CoherenceAuditor",
    "CoherenceContract",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NO_OBS",
    "SLObjective",
    "SLOTracker",
    "Span",
    "SpanSampler",
    "Tracer",
    "format_hop_tree",
    "hop_tree",
    "hottest_directories",
    "hottest_servers",
    "json_safe",
    "run_summary",
    "to_chrome_trace",
    "to_prometheus_text",
    "trace_roots",
]
