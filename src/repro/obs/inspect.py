"""Run inspection: hop trees and hot-spot rankings over spans.

The analysis layer `tools/inspect_run.py` prints: reconstruct each
trace's span tree (:func:`hop_tree`, :func:`format_hop_tree`) and rank
the servers/directories a run leaned on hardest
(:func:`hottest_servers`, :func:`hottest_directories`).  Everything
here works on plain :class:`~repro.obs.trace.Span` lists, so it
applies equally to a live tracer and to spans reloaded from a run
summary.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Iterable, Optional

from repro.obs.trace import Span

__all__ = ["hop_tree", "format_hop_tree", "hottest_servers",
           "hottest_directories", "trace_roots"]


def trace_roots(spans: Iterable[Span]) -> list[Span]:
    """The root spans (no parent within their trace), in start order."""
    spans = list(spans)
    ids = {span.span_id for span in spans}
    return [span for span in spans
            if span.parent_id is None or span.parent_id not in ids]


def hop_tree(spans: Iterable[Span]) -> list[dict]:
    """Spans nested into trees: one dict per root, children inline.

    Each node is ``{"span": Span, "children": [node, ...]}`` with
    children in start order (ties broken by span id so the order is
    deterministic).
    """
    spans = sorted(spans, key=lambda s: (s.start, _span_seq(s)))
    nodes = {span.span_id: {"span": span, "children": []}
             for span in spans}
    roots: list[dict] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


def _span_seq(span: Span) -> int:
    try:
        return int(span.span_id.lstrip("s"))
    except ValueError:  # pragma: no cover - foreign span ids
        return 0


_SHOWN_ATTRS = ("messages", "consumed", "steps", "cached_steps",
                "server", "component", "style", "policy", "count")


def _describe(span: Span) -> str:
    bits = [f"{span.kind}:{span.name}"]
    if span.duration > 0:
        bits.append(f"t={span.start:g}..{span.end:g}")
    else:
        bits.append(f"t={span.start:g}")
    for key in _SHOWN_ATTRS:
        if key in span.attrs:
            bits.append(f"{key}={span.attrs[key]}")
    if span.status != "ok":
        bits.append(f"FAILED({span.reason})")
    return " ".join(bits)


def format_hop_tree(spans: Iterable[Span],
                    trace_id: Optional[str] = None) -> str:
    """A printable tree of one trace (or of every trace when omitted).

    >>> print(format_hop_tree(tracer.spans))   # doctest: +SKIP
    trace t1
    └─ resolution:/a/b/c/leaf t=0..8 messages=4
       ├─ step:root t=0 server=dirserver@client-m
       ...
    """
    spans = list(spans)
    if trace_id is not None:
        spans = [span for span in spans if span.trace_id == trace_id]
    lines: list[str] = []
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    for tid, trace_spans in by_trace.items():
        lines.append(f"trace {tid}")
        roots = hop_tree(trace_spans)
        for index, root in enumerate(roots):
            _render(root, "", index == len(roots) - 1, lines)
    return "\n".join(lines)


def _render(node: dict, prefix: str, last: bool,
            lines: list[str]) -> None:
    connector = "└─ " if last else "├─ "
    lines.append(prefix + connector + _describe(node["span"]))
    child_prefix = prefix + ("   " if last else "│  ")
    children = node["children"]
    for index, child in enumerate(children):
        _render(child, child_prefix, index == len(children) - 1, lines)


# -- hot spots ---------------------------------------------------------------

def hottest_servers(spans: Iterable[Span],
                    top: int = 5) -> list[tuple[str, int]]:
    """Servers ranked by walk steps they served, busiest first.

    Counts ``step`` instants by their ``server`` attribute — the same
    accounting as :attr:`DistributedResolver.load`, but recoverable
    from an exported trace alone.
    """
    tally: TallyCounter[str] = TallyCounter()
    for span in spans:
        if span.kind == "step" and "server" in span.attrs:
            tally[span.attrs["server"]] += 1
    return tally.most_common(top)


def hottest_directories(spans: Iterable[Span],
                        top: int = 5) -> list[tuple[str, int]]:
    """Directories ranked by how often a walk read a binding in them."""
    tally: TallyCounter[str] = TallyCounter()
    for span in spans:
        if span.kind == "step" and "directory" in span.attrs:
            tally[span.attrs["directory"]] += 1
    return tally.most_common(top)
