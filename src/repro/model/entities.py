"""Entities: activities, objects and the undefined entity (section 2).

The paper's model distinguishes *activities* (active entities that
perform computation and exchange messages — e.g. a Unix process) from
*objects* (passive entities — e.g. a Unix file).  The entity sets are::

    E = A ∪ O ∪ {⊥E}

where ``⊥E`` is the *undefined entity*, the value of a context at a name
it does not bind.  ``A`` and ``O`` are disjoint and ``⊥E ∉ A ∪ O``.

Each entity has a *state*; see :mod:`repro.model.state`.  An object
whose state is a context is a *context object* (a directory).

Entities compare by identity: two distinct objects are different
entities even if their states are equal.  (Equality of states is what
*weak coherence* is about; see :mod:`repro.replication.weak`.)
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import EntityError


class Entity:
    """Base class for every entity in the model (the set ``E``).

    Args:
        label: A human-readable label used in reprs, traces and reports.
            Labels carry *no* naming semantics — entities are denoted by
            names bound in contexts, never by their labels.
    """

    _counter = itertools.count(1)
    KIND = "entity"

    __slots__ = ("uid", "label", "_state")

    def __init__(self, label: str = ""):
        self.uid: int = next(Entity._counter)
        self.label: str = label or f"{self.KIND}-{self.uid}"
        self._state: Any = None

    @property
    def state(self) -> Any:
        """The entity's current state (``σ(e)`` in the paper)."""
        return self._state

    @state.setter
    def state(self, value: Any) -> None:
        self._state = value

    def is_activity(self) -> bool:
        """True if this entity is in the set ``A``."""
        return isinstance(self, Activity)

    def is_object(self) -> bool:
        """True if this entity is in the set ``O``."""
        return isinstance(self, ObjectEntity)

    def is_defined(self) -> bool:
        """True unless this is the undefined entity ``⊥E``."""
        return True

    def is_context_object(self) -> bool:
        """True if this entity is an object whose state is a context."""
        # Imported here to avoid a cycle: context.py imports entities.
        from repro.model.context import Context

        return self.is_object() and isinstance(self._state, Context)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label!r} #{self.uid}>"


class Activity(Entity):
    """An active entity (the set ``A``): performs computation on
    objects and communicates with other activities.

    Examples from the paper: a Unix process, a Waterloo Port process,
    the user-interface activity that injects names typed by a human.
    """

    KIND = "activity"
    __slots__ = ()


class ObjectEntity(Entity):
    """A passive entity (the set ``O``): e.g. a file or a directory.

    An :class:`ObjectEntity` whose state is a
    :class:`~repro.model.context.Context` is a *context object* — the
    model's notion of a directory.
    """

    KIND = "object"
    __slots__ = ()


#: Convenient short alias for :class:`ObjectEntity`.
Obj = ObjectEntity


class _UndefinedEntity(Entity):
    """The undefined entity ``⊥E`` — a unique sentinel, not in A ∪ O.

    Resolving an unbound name yields this value; it is an entity so the
    model stays total, but it is neither an activity nor an object and
    its state is permanently the undefined state ``⊥S``.
    """

    KIND = "undefined"
    __slots__ = ()

    _instance: Optional["_UndefinedEntity"] = None

    def __new__(cls) -> "_UndefinedEntity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __init__(self):
        # Initialize only once; repeated construction returns the
        # singleton unchanged.
        if not hasattr(self, "uid") or self.uid is None:  # pragma: no cover
            super().__init__("⊥E")
        if getattr(self, "label", None) != "⊥E":
            super().__init__("⊥E")

    @property
    def state(self) -> Any:
        from repro.model.state import UNDEFINED_STATE

        return UNDEFINED_STATE

    @state.setter
    def state(self, value: Any) -> None:
        raise EntityError("the undefined entity ⊥E has no mutable state")

    def is_defined(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "UNDEFINED_ENTITY"

    def __bool__(self) -> bool:
        return False


#: The undefined entity ``⊥E``.  Falsy, so ``if resolved:`` reads well.
UNDEFINED_ENTITY = _UndefinedEntity()


def require_activity(entity: Entity) -> Activity:
    """Return *entity* as an :class:`Activity` or raise
    :class:`~repro.errors.EntityError`."""
    if not isinstance(entity, Activity):
        raise EntityError(f"expected an activity, got {entity!r}")
    return entity


def require_object(entity: Entity) -> ObjectEntity:
    """Return *entity* as an :class:`ObjectEntity` or raise
    :class:`~repro.errors.EntityError`."""
    if not isinstance(entity, ObjectEntity):
        raise EntityError(f"expected an object, got {entity!r}")
    return entity
