"""Serialising naming systems to plain data (and back).

A system's naming state — its entities and every context binding — can
be exported to a JSON-compatible dict and rebuilt later.  Useful for
fixture files, for diffing two systems' naming graphs, and for
shipping a scenario between tools without executing builder code.

Scope: naming structure only.  Entity *states* other than contexts are
serialised when they are strings or numbers and dropped otherwise
(structured objects, simulator processes and scheme wiring are
behaviour, not naming state); the undefined entity is never exported.
Round-trip guarantee (property-tested): the rebuilt system has an
isomorphic naming graph — same labels, same kinds, same labelled
edges — and every path that resolved before resolves to the
corresponding entity after.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError
from repro.model.context import Context
from repro.model.entities import Activity, Entity, ObjectEntity
from repro.model.state import GlobalState

__all__ = ["dump_state", "load_state"]

_FORMAT = "repro-naming-state-v1"


def dump_state(sigma: GlobalState) -> dict[str, Any]:
    """Export σ's naming structure to a JSON-compatible dict."""
    entities = []
    bindings = []
    for entity in sorted(sigma, key=lambda e: e.uid):
        record: dict[str, Any] = {
            "id": entity.uid,
            "kind": "activity" if entity.is_activity() else "object",
            "label": entity.label,
        }
        state = entity.state
        if isinstance(state, Context):
            record["directory"] = True
            for name_ in state.names():
                target = state(name_)
                if target in sigma:
                    bindings.append({"from": entity.uid, "name": name_,
                                     "to": target.uid})
        elif isinstance(state, (str, int, float, bool)):
            record["state"] = state
        entities.append(record)
    return {"format": _FORMAT, "entities": entities,
            "bindings": bindings}


def load_state(document: dict[str, Any],
               ) -> tuple[GlobalState, dict[int, Entity]]:
    """Rebuild a system from :func:`dump_state` output.

    Returns the new σ and a mapping from *original* ids to the fresh
    entities (fresh uids are allocated; the mapping lets callers
    re-find specific nodes).
    """
    if document.get("format") != _FORMAT:
        raise ReproError(
            f"not a {_FORMAT} document: {document.get('format')!r}")
    sigma = GlobalState()
    by_original_id: dict[int, Entity] = {}
    for record in document["entities"]:
        if record["kind"] == "activity":
            entity: Entity = Activity(record["label"])
        else:
            entity = ObjectEntity(record["label"])
            if record.get("directory"):
                entity.state = Context(label=record["label"])
            elif "state" in record:
                entity.state = record["state"]
        sigma.add(entity)
        by_original_id[record["id"]] = entity
    for binding in document["bindings"]:
        source = by_original_id.get(binding["from"])
        target = by_original_id.get(binding["to"])
        if source is None or target is None:
            raise ReproError(
                f"dangling binding {binding['from']} → {binding['to']}")
        if not source.is_context_object():
            raise ReproError(
                f"binding from non-directory entity {source!r}")
        source.state.bind(binding["name"], target)
    return sigma, by_original_id
