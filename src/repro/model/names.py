"""Names and compound names (paper section 2).

The paper treats a *name* as an uninterpreted identifier drawn from a set
``N`` and a *compound name* as a nonempty sequence of names (an element
of ``N+``).  Path names of files in a tree-structured file system are the
canonical example of compound names.

In this library an **atomic name** is a nonempty :class:`str` that does
not contain the separator character ``/``.  A **compound name** is an
immutable sequence of atomic names, :class:`CompoundName`.  The textual
form ``a/b/c`` parses to the compound name ``(a, b, c)``.

Two textual conventions used by the naming schemes in sections 5-7 are
supported here but given *no meaning* at the model level:

* a leading ``/`` (``/a/b``) marks a name as *rooted*; schemes resolve
  rooted names starting from an activity's root binding (the paper's
  ``R(p)(/)`` in the Unix analysis, section 5.1);
* the component ``..`` refers to a parent directory; only schemes whose
  trees track parents (e.g. the Newcastle Connection, section 5.1) give
  it meaning.

Keeping the model layer free of path semantics mirrors the paper, where
the recursive resolution of ``n1 ... nk`` (section 2) is defined purely
in terms of contexts and context objects.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Union

from repro.errors import NameSyntaxError

#: The separator used in the textual form of compound names.
SEPARATOR = "/"

#: The distinguished binding name for an activity's root directory.
#: The paper's Unix analysis (section 5.1) says a process context "has
#: two bindings: one for the root directory, and the other for the
#: working directory"; ``R(p)(/)`` is the root binding.  ``ROOT_NAME``
#: is the one name allowed to contain the separator: it may be bound in
#: a context but can never occur as a component of a compound name.
ROOT_NAME = "/"

#: The conventional parent-directory component (meaningful only to
#: schemes that implement it, e.g. the Newcastle Connection).
PARENT = ".."

#: The conventional self component (skipped during parsing, like the
#: empty component produced by doubled separators).
SELF = "."


def is_atomic_name(text: object) -> bool:
    """Return True if *text* is a valid atomic name.

    An atomic name is a nonempty string without the separator ``/``.
    ``..`` and ``.`` are valid atomic names; their special treatment is
    purely a matter of scheme convention.
    """
    return isinstance(text, str) and bool(text) and SEPARATOR not in text


def check_atomic_name(text: object) -> str:
    """Validate *text* as an atomic name and return it.

    Raises:
        NameSyntaxError: if *text* is not a valid atomic name.
    """
    if not is_atomic_name(text):
        raise NameSyntaxError(f"not a valid atomic name: {text!r}")
    return text  # type: ignore[return-value]


class CompoundName(Sequence[str]):
    """An immutable, nonempty-or-empty sequence of atomic names.

    The paper's ``N+`` contains only nonempty sequences; the empty
    compound name is allowed here as the identity for concatenation
    (resolving it is a no-op that returns the starting context object).
    Use :meth:`require_nonempty` where the paper's ``N+`` is meant.

    Instances are hashable and totally ordered (lexicographically),
    which lets them key dictionaries of measured coherence results.
    """

    __slots__ = ("_parts", "_rooted")

    def __init__(self, parts: Iterable[str] = (), rooted: bool = False):
        checked = tuple(check_atomic_name(p) for p in parts)
        self._parts: tuple[str, ...] = checked
        self._rooted = bool(rooted)

    # -- construction ------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "CompoundName":
        """Parse the textual form ``[/]a/b/c`` into a compound name.

        Empty components (from doubled separators or a trailing ``/``)
        and ``.`` components are dropped.  A leading ``/`` sets
        :attr:`rooted`.

        >>> CompoundName.parse("/usr/bin/cc")
        CompoundName.parse('/usr/bin/cc')
        >>> CompoundName.parse("a//b/./c").parts
        ('a', 'b', 'c')
        """
        if not isinstance(text, str):
            raise NameSyntaxError(f"expected str, got {type(text).__name__}")
        rooted = text.startswith(SEPARATOR)
        parts = [p for p in text.split(SEPARATOR) if p and p != SELF]
        return cls(parts, rooted=rooted)

    @classmethod
    def coerce(cls, value: "NameLike") -> "CompoundName":
        """Coerce a str, an iterable of atomic names, or a
        :class:`CompoundName` into a :class:`CompoundName`."""
        if isinstance(value, CompoundName):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        return cls(value)

    def require_nonempty(self) -> "CompoundName":
        """Return self, raising if the name is empty (the paper's N+)."""
        if not self._parts:
            raise NameSyntaxError("a compound name in N+ must be nonempty")
        return self

    # -- structure ---------------------------------------------------

    @property
    def parts(self) -> tuple[str, ...]:
        """The atomic components as a tuple."""
        return self._parts

    @property
    def rooted(self) -> bool:
        """True if the textual form began with ``/``."""
        return self._rooted

    @property
    def first(self) -> str:
        """The first component (``n1`` in the paper's recursion)."""
        self.require_nonempty()
        return self._parts[0]

    @property
    def rest(self) -> "CompoundName":
        """The name with its first component removed (``n2 ... nk``).

        The result is never rooted: the recursion of section 2 resolves
        the remainder relative to the context object reached so far.
        """
        self.require_nonempty()
        return CompoundName(self._parts[1:])

    @property
    def last(self) -> str:
        """The final component (the name bound in the parent context)."""
        self.require_nonempty()
        return self._parts[-1]

    @property
    def parent(self) -> "CompoundName":
        """The name with its last component removed, keeping rootedness."""
        self.require_nonempty()
        return CompoundName(self._parts[:-1], rooted=self._rooted)

    def is_simple(self) -> bool:
        """True if the name has exactly one component (an element of N)."""
        return len(self._parts) == 1

    # -- algebra -----------------------------------------------------

    def child(self, component: str) -> "CompoundName":
        """Return this name extended with one atomic component."""
        return CompoundName(self._parts + (check_atomic_name(component),),
                            rooted=self._rooted)

    def join(self, other: "NameLike") -> "CompoundName":
        """Concatenate, keeping this name's rootedness.

        If *other* is rooted it replaces self entirely, matching the
        usual path-join convention.
        """
        other = CompoundName.coerce(other)
        if other.rooted:
            return other
        return CompoundName(self._parts + other._parts, rooted=self._rooted)

    def relative(self) -> "CompoundName":
        """A copy of this name with :attr:`rooted` cleared."""
        if not self._rooted:
            return self
        return CompoundName(self._parts)

    def as_rooted(self) -> "CompoundName":
        """A copy of this name with :attr:`rooted` set."""
        if self._rooted:
            return self
        return CompoundName(self._parts, rooted=True)

    def starts_with(self, prefix: "NameLike") -> bool:
        """True if *prefix*'s components are a prefix of this name's.

        Rootedness must agree for a rooted prefix: ``/vice`` is a prefix
        of ``/vice/usr`` but not of ``vice/usr``.
        """
        prefix = CompoundName.coerce(prefix)
        if prefix.rooted and not self._rooted:
            return False
        k = len(prefix._parts)
        return self._parts[:k] == prefix._parts

    def strip_prefix(self, prefix: "NameLike") -> "CompoundName":
        """Remove a leading *prefix*; the result is relative.

        Raises:
            NameSyntaxError: if *prefix* is not actually a prefix.
        """
        prefix = CompoundName.coerce(prefix)
        if not self.starts_with(prefix):
            raise NameSyntaxError(f"{self} does not start with {prefix}")
        return CompoundName(self._parts[len(prefix._parts):])

    def with_prefix(self, prefix: "NameLike") -> "CompoundName":
        """Return ``prefix / self`` (the human mapping of section 7)."""
        return CompoundName.coerce(prefix).join(self.relative())

    def normalized(self) -> "CompoundName":
        """Collapse ``..`` components against preceding ordinary ones.

        Leading ``..`` components of a relative name are preserved (they
        escape the starting context, as in the Newcastle Connection);
        for a rooted name leading ``..`` components are dropped, the
        usual Unix rule that the root is its own parent.
        """
        out: list[str] = []
        for part in self._parts:
            if part == PARENT and out and out[-1] != PARENT:
                out.pop()
            elif part == PARENT and self._rooted and not out:
                continue
            else:
                out.append(part)
        return CompoundName(out, rooted=self._rooted)

    # -- sequence protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parts)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return CompoundName(self._parts[index])
        return self._parts[index]

    def __contains__(self, item: object) -> bool:
        return item in self._parts

    # -- identity ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CompoundName):
            return (self._parts, self._rooted) == (other._parts, other._rooted)
        return NotImplemented

    def __lt__(self, other: "CompoundName") -> bool:
        if not isinstance(other, CompoundName):
            return NotImplemented
        return (not self._rooted, self._parts) < (not other._rooted, other._parts)

    def __hash__(self) -> int:
        return hash((self._parts, self._rooted))

    def __str__(self) -> str:
        body = SEPARATOR.join(self._parts)
        return (SEPARATOR + body) if self._rooted else body

    def __repr__(self) -> str:
        return f"CompoundName.parse({str(self)!r})"


#: Anything the public API accepts where a name is expected.
NameLike = Union[str, CompoundName, Iterable[str]]


def name(value: NameLike) -> CompoundName:
    """Shorthand for :meth:`CompoundName.coerce` (module-level helper)."""
    return CompoundName.coerce(value)
