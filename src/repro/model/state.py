"""Entity states and the global state function σ (section 2).

The paper's model gives every entity a state drawn from::

    S = S_A ∪ S_O ∪ {⊥S}

where ``S_A`` (activity states) and ``S_O`` (object states) are disjoint
and ``⊥S`` is the undefined state.  The global state of the system is
the function ``σ : E → S``.

In this library states are ordinary Python values stored on the entity
(``entity.state``); contexts (:class:`repro.model.context.Context`) are
legal object states, which is what makes an object a *context object*.
:class:`GlobalState` is a thin, explicit view implementing σ over a
collection of entities, convenient for snapshotting and for stating the
replicated-object property of section 5 (``σ(o1) = ... = σ(og)``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any, Optional

from repro.model.entities import Entity, UNDEFINED_ENTITY


class _UndefinedState:
    """The undefined state ``⊥S`` — a unique falsy sentinel."""

    _instance: Optional["_UndefinedState"] = None
    __slots__ = ()

    def __new__(cls) -> "_UndefinedState":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED_STATE"

    def __bool__(self) -> bool:
        return False


#: The undefined state ``⊥S``.
UNDEFINED_STATE = _UndefinedState()


class GlobalState:
    """The global state function ``σ : E → S`` over a set of entities.

    The view is *live*: it reads ``entity.state`` at lookup time.  Use
    :meth:`snapshot` to capture an immutable picture (used by the
    coherence auditor to compare states at distinct instants).

    >>> from repro.model.entities import ObjectEntity
    >>> o = ObjectEntity("f")
    >>> o.state = "hello"
    >>> sigma = GlobalState([o])
    >>> sigma(o)
    'hello'
    """

    def __init__(self, entities: Iterable[Entity] = ()):
        self._entities: dict[int, Entity] = {}
        for entity in entities:
            self.add(entity)

    def add(self, entity: Entity) -> Entity:
        """Register *entity* in this global state's domain."""
        if entity is not UNDEFINED_ENTITY:
            self._entities[entity.uid] = entity
        return entity

    def discard(self, entity: Entity) -> None:
        """Remove *entity* from the domain (no error if absent)."""
        self._entities.pop(entity.uid, None)

    def __call__(self, entity: Entity) -> Any:
        """Return ``σ(entity)``.

        Entities outside the registered domain — including the undefined
        entity — map to ``⊥S``, keeping σ total as in the paper.
        """
        if entity.uid in self._entities:
            return entity.state
        if entity is UNDEFINED_ENTITY:
            return UNDEFINED_STATE
        return UNDEFINED_STATE

    def __contains__(self, entity: Entity) -> bool:
        return entity.uid in self._entities

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    def __len__(self) -> int:
        return len(self._entities)

    def activities(self) -> list[Entity]:
        """All registered activities (the set ``A`` of this system)."""
        return [e for e in self if e.is_activity()]

    def objects(self) -> list[Entity]:
        """All registered objects (the set ``O`` of this system)."""
        return [e for e in self if e.is_object()]

    def context_objects(self) -> list[Entity]:
        """All registered context objects (directories)."""
        return [e for e in self if e.is_context_object()]

    def snapshot(self) -> dict[int, Any]:
        """An immutable-ish picture: uid → state at this instant.

        Context states are copied so later binds do not alter the
        snapshot; other states are captured by reference.
        """
        from repro.model.context import Context

        picture: dict[int, Any] = {}
        for uid, entity in self._entities.items():
            state = entity.state
            if isinstance(state, Context):
                state = state.copy()
            picture[uid] = state
        return picture
