"""The formal naming model of Radia & Pachl, section 2.

Exports the model's vocabulary: names and compound names, entities
(activities, objects, the undefined entity), states and the global
state σ, contexts, compound-name resolution, and the naming graph.
"""

from repro.model.context import Context, context_object
from repro.model.entities import (
    Activity,
    Entity,
    Obj,
    ObjectEntity,
    UNDEFINED_ENTITY,
    require_activity,
    require_object,
)
from repro.model.graph import NamingGraph
from repro.model.names import (
    PARENT,
    ROOT_NAME,
    SELF,
    SEPARATOR,
    CompoundName,
    NameLike,
    check_atomic_name,
    is_atomic_name,
    name,
)
from repro.model.resolution import (
    ResolutionStep,
    ResolutionTrace,
    resolve,
    resolve_traced,
)
from repro.model.serialize import dump_state, load_state
from repro.model.state import GlobalState, UNDEFINED_STATE

__all__ = [
    "Activity",
    "CompoundName",
    "Context",
    "Entity",
    "GlobalState",
    "NameLike",
    "NamingGraph",
    "Obj",
    "ObjectEntity",
    "PARENT",
    "ROOT_NAME",
    "ResolutionStep",
    "ResolutionTrace",
    "SELF",
    "SEPARATOR",
    "UNDEFINED_ENTITY",
    "UNDEFINED_STATE",
    "check_atomic_name",
    "context_object",
    "dump_state",
    "is_atomic_name",
    "load_state",
    "name",
    "require_activity",
    "require_object",
    "resolve",
    "resolve_traced",
]
