"""The naming graph (section 2).

The naming graph describes the state of the context objects in a
system: a directed graph with labelled edges whose nodes are the
entities of ``A ∪ O``, with an edge labelled ``n`` from object ``o`` to
entity ``e`` whenever ``o`` is a context object and ``σ(o)(n) = e``.
Resolving a compound name corresponds to traversing a directed path.

:class:`NamingGraph` is a *live view* over a :class:`GlobalState`: it
re-reads context-object states on every query, so mutations to the
system (bind/unbind, attach, relocation) are immediately visible.  A
:func:`snapshot <NamingGraph.to_networkx>` into a ``networkx``
``MultiDiGraph`` is available for analysis and visualisation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from typing import Optional

import networkx as nx

from repro.model.context import Context
from repro.model.entities import Entity
from repro.model.names import PARENT, CompoundName
from repro.model.resolution import resolve
from repro.model.state import GlobalState

__all__ = ["NamingGraph"]


class NamingGraph:
    """A live view of the naming graph of a system.

    >>> from repro.model.context import context_object
    >>> from repro.model.state import GlobalState
    >>> sigma = GlobalState()
    >>> root = sigma.add(context_object("root"))
    >>> etc = sigma.add(context_object("etc"))
    >>> root.state.bind("etc", etc)
    >>> graph = NamingGraph(sigma)
    >>> [(o.label, n, e.label) for o, n, e in graph.edges()]
    [('root', 'etc', 'etc')]
    """

    def __init__(self, sigma: GlobalState):
        self._sigma = sigma

    @property
    def sigma(self) -> GlobalState:
        """The global state this graph is a view of."""
        return self._sigma

    def nodes(self) -> list[Entity]:
        """All entities in ``A ∪ O``."""
        return list(self._sigma)

    def edges(self) -> Iterator[tuple[Entity, str, Entity]]:
        """Yield every labelled edge ``(o, n, e)`` with ``σ(o)(n) = e``.

        Edges are yielded in a deterministic order (by object uid, then
        by name) so experiment output is reproducible.
        """
        for obj in sorted(self._sigma.context_objects(), key=lambda o: o.uid):
            context: Context = obj.state
            for name_ in context.names():
                yield obj, name_, context(name_)

    def out_edges(self, entity: Entity) -> list[tuple[str, Entity]]:
        """The labelled edges leaving *entity* (empty unless it is a
        context object)."""
        if not entity.is_context_object():
            return []
        context: Context = entity.state
        return [(n, context(n)) for n in context.names()]

    def reachable_from(self, start: Entity) -> set[Entity]:
        """All entities reachable from *start* by directed paths,
        including *start* itself."""
        seen: dict[int, Entity] = {start.uid: start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for _name, target in self.out_edges(node):
                if target.uid not in seen:
                    seen[target.uid] = target
                    frontier.append(target)
        return set(seen.values())

    def paths_to(self, start: Entity, goal: Entity,
                 max_depth: int = 12, max_paths: int = 64,
                 ) -> list[CompoundName]:
        """Compound names that resolve from *start*'s context to *goal*.

        Performs a bounded BFS over edge labels; used by experiments to
        ask "by what names can this activity refer to that entity?".
        Cycles (e.g. ``..`` edges) are handled by the depth bound.
        """
        results: list[CompoundName] = []
        frontier: deque[tuple[Entity, tuple[str, ...]]] = deque([(start, ())])
        while frontier and len(results) < max_paths:
            node, path = frontier.popleft()
            if len(path) >= max_depth:
                continue
            for name_, target in self.out_edges(node):
                full = path + (name_,)
                if target is goal:
                    results.append(CompoundName(full))
                    if len(results) >= max_paths:
                        break
                frontier.append((target, full))
        return results

    def verify_resolution_correspondence(self, start: Entity,
                                         name_: CompoundName) -> bool:
        """Check the paper's claim that resolving a compound name
        corresponds to traversing a directed path in the naming graph.

        Returns True if walking the graph edge-by-edge from *start*
        reaches exactly ``resolve(σ(start), name_)``.
        """
        if not start.is_context_object():
            return False
        node: Entity = start
        for index, component in enumerate(name_.parts):
            if not node.is_context_object():
                return not resolve(start.state, name_).is_defined()
            context: Context = node.state
            target = context(component)
            if not target.is_defined():
                return not resolve(start.state, name_).is_defined()
            node = target
        return node is resolve(start.state, name_)

    def to_networkx(self) -> nx.MultiDiGraph:
        """Snapshot the naming graph into a ``networkx.MultiDiGraph``.

        Node keys are entity uids with ``label`` and ``kind`` attributes;
        edge keys are the binding names.
        """
        graph = nx.MultiDiGraph()
        for entity in self.nodes():
            graph.add_node(entity.uid, label=entity.label, kind=entity.KIND,
                           context=entity.is_context_object())
        for obj, name_, target in self.edges():
            if target.uid not in graph:
                graph.add_node(target.uid, label=target.label,
                               kind=target.KIND,
                               context=target.is_context_object())
            graph.add_edge(obj.uid, target.uid, key=name_, label=name_)
        return graph

    def to_dot(self, highlight: Optional[Entity] = None) -> str:
        """Render the naming graph in Graphviz DOT format.

        Directories are boxes, leaf objects ellipses, activities
        diamonds; ``..`` edges are dashed.  *highlight* (if given) is
        filled — handy when eyeballing what a resolution reached.
        """
        lines = ["digraph naming_graph {", "  rankdir=LR;"]
        for entity in sorted(self.nodes(), key=lambda e: e.uid):
            if entity.is_context_object():
                shape = "box"
            elif entity.is_activity():
                shape = "diamond"
            else:
                shape = "ellipse"
            attrs = [f'label="{entity.label}"', f"shape={shape}"]
            if highlight is not None and entity is highlight:
                attrs.append('style=filled fillcolor=lightgrey')
            lines.append(f'  n{entity.uid} [{" ".join(attrs)}];')
        for obj, name_, target in self.edges():
            style = ' style=dashed' if name_ == PARENT else ""
            lines.append(f'  n{obj.uid} -> n{target.uid} '
                         f'[label="{name_}"{style}];')
        lines.append("}")
        return "\n".join(lines)

    def is_tree(self, root: Entity) -> bool:
        """True if the subgraph reachable from *root* (ignoring ``..``
        back-edges) is a tree: every reachable node has exactly one
        incoming labelled edge apart from the root."""
        indegree: dict[int, int] = {}
        reachable = self.reachable_from(root)
        ids = {e.uid for e in reachable}
        for obj, name_, target in self.edges():
            if name_ == "..":
                continue
            if obj.uid in ids and target.uid in ids:
                indegree[target.uid] = indegree.get(target.uid, 0) + 1
        if indegree.get(root.uid, 0) != 0:
            return False
        return all(indegree.get(e.uid, 0) == 1
                   for e in reachable if e is not root)
