"""Contexts: functions from names to entities (section 2).

A *context* is a function ``c : N → E`` that maps names to entities; the
set of contexts is ``C = [N → E]``.  A name ``n`` is *bound* to entity
``e`` in context ``c`` when ``c(n) = e``.

:class:`Context` represents such a function extensionally, as a finite
set of bindings; every unbound name maps to the undefined entity ``⊥E``,
so the function is total as required.  A context is a legal *object
state* (``C ⊆ S_O``): storing a :class:`Context` as the state of an
:class:`~repro.model.entities.ObjectEntity` makes that object a
*context object* — the model's directory.

Contexts compare by *extension* (their binding sets), not identity.
That is exactly the comparison coherence is defined with: activities
``a1, a2`` are coherent for ``n`` when ``R(a1)(n) = R(a2)(n)`` — the
same entity, whichever context function produced it.  Two distinct
:class:`Context` instances with equal bindings resolve every name
identically and therefore *are* the same context function.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Optional

from repro.errors import BindingError
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, check_atomic_name

__all__ = ["Context", "context_object"]


class Context:
    """A finite-support total function from atomic names to entities.

    >>> from repro.model.entities import ObjectEntity
    >>> c = Context()
    >>> f = ObjectEntity("motd")
    >>> c.bind("motd", f)
    >>> c("motd") is f
    True
    >>> c("absent")
    UNDEFINED_ENTITY
    """

    __slots__ = ("_bindings", "label")

    def __init__(self, bindings: Optional[Mapping[str, Entity]] = None,
                 label: str = ""):
        self._bindings: dict[str, Entity] = {}
        self.label = label
        if bindings:
            for name_, entity in bindings.items():
                self.bind(name_, entity)

    # -- the function ------------------------------------------------

    def __call__(self, name_: str) -> Entity:
        """Return ``c(name)`` — the bound entity, or ``⊥E`` if unbound."""
        return self._bindings.get(name_, UNDEFINED_ENTITY)

    def resolve_atomic(self, name_: str) -> Entity:
        """Alias of :meth:`__call__`, for call sites that read better
        with an explicit verb."""
        return self(name_)

    # -- binding management -------------------------------------------

    def bind(self, name_: str, entity: Entity) -> None:
        """Bind *name_* to *entity* in this context.

        Binding to ``⊥E`` is the same as unbinding, keeping the
        extensional view consistent (the function already maps every
        unbound name to ``⊥E``).

        The distinguished name ``"/"`` (:data:`repro.model.names.ROOT_NAME`)
        may be bound: it is the root-directory binding of section 5.1
        (``R(p)(/)``), consulted when resolving rooted compound names.
        """
        if name_ != ROOT_NAME:
            check_atomic_name(name_)
        if not isinstance(entity, Entity):
            raise BindingError(
                f"can only bind names to entities, got {entity!r}")
        if entity is UNDEFINED_ENTITY:
            self._bindings.pop(name_, None)
        else:
            self._bindings[name_] = entity

    def unbind(self, name_: str) -> None:
        """Remove the binding for *name_* (no error if unbound)."""
        self._bindings.pop(name_, None)

    def binds(self, name_: str) -> bool:
        """True if *name_* has a defined binding."""
        return name_ in self._bindings

    def update(self, other: "Context") -> None:
        """Copy all of *other*'s bindings into this context."""
        self._bindings.update(other._bindings)

    def clear(self) -> None:
        """Remove every binding."""
        self._bindings.clear()

    # -- views ---------------------------------------------------------

    @property
    def bindings(self) -> Mapping[str, Entity]:
        """A read-only live view of the defined bindings."""
        return dict(self._bindings)

    def names(self) -> list[str]:
        """The names with defined bindings, sorted."""
        return sorted(self._bindings)

    def entities(self) -> list[Entity]:
        """The entities this context binds (with duplicates removed,
        in first-seen order)."""
        seen: dict[int, Entity] = {}
        for entity in self._bindings.values():
            seen.setdefault(entity.uid, entity)
        return list(seen.values())

    def copy(self, label: str = "") -> "Context":
        """An independent context with the same bindings.

        This is how Unix ``fork`` inheritance is modelled (section 5.1):
        the child starts with a *copy* of the parent's context, coherent
        until one of them rebinds.
        """
        clone = Context(label=label or self.label)
        clone._bindings = dict(self._bindings)
        return clone

    def agreement(self, other: "Context") -> set[str]:
        """Names on which the two context functions agree *and* are
        defined: ``{n : self(n) = other(n) ≠ ⊥E}``.

        (All names outside both supports also agree — on ``⊥E`` — but
        only defined agreement is interesting for coherence reports.)
        """
        return {n for n, e in self._bindings.items()
                if other._bindings.get(n) is e}

    def disagreement(self, other: "Context") -> set[str]:
        """Names bound in at least one context where the functions
        differ: ``{n : self(n) ≠ other(n)}``."""
        keys = set(self._bindings) | set(other._bindings)
        return {n for n in keys if self(n) is not other(n)}

    # -- identity ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Extensional equality: equal binding sets (entity identity)."""
        if isinstance(other, Context):
            if set(self._bindings) != set(other._bindings):
                return False
            return all(other._bindings[n] is e
                       for n, e in self._bindings.items())
        return NotImplemented

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("Context is mutable and unhashable; "
                        "use frozen_bindings() as a dict key")

    def frozen_bindings(self) -> frozenset[tuple[str, int]]:
        """A hashable fingerprint of the binding set (name, entity uid)."""
        return frozenset((n, e.uid) for n, e in self._bindings.items())

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._bindings))

    def __contains__(self, name_: object) -> bool:
        return name_ in self._bindings

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}→{e.label}" for n, e in
                          sorted(self._bindings.items())[:6])
        extra = "" if len(self._bindings) <= 6 else ", …"
        tag = f" {self.label!r}" if self.label else ""
        return f"<Context{tag} {{{inner}{extra}}}>"


def context_object(label: str = "",
                   bindings: Optional[Mapping[str, Entity]] = None,
                   ) -> ObjectEntity:
    """Create an object whose state is a fresh context (a directory).

    >>> d = context_object("home")
    >>> d.is_context_object()
    True
    """
    obj = ObjectEntity(label)
    obj.state = Context(bindings, label=label)
    return obj
