"""Compound-name resolution (section 2).

The paper extends resolution from atomic to compound names with the
recursion (for ``n = n1 ... nk``, ``k ≥ 2``)::

    c(n1 ... nk) = σ(c(n1))(n2 ... nk)   when σ(c(n1)) ∈ C
                 = ⊥E                     otherwise

i.e. resolve the first component, and if it lands on a context object,
resolve the remainder in that object's state.  The result depends on the
state of the context objects along the resolution path — resolving a
compound name corresponds to traversing a directed path in the naming
graph.

:func:`resolve` implements the recursion (iteratively, so deep paths
don't hit the interpreter's recursion limit) and optionally records a
:class:`ResolutionTrace` of the traversed path, which the coherence
auditor and the naming graph use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.context import Context
from repro.model.entities import Entity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, CompoundName, NameLike

__all__ = ["ResolutionStep", "ResolutionTrace", "resolve", "resolve_traced"]


@dataclass(frozen=True)
class ResolutionStep:
    """One step of a compound resolution: *component* looked up in
    *context* yielded *result*."""

    component: str
    context: Context
    result: Entity

    def __repr__(self) -> str:
        return f"<step {self.component!r} → {self.result.label}>"


@dataclass
class ResolutionTrace:
    """The full path traversed while resolving a compound name.

    Attributes:
        name: The compound name that was resolved.
        steps: One :class:`ResolutionStep` per consumed component.
        result: The final entity (``⊥E`` on failure).
        stuck_at: Index of the component where resolution got stuck
            (the component whose lookup returned ``⊥E``, or whose result
            was not a context object while components remained), or
            ``None`` when resolution consumed the whole name.
    """

    name: CompoundName
    steps: list[ResolutionStep] = field(default_factory=list)
    result: Entity = UNDEFINED_ENTITY
    stuck_at: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        """True if the resolution produced a defined entity."""
        return self.result.is_defined()

    def path_entities(self) -> list[Entity]:
        """The entities visited, in order (one per consumed component)."""
        return [step.result for step in self.steps]

    def __repr__(self) -> str:
        status = "ok" if self.succeeded else f"stuck@{self.stuck_at}"
        return f"<trace {self.name} → {self.result.label} [{status}]>"


def resolve_traced(context: Context, name_: NameLike) -> ResolutionTrace:
    """Resolve *name_* in *context*, recording the traversal.

    Implements the section-2 recursion.  The empty compound name is not
    in the paper's ``N+``; resolving it yields ``⊥E`` (there is no
    entity "the context itself" — contexts are states, not entities).

    A *rooted* name (textual form beginning with ``/``) first looks up
    the distinguished root binding ``R(p)(/)``
    (:data:`repro.model.names.ROOT_NAME`) in *context* and resolves the
    remaining components in the root directory's context, exactly the
    section-5.1 reading of Unix path names.  The bare name ``/``
    resolves to the root directory object itself.

    A ``..`` component is looked up like any other name at this layer;
    schemes that support parent traversal bind ``..`` explicitly in
    their directory contexts (as the Newcastle Connection does).
    """
    name_ = CompoundName.coerce(name_)
    trace = ResolutionTrace(name=name_)

    current = context
    if name_.rooted:
        root = current(ROOT_NAME)
        trace.steps.append(ResolutionStep(ROOT_NAME, current, root))
        if len(name_) == 0:
            trace.result = root
            if not root.is_defined():
                trace.stuck_at = 0
            return trace
        state = root.state if root.is_defined() else None
        if not isinstance(state, Context):
            trace.result = UNDEFINED_ENTITY
            trace.stuck_at = 0
            return trace
        current = state
    elif len(name_) == 0:
        trace.stuck_at = 0
        return trace

    for index, component in enumerate(name_.parts):
        entity = current(component)
        trace.steps.append(ResolutionStep(component, current, entity))
        last = index == len(name_.parts) - 1
        if last:
            trace.result = entity
            if not entity.is_defined():
                trace.stuck_at = index
            return trace
        # More components remain: σ(c(n1)) must be a context.
        state = entity.state if entity.is_defined() else None
        if not isinstance(state, Context):
            trace.result = UNDEFINED_ENTITY
            trace.stuck_at = index
            return trace
        current = state
    return trace  # pragma: no cover - loop always returns


def resolve(context: Context, name_: NameLike) -> Entity:
    """Resolve *name_* in *context*; return the entity or ``⊥E``.

    >>> from repro.model.context import Context, context_object
    >>> from repro.model.entities import ObjectEntity
    >>> usr = context_object("usr")
    >>> cc = ObjectEntity("cc")
    >>> usr.state.bind("cc", cc)
    >>> root = Context({"usr": usr})
    >>> resolve(root, "usr/cc") is cc
    True
    """
    return resolve_traced(context, name_).result
