"""Virtual time for the discrete-event simulator.

The simulator is entirely deterministic: time is a float that only
advances when the kernel dequeues an event.  Nothing in the library
reads wall-clock time.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic virtual time.

    >>> clock = VirtualClock()
    >>> clock.now
    0.0
    >>> clock.advance_to(2.5)
    >>> clock.now
    2.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to *time*.

        Raises:
            SimulationError: if *time* is in the past — the event queue
                must never deliver events out of order.
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {time} < {self._now}")
        self._now = float(time)

    def __repr__(self) -> str:
        return f"<VirtualClock t={self._now}>"
