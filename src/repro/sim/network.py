"""Networks and machines — the topology substrate.

The paper's partially-qualified-identifier example (§6, Example 1)
assumes a three-level address hierarchy: a process has a *local
address* on a *machine* on a *network*.  This module provides exactly
that topology, with the operation the example turns on: **renumbering**
— changing a machine's or network's address "as part of relocation or
reconfiguration" — under which partially qualified identifiers stay
valid while fully qualified ones break.

Addresses are positive integers; 0 is reserved as the *unqualified*
marker in pids (:mod:`repro.pqid.pid`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import AddressError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["Network", "Machine", "Internetwork"]


class Internetwork:
    """The collection of networks in a simulation, keyed by address.

    Tracks current network addresses so renumbering can re-key lookups
    atomically.
    """

    def __init__(self) -> None:
        self._networks: dict[int, Network] = {}
        self._next_naddr = 1

    def allocate_naddr(self) -> int:
        """Allocate a fresh, never-used network address."""
        naddr = self._next_naddr
        self._next_naddr += 1
        return naddr

    def add(self, network: "Network") -> None:
        if network.naddr in self._networks:
            raise AddressError(f"network address {network.naddr} in use")
        self._networks[network.naddr] = network
        self._next_naddr = max(self._next_naddr, network.naddr + 1)

    def by_naddr(self, naddr: int) -> Optional["Network"]:
        """The network currently holding address *naddr*, or None."""
        return self._networks.get(naddr)

    def renumber(self, network: "Network", new_naddr: int) -> None:
        """Give *network* the address *new_naddr* (reconfiguration)."""
        if new_naddr <= 0:
            raise AddressError("network addresses must be positive")
        if self._networks.get(new_naddr) not in (None, network):
            raise AddressError(f"network address {new_naddr} in use")
        del self._networks[network.naddr]
        network._naddr = new_naddr
        self._networks[new_naddr] = network
        self._next_naddr = max(self._next_naddr, new_naddr + 1)

    def networks(self) -> list["Network"]:
        """All networks, ordered by current address."""
        return [self._networks[k] for k in sorted(self._networks)]

    def __len__(self) -> int:
        return len(self._networks)


class Network:
    """A network: an address and a set of machines.

    Args:
        internet: The owning :class:`Internetwork`.
        naddr: Explicit address, or None to auto-allocate.
        label: Human-readable label for traces.
    """

    def __init__(self, internet: Internetwork,
                 naddr: Optional[int] = None, label: str = ""):
        if naddr is not None and naddr <= 0:
            raise AddressError("network addresses must be positive")
        self._internet = internet
        self._naddr = naddr if naddr is not None else internet.allocate_naddr()
        self.label = label or f"net-{self._naddr}"
        self._machines: dict[int, Machine] = {}
        self._next_maddr = 1
        internet.add(self)

    @property
    def naddr(self) -> int:
        """The network's *current* address (may change on renumber)."""
        return self._naddr

    @property
    def internet(self) -> Internetwork:
        return self._internet

    def allocate_maddr(self) -> int:
        maddr = self._next_maddr
        self._next_maddr += 1
        return maddr

    def add_machine(self, machine: "Machine") -> None:
        if machine.maddr in self._machines:
            raise AddressError(
                f"machine address {machine.maddr} in use on {self.label}")
        self._machines[machine.maddr] = machine
        self._next_maddr = max(self._next_maddr, machine.maddr + 1)

    def by_maddr(self, maddr: int) -> Optional["Machine"]:
        """The machine currently holding *maddr* on this network."""
        return self._machines.get(maddr)

    def renumber_machine(self, machine: "Machine", new_maddr: int) -> None:
        """Give *machine* the address *new_maddr* on this network."""
        if new_maddr <= 0:
            raise AddressError("machine addresses must be positive")
        if machine.network is not self:
            raise SimulationError(f"{machine!r} is not on {self.label}")
        if self._machines.get(new_maddr) not in (None, machine):
            raise AddressError(f"machine address {new_maddr} in use")
        del self._machines[machine.maddr]
        machine._maddr = new_maddr
        self._machines[new_maddr] = machine
        self._next_maddr = max(self._next_maddr, new_maddr + 1)

    def machines(self) -> list["Machine"]:
        """All machines, ordered by current address."""
        return [self._machines[k] for k in sorted(self._machines)]

    def __repr__(self) -> str:
        return f"<Network {self.label!r} naddr={self._naddr}>"


class Machine:
    """A machine: an address on a network and a set of processes.

    Machines also serve as the *location* that location-dependent
    closure mechanisms key on ("a node in the graph depending on the
    location of the activity", §5.1).
    """

    def __init__(self, network: Network,
                 maddr: Optional[int] = None, label: str = ""):
        if maddr is not None and maddr <= 0:
            raise AddressError("machine addresses must be positive")
        self.network = network
        self._maddr = maddr if maddr is not None else network.allocate_maddr()
        self.label = label or f"{network.label}/m{self._maddr}"
        self._processes: dict[int, "SimProcess"] = {}
        self._next_laddr = 1
        self.alive = True
        network.add_machine(self)

    @property
    def maddr(self) -> int:
        """The machine's *current* address (may change on renumber)."""
        return self._maddr

    @property
    def naddr(self) -> int:
        """The current address of the machine's network."""
        return self.network.naddr

    def allocate_laddr(self) -> int:
        laddr = self._next_laddr
        self._next_laddr += 1
        return laddr

    def add_process(self, process: "SimProcess") -> None:
        if process.laddr in self._processes:
            raise AddressError(
                f"local address {process.laddr} in use on {self.label}")
        self._processes[process.laddr] = process

    def remove_process(self, process: "SimProcess") -> None:
        self._processes.pop(process.laddr, None)

    def by_laddr(self, laddr: int) -> Optional["SimProcess"]:
        """The process currently holding *laddr* on this machine."""
        return self._processes.get(laddr)

    def processes(self) -> list["SimProcess"]:
        """All live processes, ordered by local address."""
        return [self._processes[k] for k in sorted(self._processes)]

    def __repr__(self) -> str:
        return (f"<Machine {self.label!r} "
                f"addr=({self.naddr},{self._maddr})>")
