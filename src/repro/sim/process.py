"""Simulated processes — the activities of the distributed substrate.

A :class:`SimProcess` is an :class:`~repro.model.entities.Activity`
living on a :class:`~repro.sim.network.Machine` with a local address.
It has a mailbox, an optional message handler, and a parent link (the
parent/child structure matters to §5.1: "a child inherits the context
of its parent").

Processes do not resolve names themselves — naming schemes associate a
context with each process via a :class:`~repro.closure.meta.ContextRegistry`,
and the closure rule picked by the experiment decides whose context a
received name is resolved in.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError
from repro.model.entities import Activity
from repro.sim.messages import Message
from repro.sim.network import Machine

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["SimProcess"]

#: A message handler: called as ``handler(process, message)``.
Handler = Callable[["SimProcess", Message], None]


class SimProcess(Activity):
    """A process (activity) in the simulated distributed system."""

    KIND = "process"
    __slots__ = ("machine", "laddr", "parent", "children", "mailbox",
                 "handler", "alive", "_simulator")

    def __init__(self, simulator: "Simulator", machine: Machine,
                 label: str = "", parent: Optional["SimProcess"] = None):
        super().__init__(label)
        self.machine = machine
        self.laddr = machine.allocate_laddr()
        self.parent = parent
        self.children: list[SimProcess] = []
        self.mailbox: deque[Message] = deque()
        self.handler: Optional[Handler] = None
        self.alive = True
        self._simulator = simulator
        machine.add_process(self)
        if parent is not None:
            parent.children.append(self)

    # -- addressing ----------------------------------------------------

    @property
    def full_address(self) -> tuple[int, int, int]:
        """The process's current fully qualified address
        ``(naddr, maddr, laddr)``."""
        return (self.machine.naddr, self.machine.maddr, self.laddr)

    def same_machine(self, other: "SimProcess") -> bool:
        """True if both processes run on the same machine."""
        return self.machine is other.machine

    def same_network(self, other: "SimProcess") -> bool:
        """True if both processes' machines share a network."""
        return self.machine.network is other.machine.network

    # -- messaging -----------------------------------------------------

    def send(self, receiver: "SimProcess", payload=None,
             latency: Optional[float] = None) -> Message:
        """Send a message to *receiver* via the simulator kernel.

        Returns the in-flight :class:`Message`; attach names to it
        before the simulator is next run.
        """
        if not self.alive:
            raise SimulationError(f"dead process {self.label} cannot send")
        return self._simulator.send(self, receiver, payload, latency=latency)

    def deliver(self, message: Message) -> None:
        """Called by the kernel when a message arrives."""
        if not self.alive:
            message.dropped = True
            message.drop_reason = "receiver dead"
            return
        self.mailbox.append(message)
        if self.handler is not None:
            self.handler(self, message)

    def receive(self) -> Optional[Message]:
        """Pop the oldest mailbox message, or None if empty."""
        return self.mailbox.popleft() if self.mailbox else None

    def on_message(self, handler: Handler) -> None:
        """Install *handler* to run at each delivery (after enqueue)."""
        self.handler = handler

    # -- lifecycle -------------------------------------------------------

    def spawn_child(self, machine: Optional[Machine] = None,
                    label: str = "") -> "SimProcess":
        """Create a child process (locally, or remotely on *machine*).

        Remote children are how the paper's remote-execution scenarios
        are driven (§5.1, §6-II); the *naming scheme* decides what
        context the child gets — the kernel only creates it.
        """
        return self._simulator.spawn(machine or self.machine,
                                     label=label, parent=self)

    def exit(self) -> None:
        """Terminate this process; its addresses are not reused."""
        self.alive = False
        self.machine.remove_process(self)

    def __repr__(self) -> str:
        status = "" if self.alive else " dead"
        return (f"<SimProcess {self.label!r} "
                f"@{self.full_address}{status}>")
