"""Failure and reconfiguration injection.

The paper's §6 Example 1 motivates partially qualified identifiers by
*reconfiguration*: "when the address of a machine or a network is
changed as part of relocation or reconfiguration, pids of local
processes within the renamed machine or network remain valid".  The
injector provides exactly those reconfigurations — machine and network
renumbering — plus the ordinary failure vocabulary (crash, restart,
partition, heal) used by robustness tests.

Every injected event is observable (`repro.obs`): an instrumented
simulator records a ``failure`` span instant and bumps the
``failures_injected_total{kind=...}`` counter, so traces show exactly
where a walk crossed an injected fault.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import Machine, Network

__all__ = ["FailureInjector"]


class FailureInjector:
    """Injects failures and reconfigurations into a simulation."""

    def __init__(self, simulator: Simulator):
        self._sim = simulator

    def _observe(self, kind: str, name: str, **attrs) -> None:
        obs = self._sim.obs
        if not obs.enabled:
            return
        obs.metrics.counter("failures_injected_total",
                            {"kind": kind}).inc()
        obs.tracer.event("failure", name, self._sim.clock.now,
                         trace_id=None, parent_span_id=None,
                         attrs={"injected": kind, **attrs})

    # -- reconfiguration (the §6 Example 1 events) -----------------------

    def renumber_machine(self, machine: Machine, new_maddr: int) -> None:
        """Change a machine's address on its network.

        Processes on the machine keep running and keep their local
        addresses; only the machine component of fully qualified
        addresses changes.
        """
        old = machine.maddr
        machine.network.renumber_machine(machine, new_maddr)
        self._sim.trace.record(self._sim.clock.now, "renumber",
                               f"machine {machine.label}: "
                               f"maddr {old} → {new_maddr}")
        self._observe("renumber_machine", machine.label,
                      old=old, new=new_maddr)

    def renumber_network(self, network: Network, new_naddr: int) -> None:
        """Change a network's address in the internetwork."""
        old = network.naddr
        self._sim.internet.renumber(network, new_naddr)
        self._sim.trace.record(self._sim.clock.now, "renumber",
                               f"network {network.label}: "
                               f"naddr {old} → {new_naddr}")
        self._observe("renumber_network", network.label,
                      old=old, new=new_naddr)

    # -- failures -----------------------------------------------------------

    def crash_machine(self, machine: Machine) -> None:
        """Take a machine down: its processes die, messages to it drop."""
        if not machine.alive:
            raise SimulationError(f"{machine.label} is already down")
        machine.alive = False
        for process in machine.processes():
            process.alive = False
        self._sim.trace.record(self._sim.clock.now, "failure",
                               f"crash {machine.label}")
        self._observe("crash", machine.label)

    def restart_machine(self, machine: Machine) -> None:
        """Bring a machine back up (dead processes stay dead)."""
        machine.alive = True
        self._sim.trace.record(self._sim.clock.now, "repair",
                               f"restart {machine.label}")
        self._observe("restart", machine.label)

    def partition(self, first: Network, second: Network) -> None:
        """Partition two networks (delegates to the kernel)."""
        self._sim.partition(first, second)
        self._observe("partition", f"{first.label}⇹{second.label}")

    def heal(self, first: Network, second: Network) -> None:
        """Heal a partition (delegates to the kernel)."""
        self._sim.heal(first, second)
        self._observe("heal", f"{first.label}⇄{second.label}")
