"""Failure and reconfiguration injection.

The paper's §6 Example 1 motivates partially qualified identifiers by
*reconfiguration*: "when the address of a machine or a network is
changed as part of relocation or reconfiguration, pids of local
processes within the renamed machine or network remain valid".  The
injector provides exactly those reconfigurations — machine and network
renumbering — plus the ordinary failure vocabulary used by robustness
tests and the A8 availability ablation: crash, restart (with respawn
hooks so name servers actually come back), partition, heal, and flaky
links (per-link drop probability and latency spikes, all drawn from
the kernel's seeded RNG).

Fault *schedules* are first-class: :meth:`FailureInjector.schedule`
books a single fault at a virtual time and
:meth:`FailureInjector.schedule_timeline` books a whole scripted
timeline, so an experiment declares its disruption scenario up front
and the kernel replays it deterministically.

Every injected event is observable (`repro.obs`): an instrumented
simulator records a ``failure`` span instant and bumps the
``failures_injected_total{kind=...}`` counter, so traces show exactly
where a walk crossed an injected fault.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import Machine, Network

__all__ = ["FailureInjector"]


class FailureInjector:
    """Injects failures and reconfigurations into a simulation."""

    #: Fault kinds accepted by :meth:`schedule` / timelines, mapped to
    #: the injector method that applies them.
    TIMELINE_KINDS = ("crash", "restart", "partition", "heal",
                      "flaky_link", "steady_link")

    def __init__(self, simulator: Simulator):
        self._sim = simulator
        # Respawn hooks, run by restart_machine: (machine-or-None, fn).
        # None scopes the hook to every restart.
        self._restart_hooks: list[
            tuple[Optional[Machine], Callable[[Machine], None]]] = []

    def _observe(self, kind: str, name: str, **attrs) -> None:
        obs = self._sim.obs
        if not obs.enabled:
            return
        obs.metrics.counter("failures_injected_total",
                            {"kind": kind}).inc()
        obs.tracer.event("failure", name, self._sim.clock.now,
                         trace_id=None, parent_span_id=None,
                         attrs={"injected": kind, **attrs})

    # -- reconfiguration (the §6 Example 1 events) -----------------------

    def renumber_machine(self, machine: Machine, new_maddr: int) -> None:
        """Change a machine's address on its network.

        Processes on the machine keep running and keep their local
        addresses; only the machine component of fully qualified
        addresses changes.
        """
        old = machine.maddr
        machine.network.renumber_machine(machine, new_maddr)
        self._sim.trace.record(
            self._sim.clock.now, "renumber",
            lambda label=machine.label, old=old, new=new_maddr:
                f"machine {label}: maddr {old} → {new}")
        self._observe("renumber_machine", machine.label,
                      old=old, new=new_maddr)

    def renumber_network(self, network: Network, new_naddr: int) -> None:
        """Change a network's address in the internetwork."""
        old = network.naddr
        self._sim.internet.renumber(network, new_naddr)
        self._sim.trace.record(
            self._sim.clock.now, "renumber",
            lambda label=network.label, old=old, new=new_naddr:
                f"network {label}: naddr {old} → {new}")
        self._observe("renumber_network", network.label,
                      old=old, new=new_naddr)

    # -- failures -----------------------------------------------------------

    def crash_machine(self, machine: Machine) -> None:
        """Take a machine down: its processes die, messages to it drop.

        Crashing a machine that is already down raises
        :class:`~repro.errors.SimulationError` — a double crash in a
        hand-written scenario is almost always a scripting bug worth
        surfacing.  (Timeline-scheduled crashes are pre-validated, not
        silenced.)
        """
        if not machine.alive:
            raise SimulationError(f"{machine.label} is already down")
        machine.alive = False
        for process in machine.processes():
            process.alive = False
        self._sim.trace.record(self._sim.clock.now, "failure",
                               lambda label=machine.label:
                                   f"crash {label}")
        self._observe("crash", machine.label)

    def on_restart(self, hook: Callable[[Machine], None],
                   machine: Optional[Machine] = None) -> None:
        """Register a respawn hook run by :meth:`restart_machine`.

        The hook receives the restarted machine *after* it is marked
        alive, so it can respawn server processes and re-install their
        handlers (e.g. ``injector.on_restart(resolver.handle_restart)``
        revives directory servers and runs anti-entropy;
        :meth:`~repro.nameservice.protocol.NameLookupServer.respawn`
        does the same for the async protocol).  Pass *machine* to
        scope the hook to one machine; the default fires on every
        restart.  Hooks run in registration order.
        """
        self._restart_hooks.append((machine, hook))

    def restart_machine(self, machine: Machine) -> None:
        """Bring a machine back up and run its respawn hooks.

        Dead processes stay dead — a crash loses process state — but
        registered :meth:`on_restart` hooks run here so services can
        re-register fresh processes with their handlers.  Idempotent:
        restarting a machine that is already up does nothing (no
        hooks, no trace event).
        """
        if machine.alive:
            return
        machine.alive = True
        self._sim.trace.record(self._sim.clock.now, "repair",
                               lambda label=machine.label:
                                   f"restart {label}")
        self._observe("restart", machine.label)
        for scope, hook in self._restart_hooks:
            if scope is None or scope is machine:
                hook(machine)

    def partition(self, first: Network, second: Network) -> bool:
        """Partition two networks (delegates to the kernel).

        Idempotent: re-partitioning an already-severed pair is a no-op
        (nothing traced or counted twice).  Returns True if the link
        state changed.
        """
        if not self._sim.partition(first, second):
            return False
        self._observe("partition", f"{first.label}⇹{second.label}")
        return True

    def heal(self, first: Network, second: Network) -> bool:
        """Heal a partition (delegates to the kernel).

        Idempotent: healing an unpartitioned pair is a no-op.  Returns
        True if the link state changed.
        """
        if not self._sim.heal(first, second):
            return False
        self._observe("heal", f"{first.label}⇄{second.label}")
        return True

    def flaky_link(self, first: Network, second: Network,
                   drop_prob: float, extra_latency: float = 0.0) -> None:
        """Degrade a link: drop messages with seeded probability
        *drop_prob* and add up to *extra_latency* of seeded latency
        spike per message (delegates to the kernel; replaces any
        previous flakiness on the pair)."""
        self._sim.set_flaky_link(first, second, drop_prob, extra_latency)
        self._observe("flaky_link", f"{first.label}~{second.label}",
                      drop_prob=drop_prob, extra_latency=extra_latency)

    def steady_link(self, first: Network, second: Network) -> bool:
        """Restore a flaky link to lossless (idempotent).  Returns
        True if the link was flaky before."""
        if not self._sim.clear_flaky_link(first, second):
            return False
        self._observe("steady_link", f"{first.label}~{second.label}")
        return True

    # -- scripted fault schedules ------------------------------------------

    def schedule(self, time: float, kind: str, *args) -> None:
        """Book one fault to fire at virtual *time*.

        *kind* is one of :data:`TIMELINE_KINDS`; *args* are the
        positional arguments of the matching injector method, e.g.
        ``schedule(10.0, "crash", machine)`` or
        ``schedule(25.0, "flaky_link", lan, wan, 0.3, 2.0)``.  The
        fault is applied by the kernel's event queue when the run
        reaches *time* — resolutions in flight simply cross it.
        """
        if kind not in self.TIMELINE_KINDS:
            raise SimulationError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{', '.join(self.TIMELINE_KINDS)}")
        method = {
            "crash": self.crash_machine,
            "restart": self.restart_machine,
            "partition": self.partition,
            "heal": self.heal,
            "flaky_link": self.flaky_link,
            "steady_link": self.steady_link,
        }[kind]
        delay = time - self._sim.clock.now
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {kind} in the past "
                f"(t={time:g} < now={self._sim.clock.now:g})")
        self._sim.schedule(delay, lambda: method(*args),
                           note=f"fault {kind} @{time:g}")

    def schedule_timeline(
            self, timeline: Iterable[Sequence]) -> int:
        """Book a whole scripted fault timeline.

        *timeline* is an iterable of ``(time, kind, *args)`` tuples —
        the declarative form of a disruption scenario::

            injector.schedule_timeline([
                (10.0, "crash", machine_b),
                (40.0, "restart", machine_b),
                (60.0, "partition", lan, wan),
                (90.0, "heal", lan, wan),
            ])

        Entries may be listed in any order (the event queue sorts by
        time).  Returns the number of faults booked.
        """
        booked = 0
        for entry in timeline:
            time, kind, *args = entry
            self.schedule(time, kind, *args)
            booked += 1
        return booked
