"""Messages: how activities exchange names (Figure 1, source 2).

A message carries an arbitrary payload plus a list of *name
attachments*: names the sender embeds for the receiver to use.  Each
attachment records the entity the sender *intends* the name to denote
(resolved in the sender's context at send time), which is the ground
truth the coherence auditor scores receivers against.

Attachments may be rewritten in flight by a boundary mapper — this is
how the ``R(sender)`` rule is implemented in practice ("the resolution
rule is implemented by mapping the embedded pid", §6 Example 1); see
:mod:`repro.pqid.transport`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.model.entities import Entity
from repro.model.names import CompoundName, NameLike

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["NameAttachment", "Message"]

_message_ids = itertools.count(1)


@dataclass
class NameAttachment:
    """A name embedded in a message.

    Attributes:
        name: The name as it currently reads (possibly rewritten by a
            boundary mapper in flight).
        intended: The entity the *sender* meant the name to denote
            (``None`` if the sender did not resolve it).
        original: The name exactly as the sender wrote it.
    """

    name: CompoundName
    intended: Optional[Entity] = None
    original: Optional[CompoundName] = None

    def __post_init__(self) -> None:
        self.name = CompoundName.coerce(self.name)
        if self.original is None:
            self.original = self.name

    def rewritten(self, new_name: NameLike) -> "NameAttachment":
        """A copy with the on-the-wire name replaced (mapping step)."""
        return NameAttachment(CompoundName.coerce(new_name),
                              intended=self.intended,
                              original=self.original)

    def __repr__(self) -> str:
        target = self.intended.label if self.intended else "?"
        return f"<attachment {self.name} ⇒ {target}>"


@dataclass
class Message:
    """One message in flight between two processes."""

    sender: "SimProcess"
    receiver: "SimProcess"
    payload: Any = None
    attachments: list[NameAttachment] = field(default_factory=list)
    send_time: float = 0.0
    deliver_time: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    delivered: bool = False
    dropped: bool = False
    drop_reason: str = ""
    #: Trace context (repro.obs): set by instrumented senders so the
    #: kernel can parent its delivery/drop events into the right
    #: span tree.  ``None`` on un-instrumented traffic.
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    @property
    def settled(self) -> bool:
        """True once the kernel has delivered or dropped this message."""
        return self.delivered or self.dropped

    def attach(self, name_: NameLike,
               intended: Optional[Entity] = None) -> NameAttachment:
        """Attach a name (with the sender's intended denotation)."""
        attachment = NameAttachment(CompoundName.coerce(name_), intended)
        self.attachments.append(attachment)
        return attachment

    def crosses_machines(self) -> bool:
        """True if sender and receiver are on different machines."""
        return self.sender.machine is not self.receiver.machine

    def crosses_networks(self) -> bool:
        """True if sender and receiver are on different networks."""
        return self.sender.machine.network is not self.receiver.machine.network

    def __repr__(self) -> str:
        return (f"<msg#{self.msg_id} {self.sender.label}→"
                f"{self.receiver.label} {len(self.attachments)} names>")
