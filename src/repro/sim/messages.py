"""Messages: how activities exchange names (Figure 1, source 2).

A message carries an arbitrary payload plus a list of *name
attachments*: names the sender embeds for the receiver to use.  Each
attachment records the entity the sender *intends* the name to denote
(resolved in the sender's context at send time), which is the ground
truth the coherence auditor scores receivers against.

Attachments may be rewritten in flight by a boundary mapper — this is
how the ``R(sender)`` rule is implemented in practice ("the resolution
rule is implemented by mapping the embedded pid", §6 Example 1); see
:mod:`repro.pqid.transport`.

Both classes are ``__slots__`` classes with hand-written constructors:
the kernel allocates one :class:`Message` per send on its hottest
path, and slotted instances skip the per-object ``__dict__`` the old
dataclasses paid for.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Optional

from repro.model.entities import Entity
from repro.model.names import CompoundName, NameLike

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["NameAttachment", "Message"]

_message_ids = itertools.count(1)


class NameAttachment:
    """A name embedded in a message.

    Attributes:
        name: The name as it currently reads (possibly rewritten by a
            boundary mapper in flight).
        intended: The entity the *sender* meant the name to denote
            (``None`` if the sender did not resolve it).
        original: The name exactly as the sender wrote it.
    """

    __slots__ = ("name", "intended", "original")

    def __init__(self, name: CompoundName,
                 intended: Optional[Entity] = None,
                 original: Optional[CompoundName] = None) -> None:
        name = CompoundName.coerce(name)
        self.name = name
        self.intended = intended
        self.original = name if original is None else original

    def rewritten(self, new_name: NameLike) -> "NameAttachment":
        """A copy with the on-the-wire name replaced (mapping step)."""
        return NameAttachment(CompoundName.coerce(new_name),
                              intended=self.intended,
                              original=self.original)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NameAttachment):
            return NotImplemented
        return (self.name == other.name
                and self.intended == other.intended
                and self.original == other.original)

    __hash__ = None  # mutable, like the former dataclass

    def __repr__(self) -> str:
        target = self.intended.label if self.intended else "?"
        return f"<attachment {self.name} ⇒ {target}>"


class Message:
    """One message in flight between two processes."""

    __slots__ = ("sender", "receiver", "payload", "attachments",
                 "send_time", "deliver_time", "msg_id", "delivered",
                 "dropped", "drop_reason", "trace_id", "parent_span_id")

    def __init__(self, sender: "SimProcess", receiver: "SimProcess",
                 payload: Any = None,
                 attachments: Optional[list[NameAttachment]] = None,
                 send_time: float = 0.0, deliver_time: float = 0.0,
                 msg_id: Optional[int] = None,
                 delivered: bool = False, dropped: bool = False,
                 drop_reason: str = "",
                 trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload = payload
        self.attachments = [] if attachments is None else attachments
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.msg_id = next(_message_ids) if msg_id is None else msg_id
        self.delivered = delivered
        self.dropped = dropped
        self.drop_reason = drop_reason
        #: Trace context (repro.obs): set by instrumented senders so
        #: the kernel can parent its delivery/drop events into the
        #: right span tree.  ``None`` on un-instrumented traffic.
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id

    @property
    def settled(self) -> bool:
        """True once the kernel has delivered or dropped this message."""
        return self.delivered or self.dropped

    def _fire(self) -> None:
        """Deliver this message through the owning kernel.

        The kernel enqueues the message itself as the event-queue
        payload (no per-send closure); the run pump dispatches it by
        type, and :meth:`EventQueue.pop` wraps this method when an
        external caller pops a delivery as a :class:`ScheduledEvent`.
        """
        self.sender._simulator._deliver(self)

    def attach(self, name_: NameLike,
               intended: Optional[Entity] = None) -> NameAttachment:
        """Attach a name (with the sender's intended denotation)."""
        attachment = NameAttachment(CompoundName.coerce(name_), intended)
        self.attachments.append(attachment)
        return attachment

    def crosses_machines(self) -> bool:
        """True if sender and receiver are on different machines."""
        return self.sender.machine is not self.receiver.machine

    def crosses_networks(self) -> bool:
        """True if sender and receiver are on different networks."""
        return self.sender.machine.network is not self.receiver.machine.network

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.msg_id == other.msg_id
                and self.sender == other.sender
                and self.receiver == other.receiver
                and self.payload == other.payload
                and self.attachments == other.attachments
                and self.send_time == other.send_time
                and self.deliver_time == other.deliver_time
                and self.delivered == other.delivered
                and self.dropped == other.dropped
                and self.drop_reason == other.drop_reason
                and self.trace_id == other.trace_id
                and self.parent_span_id == other.parent_span_id)

    __hash__ = None  # mutable, like the former dataclass

    def __repr__(self) -> str:
        return (f"<msg#{self.msg_id} {self.sender.label}→"
                f"{self.receiver.label} {len(self.attachments)} names>")
