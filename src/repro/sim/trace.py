"""Simulation traces: a deterministic record of what happened.

Experiments use traces two ways: to assert causality in tests (message
m was delivered after it was sent, renumbering happened between sends)
and to print run digests in benchmark output.

The log keeps a per-kind index built **lazily** on the first
:meth:`TraceLog.of_kind` / :meth:`TraceLog.kinds` call after new
records (so the hot record path pays one deque append, nothing more),
and supports an optional ``max_entries`` ring-buffer mode for long
benchmark runs: once full, the oldest entries are evicted (and counted
in :attr:`TraceLog.evicted`) instead of growing without bound.

Detail strings are **lazy**: hot call sites (the kernel's send/deliver
path records twice per message) pass a zero-argument callable — or the
even cheaper ``(formatter, arg)`` tuple, one small tuple instead of a
closure — and :attr:`TraceEntry.detail` formats it on first read.
Entries that nothing ever inspects (the overwhelming majority, and
*every* entry a ring buffer evicts unread) never pay for string
formatting.  A ``kinds`` filter drops uninteresting kinds at record
time for benchmark runs that only care about, say, drops.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from itertools import islice
from typing import Any, Callable, Iterator, Optional, Union

__all__ = ["TraceEntry", "TraceLog"]

#: A detail: the formatted string, a zero-argument callable producing
#: it on demand, or a ``(formatter, arg)`` tuple resolved as
#: ``formatter(arg)`` — the cheapest lazy form (no closure allocation).
Detail = Union[str, Callable[[], str], tuple]


class TraceEntry:
    """One trace record: (time, kind, detail)."""

    __slots__ = ("time", "kind", "_detail", "data")

    def __init__(self, time: float, kind: str, detail: Detail,
                 data: Any = None) -> None:
        self.time = time
        self.kind = kind
        self._detail = detail
        self.data = data

    @property
    def detail(self) -> str:
        """The formatted detail (resolved exactly once, on first read).

        The resolved value is coerced to ``str`` before it is cached:
        a formatter returning a non-string would otherwise never match
        the "already resolved" check and be re-invoked on every read —
        observable (and wrong) for formatters that close over mutable
        simulation state.
        """
        detail = self._detail
        if type(detail) is not str:
            if type(detail) is tuple:
                detail = detail[0](detail[1])
            else:
                detail = detail()
            if type(detail) is not str:
                detail = str(detail)
            self._detail = detail
        return detail

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEntry):
            return NotImplemented
        return (self.time == other.time and self.kind == other.kind
                and self.detail == other.detail
                and self.data == other.data)

    def __hash__(self) -> int:
        return hash((self.time, self.kind, self.detail))

    def __repr__(self) -> str:
        return f"[t={self.time:g}] {self.kind}: {self.detail}"

    def to_dict(self) -> dict:
        """A JSON-serialisable view of the entry.

        The ``data`` payload may hold arbitrary simulation objects
        (entities, processes); anything that is not a JSON scalar is
        summarized as its ``repr`` so exporters never crash on it.
        """
        data = self.data
        if not (data is None or isinstance(data, (bool, int, float, str))):
            data = repr(data)
        return {"time": self.time, "kind": self.kind,
                "detail": self.detail, "data": data}


class TraceLog:
    """An append-only (optionally ring-buffered) log of
    :class:`TraceEntry` records.

    Args:
        max_entries: When set, the log keeps only the newest
            *max_entries* records, evicting the oldest on overflow.
        kinds: When set, only entries of these kinds are recorded at
            all; everything else is dropped at :meth:`record` time
            (the cheap filter for huge benchmark runs).
    """

    __slots__ = ("max_entries", "_entries", "_by_kind", "evicted",
                 "_kinds", "_indexed", "_index_stale")

    def __init__(self, max_entries: Optional[int] = None,
                 kinds: Optional[Iterable[str]] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: deque[TraceEntry] = deque()
        # Per-kind index, built lazily by _index(): `_indexed` counts
        # entries already indexed; an eviction shifts positions, so it
        # marks the whole index stale for a full rebuild instead.
        self._by_kind: dict[str, deque[TraceEntry]] = {}
        self._indexed = 0
        self._index_stale = False
        self._kinds = frozenset(kinds) if kinds is not None else None
        #: Entries dropped by the ring buffer since creation.
        self.evicted = 0

    @property
    def entries(self) -> deque[TraceEntry]:
        """The live entry store, oldest first (treat as read-only)."""
        return self._entries

    @property
    def kind_filter(self) -> Optional[frozenset[str]]:
        """The record-time kind filter (None records everything)."""
        return self._kinds

    def record(self, time: float, kind: str, detail: Detail,
               data: Any = None) -> Optional[TraceEntry]:
        """Append an entry; *detail* may be a string, a zero-arg
        callable, or a ``(formatter, arg)`` tuple, formatted lazily on
        first read.  Returns None when a kind filter drops the record."""
        if self._kinds is not None and kind not in self._kinds:
            return None
        # Bypass TraceEntry.__init__'s python frame: the kernel calls
        # record twice per message, so entry creation is slot stores.
        entry = TraceEntry.__new__(TraceEntry)
        entry.time = time
        entry.kind = kind
        entry._detail = detail
        entry.data = data
        entries = self._entries
        max_entries = self.max_entries
        if max_entries is not None and len(entries) >= max_entries:
            entries.popleft()
            self.evicted += 1
            self._index_stale = True
        entries.append(entry)
        return entry

    def _index(self) -> dict[str, deque[TraceEntry]]:
        """The per-kind index, (re)built on demand.

        Amortized O(new entries since last call); a ring-buffer
        eviction forces a full O(len) rebuild on the next read.
        """
        by_kind = self._by_kind
        if self._index_stale:
            by_kind.clear()
            self._indexed = 0
            self._index_stale = False
        entries = self._entries
        count = len(entries)
        if self._indexed < count:
            for entry in islice(entries, self._indexed, count):
                queue = by_kind.get(entry.kind)
                if queue is None:
                    queue = by_kind[entry.kind] = deque()
                queue.append(entry)
            self._indexed = count
        return by_kind

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """All entries with the given kind, in order (amortized
        O(new entries) + O(matches))."""
        return list(self._index().get(kind, ()))

    def kinds(self) -> list[str]:
        """The distinct kinds recorded, in first-seen order (among
        retained entries when a ring buffer has evicted)."""
        return list(self._index())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def tail(self, count: int = 10) -> list[TraceEntry]:
        """The most recent *count* entries."""
        if count <= 0:
            return []
        start = max(0, len(self._entries) - count)
        return list(islice(self._entries, start, None))

    def to_dicts(self) -> list[dict]:
        """Every entry as a JSON-safe dict (see
        :meth:`TraceEntry.to_dict`).

        The entry store is snapshotted *before* any detail is
        resolved: a lazy formatter that records into this very log (or
        triggers a ring-buffer eviction) would otherwise mutate the
        deque mid-iteration and raise — or silently skip entries.
        """
        return [entry.to_dict() for entry in tuple(self._entries)]

    def window(self, start: float, end: float) -> list[dict]:
        """Retained entries with ``start <= time <= end``, resolved to
        JSON-safe dicts at call time.

        This is the flight-recorder capture primitive: the returned
        dicts are stable snapshots — later ring-buffer evictions
        cannot invalidate them, and each lazy detail is resolved
        exactly once (here, or earlier, never again).
        """
        return [entry.to_dict() for entry in tuple(self._entries)
                if start <= entry.time <= end]
