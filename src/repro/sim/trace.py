"""Simulation traces: a deterministic record of what happened.

Experiments use traces two ways: to assert causality in tests (message
m was delivered after it was sent, renumbering happened between sends)
and to print run digests in benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceEntry", "TraceLog"]


@dataclass(frozen=True)
class TraceEntry:
    """One trace record: (time, kind, detail)."""

    time: float
    kind: str
    detail: str
    data: Any = None

    def __repr__(self) -> str:
        return f"[t={self.time:g}] {self.kind}: {self.detail}"


@dataclass
class TraceLog:
    """An append-only log of :class:`TraceEntry` records."""

    entries: list[TraceEntry] = field(default_factory=list)

    def record(self, time: float, kind: str, detail: str,
               data: Any = None) -> TraceEntry:
        entry = TraceEntry(time, kind, detail, data)
        self.entries.append(entry)
        return entry

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """All entries with the given kind, in order."""
        return [e for e in self.entries if e.kind == kind]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def tail(self, count: int = 10) -> list[TraceEntry]:
        """The most recent *count* entries."""
        return self.entries[-count:]
