"""Simulation traces: a deterministic record of what happened.

Experiments use traces two ways: to assert causality in tests (message
m was delivered after it was sent, renumbering happened between sends)
and to print run digests in benchmark output.

The log keeps a per-kind index so :meth:`TraceLog.of_kind` costs
O(matches) rather than a scan of every entry, and supports an optional
``max_entries`` ring-buffer mode for long benchmark runs: once full,
the oldest entries are evicted (and counted in
:attr:`TraceLog.evicted`) instead of growing without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterator, Optional

__all__ = ["TraceEntry", "TraceLog"]


@dataclass(frozen=True)
class TraceEntry:
    """One trace record: (time, kind, detail)."""

    time: float
    kind: str
    detail: str
    data: Any = None

    def __repr__(self) -> str:
        return f"[t={self.time:g}] {self.kind}: {self.detail}"

    def to_dict(self) -> dict:
        """A JSON-serialisable view of the entry.

        The ``data`` payload may hold arbitrary simulation objects
        (entities, processes); anything that is not a JSON scalar is
        summarized as its ``repr`` so exporters never crash on it.
        """
        data = self.data
        if not (data is None or isinstance(data, (bool, int, float, str))):
            data = repr(data)
        return {"time": self.time, "kind": self.kind,
                "detail": self.detail, "data": data}


class TraceLog:
    """An append-only (optionally ring-buffered) log of
    :class:`TraceEntry` records.

    Args:
        max_entries: When set, the log keeps only the newest
            *max_entries* records, evicting the oldest on overflow.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: deque[TraceEntry] = deque()
        self._by_kind: dict[str, deque[TraceEntry]] = {}
        #: Entries dropped by the ring buffer since creation.
        self.evicted = 0

    @property
    def entries(self) -> deque[TraceEntry]:
        """The live entry store, oldest first (treat as read-only)."""
        return self._entries

    def record(self, time: float, kind: str, detail: str,
               data: Any = None) -> TraceEntry:
        entry = TraceEntry(time, kind, detail, data)
        if (self.max_entries is not None
                and len(self._entries) >= self.max_entries):
            oldest = self._entries.popleft()
            # The oldest entry overall is also the oldest of its kind,
            # so the index eviction is O(1).
            kind_queue = self._by_kind[oldest.kind]
            kind_queue.popleft()
            if not kind_queue:
                del self._by_kind[oldest.kind]
            self.evicted += 1
        self._entries.append(entry)
        index = self._by_kind.get(kind)
        if index is None:
            index = self._by_kind[kind] = deque()
        index.append(entry)
        return entry

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """All entries with the given kind, in order (O(matches))."""
        return list(self._by_kind.get(kind, ()))

    def kinds(self) -> list[str]:
        """The distinct kinds recorded, in first-seen order."""
        return list(self._by_kind)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def tail(self, count: int = 10) -> list[TraceEntry]:
        """The most recent *count* entries."""
        if count <= 0:
            return []
        start = max(0, len(self._entries) - count)
        return list(islice(self._entries, start, None))

    def to_dicts(self) -> list[dict]:
        """Every entry as a JSON-safe dict (see
        :meth:`TraceEntry.to_dict`)."""
        return [entry.to_dict() for entry in self._entries]
