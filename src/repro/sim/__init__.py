"""Deterministic discrete-event message-passing simulator.

The distributed-system substrate hosting the paper's experiments:
virtual time, an event queue, networks/machines/processes with the
three-level address hierarchy of §6 Example 1, messages that carry
name attachments, traces, and failure/reconfiguration injection.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.messages import Message, NameAttachment
from repro.sim.network import Internetwork, Machine, Network
from repro.sim.process import SimProcess
from repro.sim.trace import TraceEntry, TraceLog

__all__ = [
    "EventQueue",
    "FailureInjector",
    "Internetwork",
    "Machine",
    "Message",
    "NameAttachment",
    "Network",
    "ScheduledEvent",
    "SimProcess",
    "Simulator",
    "TraceEntry",
    "TraceLog",
    "VirtualClock",
]
