"""The simulator kernel: deterministic discrete-event execution.

:class:`Simulator` owns the clock, the event queue, the topology
(:class:`~repro.sim.network.Internetwork`), the global state σ of all
simulated entities, a seeded RNG, and the trace log.  It provides the
few primitives every experiment builds on: create networks/machines,
spawn processes, send messages with (deterministic) latency, schedule
arbitrary actions, and run.

Message delivery honours the failure state maintained by
:class:`~repro.sim.failures.FailureInjector` (crashed machines,
network partitions, flaky links with seeded drop probability and
latency spikes).

Hot-path notes (PR 6, see ``docs/performance.md``): deliveries are
enqueued via the allocation-free :meth:`EventQueue.defer` fast path,
trace records pass lazy detail callables instead of eager f-strings,
the run pump dispatches same-instant batches without re-checking
bounds per event, and every event order — and therefore every seeded
run — is bit-for-bit identical to the unoptimized kernel (pinned by
``tests/sim/test_determinism_golden.py``).
"""

from __future__ import annotations

import itertools
import random
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.model.state import GlobalState
from repro.obs.instrument import NO_OBS, Instrumentation
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.messages import Message
from repro.sim.network import Internetwork, Machine, Network
from repro.sim.process import SimProcess
from repro.sim.trace import TraceLog

__all__ = ["Simulator"]


# Lazy trace-detail formatters for the per-message records.  The hot
# path records ``(formatter, message)`` tuples — one small tuple
# instead of a closure per record — and TraceEntry.detail calls the
# formatter on first read.  They only touch fields that are fixed by
# the time the record is made (labels, msg_id, drop_reason), so a
# lazily-read detail is identical to the eagerly formatted one.

def _fmt_send(m: Message) -> str:
    return f"{m.sender.label} → {m.receiver.label} msg#{m.msg_id}"


def _fmt_drop(m: Message) -> str:
    return f"msg#{m.msg_id}: {m.drop_reason}"


def _fmt_deliver(m: Message) -> str:
    return f"msg#{m.msg_id} at {m.receiver.label}"


class Simulator:
    """A deterministic message-passing distributed-system simulator.

    Args:
        seed: Seed for the kernel RNG; identical seeds yield identical
            runs (event order, latencies, workload draws).
        default_latency: Message latency when the sender passes none.
        obs: Optional :class:`~repro.obs.Instrumentation` the kernel
            (and everything built on it) publishes spans and metrics
            into; defaults to the inert :data:`~repro.obs.NO_OBS`, so
            un-instrumented runs pay ~zero observability cost.
        trace: Optional pre-configured :class:`TraceLog` (e.g.
            ring-buffered or kind-filtered for long benchmark runs);
            defaults to an unbounded log recording every kind.

    >>> sim = Simulator(seed=7)
    >>> net = sim.network("lan")
    >>> a = sim.spawn(sim.machine(net, label="alpha"), label="client")
    >>> b = sim.spawn(sim.machine(net, label="beta"), label="server")
    >>> _ = a.send(b, payload="ping")
    >>> sim.run()
    1
    >>> b.receive().payload
    'ping'
    """

    def __init__(self, seed: int = 0, default_latency: float = 1.0,
                 obs: Optional[Instrumentation] = None,
                 trace: Optional[TraceLog] = None):
        self.obs = obs if obs is not None else NO_OBS
        # Resolved once: the kernel's NO_OBS guard is a single local
        # attribute load instead of two chained ones per emission.
        self._obs_on = self.obs.enabled
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self.sigma = GlobalState()
        self.internet = Internetwork()
        # Callers may pass a pre-configured log (ring-buffered or
        # kind-filtered) for long benchmark runs.  The recorder is
        # bound once — replacing ``sim.trace`` mid-run is unsupported.
        self.trace = trace if trace is not None else TraceLog()
        self._record = self.trace.record
        self.default_latency = float(default_latency)
        self._partitions: set[frozenset[int]] = set()
        # Link pair → (drop probability, max extra latency); seeded
        # draws happen at send/deliver time (see FailureInjector).
        self._flaky_links: dict[frozenset[int], tuple[float, float]] = {}
        # Per-simulator message ids keep traces reproducible run-to-run.
        self._message_ids = itertools.count(1)
        # Boundary gateways (see repro.closure.boundary): each gets to
        # rewrite a message's name attachments at delivery time.
        self._gateways: list[Any] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Full mode emits per-message counters/gauges inline; with a
        # SpanSampler installed the kernel instead reconciles the
        # plain-int totals into the counters at pump boundaries
        # (_flush_message_counters) — the always-on sampled mode costs
        # one dead branch per message instead of two counter bumps and
        # a labelled gauge lookup.
        self._obs_full = self._obs_on and self.obs.sampler is None
        self._flushed_msgs = [0, 0, 0]
        if self._obs_on:
            # Instrument handles are resolved once — the hot paths
            # below never pay a registry lookup.
            metrics = self.obs.metrics
            self._m_sent = metrics.counter("sim_messages_sent_total")
            self._m_delivered = metrics.counter(
                "sim_messages_delivered_total")
            self._m_dropped = metrics.counter(
                "sim_messages_dropped_total")
            self._m_events = metrics.counter(
                "sim_events_processed_total")
            self._g_queue = metrics.gauge("sim_event_queue_depth")

    # -- topology --------------------------------------------------------

    def network(self, label: str = "",
                naddr: Optional[int] = None) -> Network:
        """Create a network."""
        network = Network(self.internet, naddr=naddr, label=label)
        self.trace.record(
            self.clock.now, "topology",
            lambda label=network.label, naddr=network.naddr:
                f"network {label} naddr={naddr}")
        return network

    def machine(self, network: Network, label: str = "",
                maddr: Optional[int] = None) -> Machine:
        """Create a machine on *network*."""
        machine = Machine(network, maddr=maddr, label=label)
        self.trace.record(
            self.clock.now, "topology",
            lambda label=machine.label, maddr=machine.maddr:
                f"machine {label} maddr={maddr}")
        return machine

    def spawn(self, machine: Machine, label: str = "",
              parent: Optional[SimProcess] = None) -> SimProcess:
        """Create a process on *machine*, registered in σ."""
        if not machine.alive:
            raise SimulationError(f"machine {machine.label} is down")
        process = SimProcess(self, machine, label=label, parent=parent)
        self.sigma.add(process)
        self.trace.record(
            self.clock.now, "spawn",
            lambda label=process.label, addr=process.full_address,
                   parent_label=parent.label if parent else None:
                f"{label} @{addr}"
                + (f" child-of {parent_label}" if parent_label else ""))
        return process

    # -- partitions (used by FailureInjector) ------------------------------

    def partition(self, first: Network, second: Network) -> bool:
        """Sever message delivery between two networks.

        Idempotent: partitioning an already-severed pair changes
        nothing.  Returns True if the link state changed.
        """
        key = frozenset((id(first), id(second)))
        if key in self._partitions:
            return False
        self._partitions.add(key)
        self.trace.record(
            self.clock.now, "failure",
            lambda a=first, b=second: f"partition {a.label} ⇹ {b.label}")
        return True

    def heal(self, first: Network, second: Network) -> bool:
        """Restore delivery between two networks.

        Idempotent: healing an unpartitioned pair changes nothing.
        Returns True if the link state changed.
        """
        key = frozenset((id(first), id(second)))
        if key not in self._partitions:
            return False
        self._partitions.discard(key)
        self.trace.record(
            self.clock.now, "repair",
            lambda a=first, b=second: f"heal {a.label} ⇄ {b.label}")
        return True

    def partitioned(self, first: Network, second: Network) -> bool:
        """True if the two networks are currently partitioned."""
        return frozenset((id(first), id(second))) in self._partitions

    # -- flaky links (used by FailureInjector) -----------------------------

    def set_flaky_link(self, first: Network, second: Network,
                       drop_prob: float,
                       extra_latency: float = 0.0) -> None:
        """Degrade the link between two networks (lossy, slow).

        Every message crossing the link is dropped with probability
        *drop_prob* (drawn from the kernel's seeded RNG — deterministic
        per seed) and, when delivered, delayed by up to
        *extra_latency* additional virtual time (also a seeded draw).
        Pass the same network twice to degrade intra-network traffic.
        Replaces any previous flakiness on the pair.
        """
        if not 0.0 <= drop_prob <= 1.0:
            raise SimulationError("drop_prob must be in [0, 1]")
        if extra_latency < 0:
            raise SimulationError("extra_latency must be nonnegative")
        self._flaky_links[frozenset((id(first), id(second)))] = (
            drop_prob, extra_latency)
        self.trace.record(
            self.clock.now, "failure",
            lambda a=first, b=second, p=drop_prob, x=extra_latency:
                f"flaky link {a.label} ~ {b.label} p={p:g} +{x:g}")

    def clear_flaky_link(self, first: Network, second: Network) -> bool:
        """Restore the link to lossless/no-spike (idempotent).

        Returns True if the link was flaky before.
        """
        key = frozenset((id(first), id(second)))
        if self._flaky_links.pop(key, None) is None:
            return False
        self.trace.record(
            self.clock.now, "repair",
            lambda a=first, b=second: f"steady link {a.label} ~ {b.label}")
        return True

    def link_flakiness(self, first: Network,
                       second: Network) -> tuple[float, float]:
        """Current ``(drop_prob, extra_latency)`` of a link pair
        (``(0.0, 0.0)`` when the link is healthy)."""
        return self._flaky_links.get(
            frozenset((id(first), id(second))), (0.0, 0.0))

    # -- messaging ---------------------------------------------------------

    def send(self, sender: SimProcess, receiver: SimProcess,
             payload: Any = None,
             latency: Optional[float] = None) -> Message:
        """Enqueue a message for delivery after *latency* time units.

        The message object is returned immediately so callers can add
        name attachments; the kernel captures the attachment list only
        at delivery time, so attachments added before :meth:`run` are
        carried.
        """
        if latency is None:
            latency = self.default_latency
        if latency < 0:
            raise SimulationError("latency must be nonnegative")
        if self._flaky_links:
            _prob, spike = self.link_flakiness(
                sender.machine.network, receiver.machine.network)
            if spike > 0:
                latency += self.rng.random() * spike
        now = self.clock._now
        deliver_time = now + latency
        # Field-for-field inline of ``Message(sender, receiver, ...)``
        # — the kernel's hottest allocation skips the constructor
        # frame and its default-argument branches.  Keep in sync with
        # Message.__init__.
        message = Message.__new__(Message)
        message.sender = sender
        message.receiver = receiver
        message.payload = payload
        message.attachments = []
        message.send_time = now
        message.deliver_time = deliver_time
        message.msg_id = next(self._message_ids)
        message.delivered = False
        message.dropped = False
        message.drop_reason = ""
        message.trace_id = None
        message.parent_span_id = None
        self.messages_sent += 1
        # Inlined EventQueue.defer with the message itself as the
        # queue payload: no delivery closure, no handle, no extra
        # frame — the run pump dispatches Message entries straight to
        # _deliver.
        queue = self.queue
        fifo = queue._fifo
        if not fifo or deliver_time >= fifo[-1][0]:
            fifo.append((deliver_time, next(queue._seq), message))
        else:
            heappush(queue._heap, (deliver_time, next(queue._seq), message))
        queue._live += 1
        self._record(now, "send", (_fmt_send, message))
        if self._obs_full:
            self._m_sent.inc()
            self._g_queue.set(self.queue.approx_len())
        return message

    def _deliver(self, message: Message) -> None:
        if not message.receiver.machine.alive:
            message.dropped = True
            message.drop_reason = "receiver machine down"
        elif self._partitions and self.partitioned(
                message.sender.machine.network,
                message.receiver.machine.network):
            message.dropped = True
            message.drop_reason = "network partition"
        elif self._flaky_links:
            drop_prob, _spike = self.link_flakiness(
                message.sender.machine.network,
                message.receiver.machine.network)
            if drop_prob > 0 and self.rng.random() < drop_prob:
                message.dropped = True
                message.drop_reason = "flaky link"
        if message.dropped:
            self.messages_dropped += 1
            self._record(self.clock._now, "drop", (_fmt_drop, message))
            if self._obs_on:
                if self._obs_full:
                    self._m_dropped.inc()
                if message.trace_id is not None:
                    self.obs.tracer.event(
                        "drop", f"msg#{message.msg_id}", self.clock.now,
                        trace_id=message.trace_id,
                        parent_span_id=message.parent_span_id,
                        attrs={"receiver": message.receiver.label,
                               "reason": message.drop_reason})
            return
        self.messages_delivered += 1
        message.delivered = True
        if self._gateways:
            for gateway in self._gateways:
                gateway.process(message)
        self._record(self.clock._now, "deliver", (_fmt_deliver, message))
        message.receiver.deliver(message)
        if self._obs_full:
            self._m_delivered.inc()
            if message.trace_id is not None:
                self.obs.tracer.event(
                    "deliver", f"msg#{message.msg_id}", self.clock.now,
                    trace_id=message.trace_id,
                    parent_span_id=message.parent_span_id,
                    attrs={"receiver": message.receiver.label})
            self.obs.metrics.gauge(
                "process_mailbox_depth",
                {"process": message.receiver.label},
            ).set(len(message.receiver.mailbox))
        elif self._obs_on and message.trace_id is not None:
            # Sampled mode: keep the trace-context instant (the tracer
            # itself decides whether its trace is stored) but skip the
            # per-delivery counter and labelled-gauge registry lookup —
            # those totals are reconciled at pump boundaries.
            self.obs.tracer.event(
                "deliver", f"msg#{message.msg_id}", self.clock.now,
                trace_id=message.trace_id,
                parent_span_id=message.parent_span_id,
                attrs={"receiver": message.receiver.label})

    def add_gateway(self, gateway: Any) -> None:
        """Install a boundary gateway; its ``process(message)`` hook
        runs on every delivered message, in installation order (see
        :class:`repro.closure.boundary.BoundaryGateway`)."""
        self._gateways.append(gateway)
        self.trace.record(
            self.clock.now, "topology",
            lambda g=gateway:
                f"gateway {getattr(g, 'label', '?')} installed")

    def remove_gateway(self, gateway: Any) -> None:
        """Uninstall a boundary gateway (no error if absent)."""
        if gateway in self._gateways:
            self._gateways.remove(gateway)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None],
                 note: str = "") -> ScheduledEvent:
        """Run *action* after *delay* time units."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        return self.queue.push(self.clock._now + delay, action, note=note)

    def latency_jitter(self, base: float = 1.0, spread: float = 0.5) -> float:
        """A deterministic (seeded) latency draw in [base, base+spread]."""
        return base + self.rng.random() * spread

    # -- execution -------------------------------------------------------------

    def run_next(self) -> bool:
        """Process exactly one pending event (the earliest), if any.

        The bounded counterpart of :meth:`run`: callers that only need
        the simulation to make *one* step of progress (e.g. a resolver
        waiting on a single hop) can pump the kernel event-by-event
        instead of draining the whole queue to quiescence.

        Returns:
            True if an event was processed, False if the queue was
            empty.
        """
        entry = self.queue._pop_entry()
        if entry is None:
            return False
        self.clock.advance_to(entry[0])
        item = entry[2]
        if type(item) is Message:
            self._deliver(item)
        elif type(item) is ScheduledEvent:
            item.action()
        else:
            item()
        if self._obs_on:
            self._m_events.inc()
        return True

    def run_until_settled(self, messages, max_events: int = 1_000_000) -> int:
        """Pump events, in order, until given messages are delivered
        or dropped.

        This is the kernel fast path for request/reply protocols: a
        sender waiting on its own message(s) no longer pays for
        draining every other outstanding event in the system — only
        events up to the settling of *messages* run, and anything
        scheduled later stays queued.  Event order (and therefore
        determinism) is identical to :meth:`run`; the pump merely
        stops earlier.

        Args:
            messages: One :class:`~repro.sim.messages.Message` or an
                iterable of them.
            max_events: Safety bound on processed events.

        Returns:
            The number of events processed.
        """
        if isinstance(messages, Message):
            pending = (messages,)
        else:
            pending = tuple(messages)
        processed = 0
        queue = self.queue
        # Same raw-lane pump as run() (EventQueue._pop_entry inlined);
        # compact() rebuilds both lanes in place, so the aliases stay
        # valid across mid-pump compactions.  Unlike run(), the
        # settled predicate is re-checked per event — a timer action
        # (e.g. a crash) can settle a message too, so batching
        # same-instant dispatch past the settling event would overrun
        # the stop point.
        heap = queue._heap
        fifo = queue._fifo
        advance_to = self.clock.advance_to
        deliver = self._deliver
        single = pending[0] if len(pending) == 1 else None
        while True:
            if single is not None:
                if single.delivered or single.dropped:
                    break
            elif all(message.delivered or message.dropped
                     for message in pending):
                break
            if processed >= max_events:
                raise SimulationError(
                    f"run_until_settled exceeded max_events="
                    f"{max_events}; likely a livelock")
            # Inline _pop_entry: smaller of the two lane heads, skip
            # cancelled.
            while True:
                if fifo:
                    if heap and heap[0] < fifo[0]:
                        entry = heappop(heap)
                    else:
                        entry = fifo.popleft()
                elif heap:
                    entry = heappop(heap)
                else:
                    entry = None
                    break
                item = entry[2]
                if type(item) is ScheduledEvent:
                    if item.cancelled:
                        queue._cancelled -= 1
                        continue
                    item._queue = None
                queue._live -= 1
                break
            if entry is None:
                break  # queue exhausted; undeliverable messages stay unsettled
            advance_to(entry[0])
            item = entry[2]
            if type(item) is Message:
                deliver(item)
            elif type(item) is ScheduledEvent:
                item.action()
            else:
                item()
            processed += 1
        if self._obs_on and processed:
            self._m_events.inc(processed)
            if not self._obs_full:
                self._flush_message_counters()
        return processed

    def run(self, until: Optional[float] = None,
            max_events: int = 1_000_000) -> int:
        """Process events until the queue empties (or bounds are hit).

        Same-instant events are dispatched as one batch: the clock
        advances once per distinct timestamp and the ``until`` bound
        is checked once per batch head, while per-event order (and so
        determinism) stays identical to one-at-a-time pumping.

        Args:
            until: Stop before events later than this time (they stay
                queued).
            max_events: Safety bound on processed events.

        Returns:
            The number of events processed.
        """
        processed = 0
        queue = self.queue
        # The pump works on the raw lanes (EventQueue._pop_entry /
        # _pop_entry_at inlined): compact() rebuilds both lanes in
        # place, so these aliases stay valid even if a dispatched
        # action cancels enough timers to trigger a mid-batch
        # compaction.
        heap = queue._heap
        fifo = queue._fifo
        advance_to = self.clock.advance_to
        deliver = self._deliver
        while processed < max_events:
            # Inline _pop_entry: smaller of the two lane heads, skip
            # cancelled.
            entry = None
            while True:
                if fifo:
                    if heap and heap[0] < fifo[0]:
                        entry = heappop(heap)
                    else:
                        entry = fifo.popleft()
                elif heap:
                    entry = heappop(heap)
                else:
                    entry = None
                    break
                item = entry[2]
                if type(item) is ScheduledEvent:
                    if item.cancelled:
                        queue._cancelled -= 1
                        continue
                    item._queue = None
                queue._live -= 1
                break
            if entry is None:
                break
            event_time = entry[0]
            if until is not None and event_time > until:
                queue._unpop(entry)
                break
            advance_to(event_time)
            # Same-instant batch: keep dispatching while the merged
            # head stays at this timestamp.  Actions may enqueue
            # further same-instant work (picked up here, in seq order)
            # or cancel queued events (skipped by the pop).
            while True:
                item = entry[2]
                if type(item) is Message:
                    deliver(item)
                elif type(item) is ScheduledEvent:
                    item.action()
                else:
                    item()
                processed += 1
                if processed >= max_events:
                    break
                # Inline _pop_entry_at(event_time).
                entry = None
                while True:
                    if fifo:
                        source = (heap if heap and heap[0] < fifo[0]
                                  else fifo)
                    elif heap:
                        source = heap
                    else:
                        break
                    if source[0][0] != event_time:
                        break
                    if source is heap:
                        candidate = heappop(heap)
                    else:
                        candidate = fifo.popleft()
                    item = candidate[2]
                    if type(item) is ScheduledEvent:
                        if item.cancelled:
                            queue._cancelled -= 1
                            continue
                        item._queue = None
                    queue._live -= 1
                    entry = candidate
                    break
                if entry is None:
                    break
        else:
            raise SimulationError(
                f"run exceeded max_events={max_events}; likely a livelock")
        if until is not None and self.clock._now < until:
            advance_to(until)
        if self._obs_on and processed:
            self._m_events.inc(processed)
            self._g_queue.set(queue.approx_len())
            if not self._obs_full:
                self._flush_message_counters()
        return processed

    def _flush_message_counters(self) -> None:
        """Reconcile the per-message counters from the plain-int
        totals (sampled mode's pump-boundary bookkeeping — the hot
        paths skipped the inline ``inc()`` calls)."""
        flushed = self._flushed_msgs
        sent = self.messages_sent
        delivered = self.messages_delivered
        dropped = self.messages_dropped
        if sent > flushed[0]:
            self._m_sent.inc(sent - flushed[0])
            flushed[0] = sent
        if delivered > flushed[1]:
            self._m_delivered.inc(delivered - flushed[1])
            flushed[1] = delivered
        if dropped > flushed[2]:
            self._m_dropped.inc(dropped - flushed[2])
            flushed[2] = dropped
        self._g_queue.set(self.queue.approx_len())

    def __repr__(self) -> str:
        return (f"<Simulator t={self.clock.now:g} "
                f"sent={self.messages_sent} "
                f"delivered={self.messages_delivered} "
                f"dropped={self.messages_dropped}>")
