"""The discrete-event queue.

Events are (time, sequence, action) triples kept in a binary heap.  The
sequence number breaks ties between events scheduled for the same
instant in *scheduling order*, which — together with the seeded RNG in
the kernel — makes every simulation run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["ScheduledEvent", "EventQueue"]

#: An event action: a zero-argument callable run at the event's time.
Action = Callable[[], None]


@dataclass(order=True)
class ScheduledEvent:
    """One pending event, ordered by (time, seq)."""

    time: float
    seq: int
    action: Action = field(compare=False)
    note: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when dequeued."""
        self.cancelled = True

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"<event t={self.time} #{self.seq} {self.note!r}{flag}>"


class EventQueue:
    """A deterministic priority queue of scheduled events."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def push(self, time: float, action: Action,
             note: str = "") -> ScheduledEvent:
        """Schedule *action* at absolute virtual time *time*."""
        event = ScheduledEvent(time, next(self._seq), action, note)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest non-cancelled event, or None
        when the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """The time of the next non-cancelled event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def approx_len(self) -> int:
        """Heap size including cancelled events — the O(1) depth
        reading instrumentation samples (exact ``len`` scans)."""
        return len(self._heap)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
