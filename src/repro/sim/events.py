"""The discrete-event queue.

Events are ``(time, seq, item)`` tuples kept in **two lanes**: a
calendar-style FIFO deque for the common monotone case (an entry whose
key is ≥ the FIFO tail is appended there — O(1) in, O(1) out) and a
binary heap for out-of-order schedules.  Dequeue merges the lanes by
taking the smaller head, so the global pop order is exactly the sorted
``(time, seq)`` order either way.  Message-passing workloads schedule
deliveries in nondecreasing time order almost always, which turns the
former O(log n) heappop per event (~half the queue cost in kernel
profiles) into a deque popleft.

The sequence number breaks ties between events scheduled for the same
instant in *scheduling order*, which — together with the seeded RNG in
the kernel — makes every simulation run bit-for-bit reproducible.
Because ``seq`` is unique, tuple comparison never reaches ``item``, so
lane maintenance runs entirely in C (the former ``@dataclass
(order=True)`` event compared via generated python ``__lt__`` calls,
the single hottest frame in kernel profiles).

Two scheduling flavours share the heap:

* :meth:`EventQueue.push` allocates a :class:`ScheduledEvent` handle
  the caller can :meth:`~ScheduledEvent.cancel` (timers, timeouts);
* :meth:`EventQueue.defer` enqueues a bare zero-argument callable with
  no handle at all — the kernel's fire-and-forget fast path for
  message deliveries, which are never cancelled.

Cancelled events are *not* removed eagerly (heap deletion is O(n));
they are skipped on pop, counted, and the heap is compacted once
cancelled entries outnumber live ones — so ``len(queue)`` is O(1) via
a live-event counter instead of the former O(n) scan, and long-lived
simulations with many cancelled timers no longer leak heap slots.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from itertools import chain
from typing import Callable, Optional

from repro.sim.messages import Message

__all__ = ["ScheduledEvent", "EventQueue"]

#: An event action: a zero-argument callable run at the event's time.
Action = Callable[[], None]


class ScheduledEvent:
    """One pending event, ordered by ``(time, seq)``."""

    __slots__ = ("time", "seq", "action", "note", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, action: Action,
                 note: str = "",
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.note = note
        self.cancelled = False
        # Owning queue while the event sits in its heap; cleared on
        # pop so late cancels only mark the flag and never corrupt the
        # queue's live/cancelled bookkeeping.
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when dequeued."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._on_cancel()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduledEvent):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __le__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) <= (other.time, other.seq)

    def __gt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) > (other.time, other.seq)

    def __ge__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) >= (other.time, other.seq)

    __hash__ = None  # mutable, like the former eq=True dataclass

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"<event t={self.time} #{self.seq} {self.note!r}{flag}>"


class EventQueue:
    """A deterministic priority queue of scheduled events."""

    __slots__ = ("_heap", "_fifo", "_seq", "_live", "_cancelled")

    def __init__(self) -> None:
        # Entries are (time, seq, ScheduledEvent | Message | Action)
        # tuples, split across two lanes (see module docstring): the
        # FIFO holds entries in strictly increasing (time, seq) order;
        # the heap holds the out-of-order remainder.
        self._heap: list[tuple] = []
        self._fifo: deque[tuple] = deque()
        self._seq = itertools.count()
        #: Non-cancelled entries currently queued.
        self._live = 0
        #: Cancelled entries still occupying queue slots.
        self._cancelled = 0

    def push(self, time: float, action: Action,
             note: str = "") -> ScheduledEvent:
        """Schedule *action* at absolute virtual time *time*,
        returning a cancellable handle."""
        event = ScheduledEvent(time, next(self._seq), action, note, self)
        fifo = self._fifo
        if not fifo or time >= fifo[-1][0]:
            fifo.append((time, event.seq, event))
        else:
            heapq.heappush(self._heap, (time, event.seq, event))
        self._live += 1
        return event

    def defer(self, time: float, action) -> None:
        """Schedule *action* at *time* with no cancellation handle.

        The fire-and-forget fast path: no :class:`ScheduledEvent` is
        allocated, so high-volume work pays one tuple and one C lane
        append per event.  *action* is a plain zero-argument callable
        or a :class:`~repro.sim.messages.Message` (the kernel stores
        deliveries as bare messages and dispatches them by type,
        skipping even the closure allocation).
        """
        fifo = self._fifo
        if not fifo or time >= fifo[-1][0]:
            fifo.append((time, next(self._seq), action))
        else:
            heapq.heappush(self._heap, (time, next(self._seq), action))
        self._live += 1

    # -- dequeue -----------------------------------------------------------

    def _pop_entry(self) -> Optional[tuple]:
        """Pop the earliest live ``(time, seq, item)`` entry (the
        kernel's raw fast path), discarding cancelled entries.  Takes
        the smaller of the two lane heads, so the merged order is the
        global sorted ``(time, seq)`` order."""
        heap = self._heap
        fifo = self._fifo
        while True:
            if fifo:
                if heap and heap[0] < fifo[0]:
                    entry = heapq.heappop(heap)
                else:
                    entry = fifo.popleft()
            elif heap:
                entry = heapq.heappop(heap)
            else:
                return None
            item = entry[2]
            if type(item) is ScheduledEvent:
                if item.cancelled:
                    self._cancelled -= 1
                    continue
                item._queue = None
            self._live -= 1
            return entry

    def _pop_entry_at(self, time: float) -> Optional[tuple]:
        """Pop the next live entry scheduled exactly at *time*, or
        None once the merged head moves past it (same-instant batch
        pump)."""
        heap = self._heap
        fifo = self._fifo
        while True:
            if fifo:
                if heap and heap[0] < fifo[0]:
                    if heap[0][0] != time:
                        return None
                    entry = heapq.heappop(heap)
                else:
                    if fifo[0][0] != time:
                        return None
                    entry = fifo.popleft()
            elif heap:
                if heap[0][0] != time:
                    return None
                entry = heapq.heappop(heap)
            else:
                return None
            item = entry[2]
            if type(item) is ScheduledEvent:
                if item.cancelled:
                    self._cancelled -= 1
                    continue
                item._queue = None
            self._live -= 1
            return entry

    def _unpop(self, entry: tuple) -> None:
        """Return a just-popped entry to the queue (run(until=...)
        pushback).  *entry* must sort before everything still queued —
        true for a freshly popped head — so an O(1) appendleft onto
        the FIFO lane keeps both lanes sorted."""
        item = entry[2]
        if type(item) is ScheduledEvent:
            item._queue = self
        self._fifo.appendleft(entry)
        self._live += 1

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest non-cancelled event, or None
        when the queue is exhausted.  Deferred actions (and deferred
        message deliveries) are wrapped in a fresh
        :class:`ScheduledEvent` so every caller sees one API."""
        entry = self._pop_entry()
        if entry is None:
            return None
        item = entry[2]
        if type(item) is ScheduledEvent:
            return item
        if type(item) is Message:
            return ScheduledEvent(entry[0], entry[1], item._fire)
        return ScheduledEvent(entry[0], entry[1], item)

    # -- cancellation bookkeeping ------------------------------------------

    def _on_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > (len(self._heap) + len(self._fifo)) // 2:
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries from both lanes.

        Called automatically once cancelled entries exceed half the
        queue; unique ``(time, seq)`` keys make the rebuilt lanes pop
        in exactly the same order, so compaction is invisible to the
        simulation.  Rebuilds **in place** so lane aliases held by the
        kernel's inline run pump stay valid across a mid-batch
        compaction.
        """
        self._heap[:] = [entry for entry in self._heap
                         if not (type(entry[2]) is ScheduledEvent
                                 and entry[2].cancelled)]
        heapq.heapify(self._heap)
        fifo = self._fifo
        live = [entry for entry in fifo
                if not (type(entry[2]) is ScheduledEvent
                        and entry[2].cancelled)]
        fifo.clear()
        fifo.extend(live)
        self._cancelled = 0

    # -- observation -------------------------------------------------------

    def _head(self) -> Optional[tuple]:
        """The smaller of the two lane heads (may be cancelled)."""
        heap = self._heap
        fifo = self._fifo
        if fifo:
            if heap and heap[0] < fifo[0]:
                return heap[0]
            return fifo[0]
        return heap[0] if heap else None

    def peek_time(self) -> Optional[float]:
        """The time of the next non-cancelled event, or None.

        Lazily discards cancelled lane heads (bookkeeping stays
        consistent).  Instrumentation that must not perturb the queue
        should use :meth:`next_time` instead.
        """
        while True:
            head = self._head()
            if head is None:
                return None
            item = head[2]
            if type(item) is ScheduledEvent and item.cancelled:
                if self._fifo and head is self._fifo[0]:
                    self._fifo.popleft()
                else:
                    heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            return head[0]

    def next_time(self) -> Optional[float]:
        """The time of the next live event without mutating the queue.

        The pure peek instrumentation sampling reads: O(1) unless the
        merged head happens to be cancelled, in which case it scans
        for the earliest live entry rather than popping anything.
        """
        if self._live == 0:
            return None
        head = self._head()
        item = head[2]
        if not (type(item) is ScheduledEvent and item.cancelled):
            return head[0]
        return min(entry[0] for entry in chain(self._heap, self._fifo)
                   if not (type(entry[2]) is ScheduledEvent
                           and entry[2].cancelled))

    def __len__(self) -> int:
        """Live (non-cancelled) events — O(1) via the counter."""
        return self._live

    def approx_len(self) -> int:
        """Queued entries including cancelled ones — the O(1) depth
        reading instrumentation samples."""
        return len(self._heap) + len(self._fifo)

    def cancelled_len(self) -> int:
        """Cancelled entries still occupying heap slots (drops to
        zero after :meth:`compact`)."""
        return self._cancelled

    def __bool__(self) -> bool:
        return self._live > 0
