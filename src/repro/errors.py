"""Exception hierarchy for the ``repro`` library.

The formal naming model of Radia & Pachl (ICDCS'93, section 2) is total:
resolving an unbound name yields the *undefined entity* rather than an
error.  Exceptions in this library therefore signal *misuse of the API*
(malformed names, binding to a dead entity, wiring mistakes) rather than
ordinary resolution failures, which are values
(:data:`repro.model.entities.UNDEFINED_ENTITY`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class NameSyntaxError(ReproError, ValueError):
    """A string could not be parsed as an atomic or compound name."""


class BindingError(ReproError):
    """An invalid binding operation on a context (e.g. empty name)."""


class EntityError(ReproError):
    """An operation was applied to an entity of the wrong kind."""


class ResolutionRuleError(ReproError):
    """A resolution rule was invoked with an incomplete meta-context.

    For example, applying the ``R(sender)`` rule to a resolution event
    that has no sender recorded.
    """


class SchemeError(ReproError):
    """A naming-scheme operation violated the scheme's structural rules.

    For example, attaching a machine tree twice in a Newcastle system,
    or asking an Andrew client for another client's local graph.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class AddressError(ReproError):
    """A partially-qualified identifier operation received an invalid
    address or an out-of-scope qualification level."""


class FederationError(ReproError):
    """A federation/scope operation violated scope rules (section 7)."""
