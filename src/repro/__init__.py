"""repro — a reproduction of Radia & Pachl, *Coherence in Naming in
Distributed Computing Environments* (ICDCS 1993).

The library implements the paper's formal naming model, its closure
mechanisms (resolution rules), the coherence definitions and metrics,
every naming scheme the paper analyses (Unix trees, single global
trees, the Newcastle Connection, Andrew-style shared naming graphs,
OSF DCE cells, federated cross-links, per-process namespaces), both of
its solution mechanisms (partially qualified identifiers resolved with
``R(sender)``; embedded names resolved with Algol-scoped ``R(file)``),
and a deterministic message-passing simulator to host the experiments.

Quickstart::

    from repro import context_object, resolve
    root = context_object("root")
    motd = context_object("motd")
    root.state.bind("motd", motd)
    assert resolve(root.state, "motd") is motd

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure experiment index.
"""

from repro.closure import (
    ContextRegistry,
    NameSource,
    PerSourceRule,
    RActivity,
    RObject,
    RReceiver,
    RScoped,
    RSender,
    ResolutionEvent,
    ResolutionRule,
    rule_resolve,
)
from repro.coherence import (
    CoherenceAuditor,
    CoherenceDegree,
    Verdict,
    coherent,
    is_global_name,
    measure_degree,
    weakly_coherent,
)
from repro.model import (
    Activity,
    CompoundName,
    Context,
    Entity,
    GlobalState,
    NamingGraph,
    Obj,
    ObjectEntity,
    UNDEFINED_ENTITY,
    context_object,
    name,
    resolve,
    resolve_traced,
)

__version__ = "1.0.0"

__all__ = [
    "Activity",
    "CoherenceAuditor",
    "CoherenceDegree",
    "CompoundName",
    "Context",
    "ContextRegistry",
    "Entity",
    "GlobalState",
    "NameSource",
    "NamingGraph",
    "Obj",
    "ObjectEntity",
    "PerSourceRule",
    "RActivity",
    "RObject",
    "RReceiver",
    "RScoped",
    "RSender",
    "ResolutionEvent",
    "ResolutionRule",
    "UNDEFINED_ENTITY",
    "Verdict",
    "coherent",
    "context_object",
    "is_global_name",
    "measure_degree",
    "name",
    "resolve",
    "resolve_traced",
    "rule_resolve",
    "weakly_coherent",
]
