"""Resolution rules — executable closure mechanisms (§3, §4).

A resolution rule selects, from the many contexts stored in the system,
the one in which a given occurrence of a name is resolved:
``R(arguments) ∈ C``, applied as ``R(arguments)(name)``.  The arguments
describe the circumstances of the occurrence — here, a
:class:`~repro.closure.meta.ResolutionEvent`.

The rules the paper discusses:

* ``R(a)`` (:class:`RActivity`) — resolve in the context of the activity
  performing the resolution, regardless of where the name came from.
  The common operating-system rule.  For names received in messages
  this is the *receiver's* context, so :class:`RReceiver` is the same
  selection restated for MESSAGE events.
* ``R(sender)`` (:class:`RSender`) — resolve a name received in a
  message in the *sender's* context.  Gives coherence between sender
  and receiver for *all* names sent (§4 case 2).
* ``R(o)`` (:class:`RObject`) — resolve a name obtained from an object
  in the context associated with that object.  Gives coherence among
  all activities for names embedded in the object (§4 case 3).
* ``R(file)`` under Algol scope rules is :class:`RScoped`, which defers
  context construction to a scope function (see
  :mod:`repro.embedded.scoping` for the Figure-6 implementation).
* :class:`PerSourceRule` — a rule table indexed by name source, the
  shape an overall naming design takes (§7): one rule per source.

Each rule also states, via :meth:`ResolutionRule.coherence_prediction`,
the paper's §4 claim about which names it keeps coherent; experiment A1
checks the predictions against measurements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Mapping, Optional

from repro.errors import ResolutionRuleError
from repro.model.context import Context
from repro.model.entities import Entity
from repro.model.resolution import ResolutionTrace, resolve_traced
from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent

__all__ = [
    "ResolutionRule",
    "RActivity",
    "RReceiver",
    "RSender",
    "RObject",
    "RScoped",
    "PerSourceRule",
    "RFirstApplicable",
    "rule_resolve",
    "rule_resolve_traced",
]


class ResolutionRule(ABC):
    """A closure mechanism: selects a context for a resolution event."""

    #: Short formula name used in reports, e.g. ``"R(sender)"``.
    formula: str = "R(?)"

    @abstractmethod
    def select_context(self, event: ResolutionEvent) -> Context:
        """Return the context in which *event*'s name is resolved.

        Raises:
            ResolutionRuleError: if the event lacks a factor this rule
                needs (e.g. ``R(sender)`` on an event with no sender).
        """

    def applicable(self, event: ResolutionEvent) -> bool:
        """True if this rule can select a context for *event*."""
        try:
            self.select_context(event)
        except ResolutionRuleError:
            return False
        return True

    def coherence_prediction(self, source: NameSource) -> str:
        """The paper's §4 claim for names from *source* under this rule.

        One of ``"all"`` (coherence for every name from this source),
        ``"global-only"`` (coherence only for global names), or
        ``"n/a"`` (the rule does not apply to this source).
        """
        return "global-only"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.formula}>"


class RActivity(ResolutionRule):
    """``R(a)``: the context of the activity doing the resolution.

    With this rule, only *global names* — names denoting the same
    entity in every activity's context — can serve as common references
    (§4): they alone survive internal generation, message exchange and
    embedding.
    """

    formula = "R(activity)"

    def __init__(self, registry: ContextRegistry):
        self._registry = registry

    def select_context(self, event: ResolutionEvent) -> Context:
        return self._registry.context_of(event.resolver)

    def coherence_prediction(self, source: NameSource) -> str:
        return "global-only"


class RReceiver(RActivity):
    """``R(receiver)``: for names exchanged in messages, the receiver's
    context — the same selection as ``R(a)``, named from the exchange's
    point of view (Figure 2a, left).  Coherent only for global names.
    """

    formula = "R(receiver)"

    def select_context(self, event: ResolutionEvent) -> Context:
        if event.source is NameSource.MESSAGE and event.sender is None:
            raise ResolutionRuleError("message event without participants")
        return super().select_context(event)


class RSender(ResolutionRule):
    """``R(sender)``: resolve a received name in the sender's context.

    There is then coherence between sender and receiver for *all* names
    sent by the sender (§4 case 2).  Useful for activities that
    exchange names; realized in practice by mapping embedded
    identifiers at the boundary (see :mod:`repro.pqid`).
    """

    formula = "R(sender)"

    def __init__(self, registry: ContextRegistry):
        self._registry = registry

    def select_context(self, event: ResolutionEvent) -> Context:
        if event.sender is None:
            raise ResolutionRuleError(
                f"{self.formula} needs a sender; event {event!r} has none")
        return self._registry.context_of(event.sender)

    def coherence_prediction(self, source: NameSource) -> str:
        return "all" if source is NameSource.MESSAGE else "n/a"


class RObject(ResolutionRule):
    """``R(o)``: resolve a name obtained from an object in the context
    associated with that object.

    There is then coherence among *all* activities for the names
    embedded in the object (§4 case 3).  Programming languages often
    provide this (a name's meaning depends on the defining block);
    operating systems rarely do.
    """

    formula = "R(object)"

    def __init__(self, registry: ContextRegistry):
        self._registry = registry

    def select_context(self, event: ResolutionEvent) -> Context:
        if event.source_object is None:
            raise ResolutionRuleError(
                f"{self.formula} needs a source object; "
                f"event {event!r} has none")
        return self._registry.context_of(event.source_object)

    def coherence_prediction(self, source: NameSource) -> str:
        return "all" if source is NameSource.OBJECT else "n/a"


class RScoped(ResolutionRule):
    """``R(file)`` computed by a scope function (§6, Example 2).

    The context for a name embedded in an object is *derived* — e.g. by
    the Algol-style upward search of Figure 6 — rather than stored.
    The scope function receives the source object and returns the
    context to use; :mod:`repro.embedded.scoping` supplies the Figure-6
    implementation.
    """

    formula = "R(file)"

    def __init__(self, scope_function: Callable[[Entity], Context],
                 formula: str = "R(file)"):
        self._scope_function = scope_function
        self.formula = formula

    def select_context(self, event: ResolutionEvent) -> Context:
        if event.source_object is None:
            raise ResolutionRuleError(
                f"{self.formula} needs a source object; "
                f"event {event!r} has none")
        return self._scope_function(event.source_object)

    def coherence_prediction(self, source: NameSource) -> str:
        return "all" if source is NameSource.OBJECT else "n/a"


class PerSourceRule(ResolutionRule):
    """A rule table: one sub-rule per name source.

    This is the shape of an overall naming design (§7): internal names
    resolved with ``R(a)`` against shared name spaces, exchanged names
    with ``R(sender)``, embedded names with ``R(object)``/``R(file)``.

    Args:
        rules: Mapping from :class:`NameSource` to the sub-rule used
            for events of that source.
        fallback: Rule for sources absent from *rules* (optional).
    """

    formula = "R(per-source)"

    def __init__(self, rules: Mapping[NameSource, ResolutionRule],
                 fallback: Optional[ResolutionRule] = None):
        self._rules = dict(rules)
        self._fallback = fallback

    def rule_for(self, source: NameSource) -> ResolutionRule:
        """The sub-rule handling *source* events."""
        rule = self._rules.get(source, self._fallback)
        if rule is None:
            raise ResolutionRuleError(f"no rule for source {source}")
        return rule

    def select_context(self, event: ResolutionEvent) -> Context:
        return self.rule_for(event.source).select_context(event)

    def coherence_prediction(self, source: NameSource) -> str:
        try:
            return self.rule_for(source).coherence_prediction(source)
        except ResolutionRuleError:
            return "n/a"

    def __repr__(self) -> str:
        inner = ", ".join(f"{s}:{r.formula}"
                          for s, r in sorted(self._rules.items(),
                                             key=lambda kv: kv[0].value))
        return f"<PerSourceRule {{{inner}}}>"


class RFirstApplicable(ResolutionRule):
    """A multi-factor rule like the paper's ``R(receiver, sender)``.

    §4 notes that rules consulting several factors are conceivable —
    "It is also possible to conceive of more complex rules of the form
    R(receiver, sender).  However, we have found no instances of, and
    no justification for, such rules." — and likewise
    ``R(activity, object)``.  This combinator realizes the natural
    reading (try each factor's context in order, first applicable one
    that *defines* the name wins) so the dismissal can be measured:
    tests and A1-style runs show it never beats the single best factor
    and inherits the worse factor's incoherence on homonyms.
    """

    def __init__(self, rules: list[ResolutionRule], formula: str = ""):
        if not rules:
            raise ResolutionRuleError("RFirstApplicable needs sub-rules")
        self._rules = list(rules)
        self.formula = formula or "R({})".format(
            ", ".join(r.formula[2:-1] for r in rules))

    def select_context(self, event: ResolutionEvent) -> Context:
        """The first sub-rule's context that *defines* the event's
        first name component; falls back to the first applicable."""
        first_applicable: Optional[Context] = None
        component = event.name.parts[0] if len(event.name) else None
        for rule in self._rules:
            try:
                context = rule.select_context(event)
            except ResolutionRuleError:
                continue
            if first_applicable is None:
                first_applicable = context
            if component is not None and context(component).is_defined():
                return context
        if first_applicable is None:
            raise ResolutionRuleError(
                f"{self.formula}: no sub-rule applicable to {event!r}")
        return first_applicable

    def coherence_prediction(self, source: NameSource) -> str:
        """No better than its best sub-rule (the paper's "benefits
        doubtful"): predict the weakest claim among applicable ones."""
        predictions = {r.coherence_prediction(source)
                       for r in self._rules}
        predictions.discard("n/a")
        if not predictions:
            return "n/a"
        return "global-only" if "global-only" in predictions else "all"


def rule_resolve_traced(rule: ResolutionRule,
                        event: ResolutionEvent) -> ResolutionTrace:
    """Resolve *event*'s name in the context selected by *rule*,
    returning the full resolution trace."""
    context = rule.select_context(event)
    return resolve_traced(context, event.name)


def rule_resolve(rule: ResolutionRule, event: ResolutionEvent) -> Entity:
    """Resolve *event*'s name in the context selected by *rule*.

    This composes the two halves of the paper's formula
    ``R(arguments)(name)``.
    """
    return rule_resolve_traced(rule, event).result
