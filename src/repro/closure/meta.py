"""The meta-context ``M``: circumstances of a name's occurrence (§3).

A closure mechanism is an implicit rule that selects the context in
which a name is resolved.  The paper models it as a *resolution rule*
``R ∈ [M → C]``: a function from the circumstances in which the name
occurs (the *meta-context* ``M``) to a context.

This module defines the executable meta-context:

* :class:`NameSource` — the three sources of names of Figure 1:
  generated internally within an activity, received from another
  activity in a message, or obtained from an object that contains it;
* :class:`ResolutionEvent` — one occurrence of a name, carrying every
  factor a rule may consult (the resolving activity, the sender, the
  object the name was embedded in, ...);
* :class:`ContextRegistry` — the system's store of per-entity contexts,
  the thing the paper means by "the system maintains a context R(a) for
  each activity a" (and likewise ``R(o)`` for objects).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.errors import ResolutionRuleError
from repro.model.context import Context
from repro.model.entities import Activity, Entity, ObjectEntity
from repro.model.names import CompoundName

__all__ = ["NameSource", "ResolutionEvent", "ContextRegistry"]


class NameSource(enum.Enum):
    """The three sources of names during a computation (Figure 1).

    ``INTERNAL`` also covers names obtained from a human user: the
    paper models user input as the user-interface activity generating
    the name internally (§4, source 1).
    """

    INTERNAL = "internal"
    MESSAGE = "message"
    OBJECT = "object"

    def __str__(self) -> str:
        return self.value


_event_ids = itertools.count(1)


@dataclass
class ResolutionEvent:
    """One occurrence of a name to be resolved — an element of ``M``.

    Attributes:
        name: The (compound) name being resolved.
        source: Which of the three sources produced the name.
        resolver: The activity performing the resolution (the paper's
            ``a``; for ``MESSAGE`` events this is the *receiver*).
        sender: For ``MESSAGE`` events, the activity that sent the name.
        source_object: For ``OBJECT`` events, the object the name was
            obtained from (e.g. the file it was embedded in).
        intended: The entity the name's producer meant it to denote,
            when known.  Not consulted by any rule — it is ground truth
            recorded by workloads so the coherence auditor can score
            resolutions (§4's "refer to the same entity").
        time: Simulation time of the occurrence, if the event came from
            the discrete-event substrate.
        event_id: Monotonic id, for deterministic ordering of reports.
    """

    name: CompoundName
    source: NameSource
    resolver: Activity
    sender: Optional[Activity] = None
    source_object: Optional[ObjectEntity] = None
    intended: Optional[Entity] = None
    time: Optional[float] = None
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def __post_init__(self) -> None:
        self.name = CompoundName.coerce(self.name)
        if self.source is NameSource.MESSAGE and self.sender is None:
            raise ResolutionRuleError(
                "a MESSAGE event must record the sender activity")
        if self.source is NameSource.OBJECT and self.source_object is None:
            raise ResolutionRuleError(
                "an OBJECT event must record the source object")

    def __repr__(self) -> str:
        return (f"<event#{self.event_id} {self.source} {self.name} "
                f"by {self.resolver.label}>")


#: A context provider: either a context, or a zero-argument callable
#: evaluated at lookup time (used for scheme-computed contexts).
ContextProvider = Union[Context, Callable[[], Context]]


class ContextRegistry:
    """Per-entity contexts: the store behind ``R(a)`` and ``R(o)``.

    The paper notes that maintaining "a context R(a) for each activity"
    does not require storing one context per activity — in the extreme
    of a single global context, one stored context is shared by all.
    The registry supports exactly that: several entities may be
    registered with the *same* :class:`Context` instance, and a
    *default* context may stand in for every unregistered entity.

    Providers may be callables, evaluated at each lookup; naming schemes
    use this for contexts derived from mutable scheme state (e.g. a
    per-process namespace assembled from attach points).
    """

    def __init__(self, default: Optional[ContextProvider] = None,
                 label: str = ""):
        self._providers: dict[int, ContextProvider] = {}
        self._default = default
        self.label = label

    def register(self, entity: Entity, provider: ContextProvider) -> None:
        """Associate *entity* with a context (or context provider)."""
        self._providers[entity.uid] = provider

    def unregister(self, entity: Entity) -> None:
        """Remove *entity*'s association (no error if absent)."""
        self._providers.pop(entity.uid, None)

    def is_registered(self, entity: Entity) -> bool:
        """True if *entity* has its own (non-default) provider."""
        return entity.uid in self._providers

    def context_of(self, entity: Entity) -> Context:
        """Return the context associated with *entity*.

        Falls back to the registry default; raises
        :class:`~repro.errors.ResolutionRuleError` if there is none.
        """
        provider = self._providers.get(entity.uid, self._default)
        if provider is None:
            raise ResolutionRuleError(
                f"no context registered for {entity!r}"
                + (f" in registry {self.label!r}" if self.label else ""))
        if isinstance(provider, Context):
            return provider
        return provider()

    def entities_registered(self) -> int:
        """Number of entities with their own provider."""
        return len(self._providers)

    def __repr__(self) -> str:
        tag = f" {self.label!r}" if self.label else ""
        return (f"<ContextRegistry{tag} {len(self._providers)} entities"
                f"{' +default' if self._default is not None else ''}>")
