"""Closure mechanisms: implicit rules that select resolution contexts.

Implements section 3 of the paper: the meta-context ``M`` (circumstances
of a name's occurrence), per-entity context registries, and the
resolution-rule hierarchy ``R(activity)``, ``R(sender)``,
``R(receiver)``, ``R(object)``, ``R(file)`` and per-source rule tables.
"""

from repro.closure.boundary import (
    BoundaryGateway,
    NameMapper,
    mapper_from_scheme_rule,
    resolution_mapper,
)
from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent
from repro.closure.rules import (
    PerSourceRule,
    RFirstApplicable,
    RActivity,
    RObject,
    RReceiver,
    RScoped,
    RSender,
    ResolutionRule,
    rule_resolve,
    rule_resolve_traced,
)

__all__ = [
    "BoundaryGateway",
    "ContextRegistry",
    "NameMapper",
    "mapper_from_scheme_rule",
    "resolution_mapper",
    "NameSource",
    "PerSourceRule",
    "RActivity",
    "RFirstApplicable",
    "RObject",
    "RReceiver",
    "RScoped",
    "RSender",
    "ResolutionEvent",
    "ResolutionRule",
    "rule_resolve",
    "rule_resolve_traced",
]
