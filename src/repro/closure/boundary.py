"""Boundary mapping: implementing ``R(sender)`` in the transport.

The paper's solution I is a *resolution rule*, but its §6 realization
is an engineering device: "The resolution rule is implemented by
mapping the embedded pid" — the identifier is rewritten at the
sender→receiver boundary so that the receiver's ordinary
``R(receiver)`` resolution yields what the sender meant.  The same
device appears in §5.1 for the Newcastle Connection: "a simple rule
can be used to map names across machines" (prefix ``../<machine>``).

This module makes boundary mapping a first-class, scheme-pluggable
mechanism:

* :class:`NameMapper` — the rewriting rule: given (sender, receiver,
  name), produce the name the receiver should see;
* :class:`BoundaryGateway` — installs into the simulator kernel and
  rewrites every message's name attachments at delivery time;
* :func:`resolution_mapper` — the universal mapper: resolve in the
  sender's context, find a name for the result in the receiver's
  context (exact ``R(sender)`` semantics, usable by any scheme that
  can enumerate receiver-side names);
* scheme-specific fast mappers are provided by the schemes themselves
  (e.g. :meth:`repro.namespaces.newcastle.NewcastleSystem.map_name`)
  and adapted with :func:`mapper_from_scheme_rule`.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.closure.meta import ContextRegistry
from repro.model.entities import Activity, Entity
from repro.model.names import CompoundName
from repro.model.resolution import resolve
from repro.sim.messages import Message, NameAttachment

__all__ = [
    "NameMapper",
    "BoundaryGateway",
    "mapper_from_scheme_rule",
    "resolution_mapper",
]


class NameMapper(Protocol):
    """A boundary rewriting rule.

    Returns the rewritten name, or ``None`` when the mapper cannot
    translate (the attachment is then delivered unmodified and the
    incoherence becomes measurable — exactly what an un-gatewayed
    system would exhibit).
    """

    def __call__(self, sender: Activity, receiver: Activity,
                 name_: CompoundName) -> Optional[CompoundName]:
        ...  # pragma: no cover - protocol


def mapper_from_scheme_rule(
        translate: Callable[[CompoundName, Activity, Activity],
                            Optional[CompoundName]]) -> NameMapper:
    """Adapt a scheme-level translation function into a NameMapper."""

    def mapper(sender: Activity, receiver: Activity,
               name_: CompoundName) -> Optional[CompoundName]:
        return translate(name_, sender, receiver)

    return mapper


def resolution_mapper(registry: ContextRegistry,
                      candidate_names: Callable[[Activity],
                                                list[CompoundName]],
                      ) -> NameMapper:
    """The universal (slow) mapper realizing exact R(sender) semantics.

    Resolves the name in the *sender's* context, then searches the
    receiver's candidate names for one denoting the same entity.  Any
    scheme that can enumerate a receiver's meaningful names gets
    boundary mapping for free; schemes with an algebraic rule
    (Newcastle's ``../machine`` prefix, pqid re-qualification) should
    prefer their own :class:`NameMapper` for clarity and speed.
    """

    def mapper(sender: Activity, receiver: Activity,
               name_: CompoundName) -> Optional[CompoundName]:
        target: Entity = resolve(registry.context_of(sender), name_)
        if not target.is_defined():
            return None
        receiver_context = registry.context_of(receiver)
        for candidate in candidate_names(receiver):
            if resolve(receiver_context, candidate) is target:
                return candidate
        return None

    return mapper


class BoundaryGateway:
    """Rewrites message name attachments at delivery boundaries.

    Install into a simulator with :meth:`install`; every delivered
    message's attachments are rewritten with the gateway's mapper
    before the receiver sees them.  Attachments whose sender and
    receiver the *scope* predicate excludes (e.g. same-machine
    traffic) pass through untouched, as do names the mapper returns
    ``None`` for.

    Statistics (`mapped`, `passed`, `untranslatable`) make the mapping
    burden measurable, echoing §7's concern that heavy boundary
    traffic turns mapping into a hindrance.
    """

    def __init__(self, mapper: NameMapper,
                 scope: Optional[Callable[[Activity, Activity],
                                          bool]] = None,
                 label: str = "gateway"):
        self._mapper = mapper
        self._scope = scope
        self.label = label
        self.mapped = 0
        self.passed = 0
        self.untranslatable = 0

    def install(self, simulator) -> "BoundaryGateway":
        """Register with a :class:`repro.sim.kernel.Simulator`."""
        simulator.add_gateway(self)
        return self

    def process(self, message: Message) -> None:
        """Rewrite *message*'s attachments in place (kernel hook)."""
        sender, receiver = message.sender, message.receiver
        if self._scope is not None and not self._scope(sender, receiver):
            self.passed += len(message.attachments)
            return
        rewritten: list[NameAttachment] = []
        for attachment in message.attachments:
            mapped = self._mapper(sender, receiver, attachment.name)
            if mapped is None:
                self.untranslatable += 1
                rewritten.append(attachment)
            elif mapped == attachment.name:
                self.passed += 1
                rewritten.append(attachment)
            else:
                self.mapped += 1
                rewritten.append(attachment.rewritten(mapped))
        message.attachments = rewritten

    def stats(self) -> dict[str, int]:
        """Counters: mapped / passed / untranslatable attachments."""
        return {"mapped": self.mapped, "passed": self.passed,
                "untranslatable": self.untranslatable}

    def __repr__(self) -> str:
        return (f"<BoundaryGateway {self.label!r} mapped={self.mapped} "
                f"passed={self.passed} "
                f"untranslatable={self.untranslatable}>")
