"""Ablation A3: boundary mapping on/off.

The §6 solutions are implemented *by mapping at the boundary* ("the
resolution rule is implemented by mapping the embedded pid"); §5.1
notes the Newcastle ``../machine`` rule can map file names the same
way.  A3 measures exchanged-name coherence with and without an
installed :class:`~repro.closure.boundary.BoundaryGateway`, over two
substrates:

* the Newcastle Connection, using its algebraic prefix mapper;
* a §7 federation, using the automated human-prefix mapper.

Expected shape: without the gateway, names exchanged across
machine/org boundaries are incoherent under the receiver's ordinary
resolution; with the gateway installed the same workload is fully
coherent (modulo names the mapper declares untranslatable — none in
these scenarios).
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult
from repro.closure.boundary import BoundaryGateway
from repro.model.names import CompoundName
from repro.model.resolution import resolve
from repro.namespaces.newcastle import NewcastleSystem
from repro.sim.kernel import Simulator
from repro.federation.scopes import FederationEnvironment

__all__ = ["run_a3_boundary_mapping"]


def _newcastle_leg(seed: int, exchanges: int,
                   use_gateway: bool) -> tuple[float, dict[str, int]]:
    """One Newcastle run; returns (coherence rate, gateway stats)."""
    rng = random.Random(seed)
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    nc = NewcastleSystem(sigma=simulator.sigma)
    processes = []
    for machine_label in ("alpha", "beta", "gamma"):
        tree = nc.add_machine(machine_label)
        tree.mkfile("usr/spool/mail")
        tree.mkfile(f"usr/{machine_label}-data")
        machine = simulator.machine(network, machine_label)
        for index in range(2):
            sim_process = simulator.spawn(
                machine, f"{machine_label}-p{index}")
            processes.append(nc.spawn(machine_label,
                                      sim_process.label,
                                      activity=sim_process))
    gateway = BoundaryGateway(nc.boundary_mapper(), label="newcastle")
    if use_gateway:
        gateway.install(simulator)

    probe_names = [CompoundName.parse("/usr/spool/mail")] + [
        CompoundName.parse(f"/usr/{m}-data")
        for m in ("alpha", "beta", "gamma")]
    exchanges_done = []
    for _ in range(exchanges):
        sender, receiver = rng.sample(processes, 2)
        name_ = rng.choice(probe_names)
        intended = resolve(nc.registry.context_of(sender), name_)
        if not intended.is_defined():
            continue
        message = sender.send(receiver)
        message.attach(name_, intended)
        exchanges_done.append((message, intended))
    simulator.run()

    coherent_count = 0
    for message, intended in exchanges_done:
        attachment = message.attachments[0]
        seen = resolve(nc.registry.context_of(message.receiver),
                       attachment.name)
        if seen is intended:
            coherent_count += 1
    rate = coherent_count / len(exchanges_done) if exchanges_done else 1.0
    return rate, gateway.stats()


def _federation_leg(seed: int, exchanges: int,
                    use_gateway: bool) -> tuple[float, dict[str, int]]:
    rng = random.Random(seed + 1)
    simulator = Simulator(seed=seed)
    network = simulator.network("wan")
    env = FederationEnvironment(sigma=simulator.sigma)
    org1 = env.add_scope("org1")
    org2 = env.add_scope("org2")
    for org, owner in ((org1, "amy"), (org2, "bob")):
        org.publish("users").mkfile(f"{owner}/plan")
    env.import_foreign(org1, org2, "org2")
    env.import_foreign(org2, org1, "org1")

    processes = []
    for org in (org1, org2):
        machine = simulator.machine(network, org.label)
        for index in range(2):
            sim_process = simulator.spawn(machine,
                                          f"{org.label}-p{index}")
            processes.append(env.spawn(org, sim_process.label,
                                       activity=sim_process))
    gateway = BoundaryGateway(env.boundary_mapper(), label="federation")
    if use_gateway:
        gateway.install(simulator)

    probe_names = [CompoundName.parse("/users/amy/plan"),
                   CompoundName.parse("/users/bob/plan")]
    exchanges_done = []
    for _ in range(exchanges):
        sender, receiver = rng.sample(processes, 2)
        name_ = rng.choice(probe_names)
        intended = resolve(env.registry.context_of(sender), name_)
        if not intended.is_defined():
            continue
        message = sender.send(receiver)
        message.attach(name_, intended)
        exchanges_done.append((message, intended))
    simulator.run()

    coherent_count = 0
    for message, intended in exchanges_done:
        attachment = message.attachments[0]
        seen = resolve(env.registry.context_of(message.receiver),
                       attachment.name)
        if seen is intended:
            coherent_count += 1
    rate = coherent_count / len(exchanges_done) if exchanges_done else 1.0
    return rate, gateway.stats()


def run_a3_boundary_mapping(seed: int = 0,
                            exchanges: int = 150) -> ExperimentResult:
    """A3: exchanged-name coherence with and without boundary
    gateways."""
    result = ExperimentResult(
        exp_id="A3",
        title="Boundary-mapping ablation (section 6 'implemented by "
              "mapping')",
        headers=["substrate", "gateway", "coherence rate",
                 "mapped", "passed", "untranslatable"])
    rates: dict[tuple[str, bool], float] = {}
    for substrate, leg in (("newcastle", _newcastle_leg),
                           ("federation", _federation_leg)):
        for use_gateway in (False, True):
            rate, stats = leg(seed, exchanges, use_gateway)
            rates[(substrate, use_gateway)] = rate
            result.rows.append([
                substrate, "on" if use_gateway else "off", rate,
                stats["mapped"], stats["passed"],
                stats["untranslatable"]])

    result.check("without mapping, cross-boundary exchange is "
                 "incoherent",
                 rates[("newcastle", False)] < 1.0
                 and rates[("federation", False)] < 1.0)
    result.check("the boundary gateway restores full coherence "
                 "(Newcastle ../machine rule)",
                 rates[("newcastle", True)] == 1.0)
    result.check("the boundary gateway restores full coherence "
                 "(federation prefix rule)",
                 rates[("federation", True)] == 1.0)
    result.notes.append(f"seed={seed} exchanges={exchanges}")
    result.figures = {f"{s}|{'on' if g else 'off'}": r
                      for (s, g), r in rates.items()}
    return result
