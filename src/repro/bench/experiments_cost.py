"""Ablation A4: the operational cost of each naming design.

Coherence is only half of section 5's trade-off — the single naming
graph buys its "high degree of coherence" by funnelling every rooted
resolution through shared directories, while the shared-graph approach
"leads to more loosely-coupled distributed systems" and per-process
namespaces bind subsystems directly into each context.  A4 makes the
other half measurable: the same workload (70% machine-local file
names, 30% shared-corpus names) is resolved through placed directory
servers on three designs, counting messages, virtual latency and
central-server load.

Expected shape: the single tree pays remote traffic even for local
names and concentrates load on the root server; the shared graph
serves local names with zero messages; per-process namespaces match
the shared graph on locality while keeping E11's coherence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.harness import ExperimentResult
from repro.model.names import CompoundName
from repro.namespaces.perprocess import PerProcessSystem
from repro.namespaces.shared_graph import SharedGraphSystem
from repro.namespaces.single_tree import SingleTreeSystem
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver, ResolutionCost
from repro.sim.kernel import Simulator

__all__ = ["run_a4_resolution_cost"]

_SITES = ("site1", "site2")
_LOCAL_FILES = ("tmp/build.log", "tmp/cache")
_SHARED_FILES = ("corpus/words", "corpus/extra")


@dataclass
class _Deployment:
    """One scheme wired onto simulator machines with placements."""

    label: str
    simulator: Simulator
    resolver: DistributedResolver
    #: (client process, context, local names, shared names)
    clients: list[tuple]
    central_server_machine: str


def _deploy_single_tree(seed: int) -> _Deployment:
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    system = SingleTreeSystem(sigma=simulator.sigma)
    placement = DirectoryPlacement()
    root_machine = simulator.machine(network, "rootserver")
    machines = {}
    for site in _SITES:
        system.add_machine(site)
        for path in _LOCAL_FILES:
            system.machine_tree(site).mkfile(path)
        machines[site] = simulator.machine(network, site)
    for path in _SHARED_FILES:
        system.tree.mkfile(f"shared/{path}")
    # The root (and the shared subtree) live on the root server; each
    # machine hosts its own subtree.
    placement.place_subtree(system.tree.root, root_machine)
    for site in _SITES:
        placement.place_subtree(system.machine_tree(site).root,
                                machines[site])
    resolver = DistributedResolver(simulator, placement)
    clients = []
    for site in _SITES:
        sim_process = simulator.spawn(machines[site], f"{site}-client")
        process = system.spawn(site, sim_process.label,
                               activity=sim_process)
        locals_ = [CompoundName.parse(f"/{site}/{p}")
                   for p in _LOCAL_FILES]
        shared = [CompoundName.parse(f"/shared/{p}")
                  for p in _SHARED_FILES]
        clients.append((sim_process,
                        system.registry.context_of(process),
                        locals_, shared))
    return _Deployment("single-tree", simulator, resolver, clients,
                       "rootserver")


def _deploy_shared_graph(seed: int) -> _Deployment:
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    system = SharedGraphSystem(sigma=simulator.sigma)
    placement = DirectoryPlacement()
    vice_machine = simulator.machine(network, "viceserver")
    for path in _SHARED_FILES:
        system.shared.mkfile(path)
    placement.place_subtree(system.shared.root, vice_machine)
    clients = []
    for site in _SITES:
        client = system.add_client(site)
        for path in _LOCAL_FILES:
            client.tree.mkfile(path)
        machine = simulator.machine(network, site)
        placement.place_subtree(client.tree.root, machine)
        sim_process = simulator.spawn(machine, f"{site}-client")
        process = client.spawn(sim_process.label, activity=sim_process)
        locals_ = [CompoundName.parse(f"/{p}") for p in _LOCAL_FILES]
        shared = [CompoundName.parse(f"/vice/{p}")
                  for p in _SHARED_FILES]
        clients.append((sim_process,
                        system.registry.context_of(process),
                        locals_, shared))
    resolver = DistributedResolver(simulator, placement)
    return _Deployment("shared-graph", simulator, resolver, clients,
                       "viceserver")


def _deploy_perprocess(seed: int) -> _Deployment:
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    system = PerProcessSystem(sigma=simulator.sigma)
    placement = DirectoryPlacement()
    fs_machine = simulator.machine(network, "fileserver")
    system.add_machine("fileserver")
    for path in _SHARED_FILES:
        system.machine_tree("fileserver").mkfile(path)
    placement.place_subtree(system.machine_tree("fileserver").root,
                            fs_machine)
    clients = []
    for site in _SITES:
        system.add_machine(site)
        for path in _LOCAL_FILES:
            system.machine_tree(site).mkfile(path)
        machine = simulator.machine(network, site)
        placement.place_subtree(system.machine_tree(site).root, machine)
        sim_process = simulator.spawn(machine, f"{site}-client")
        process = system.spawn(site, sim_process.label,
                               mounts=[("local", site),
                                       ("shared", "fileserver")],
                               activity=sim_process)
        locals_ = [CompoundName.parse(f"/local/{p}")
                   for p in _LOCAL_FILES]
        shared = [CompoundName.parse(f"/shared/{p}")
                  for p in _SHARED_FILES]
        clients.append((sim_process,
                        system.registry.context_of(process),
                        locals_, shared))
    resolver = DistributedResolver(simulator, placement)
    return _Deployment("per-process", simulator, resolver, clients,
                       "fileserver")


def _run_workload(deployment: _Deployment, rng: random.Random,
                  resolutions: int) -> dict[str, float]:
    costs: list[ResolutionCost] = []
    local_costs: list[ResolutionCost] = []
    failures = 0
    for _ in range(resolutions):
        client, context, locals_, shared = rng.choice(deployment.clients)
        is_local = rng.random() < 0.7
        name_ = rng.choice(locals_ if is_local else shared)
        entity, cost = deployment.resolver.resolve(client, context, name_)
        if not entity.is_defined():
            failures += 1
        costs.append(cost)
        if is_local:
            local_costs.append(cost)
    total = ResolutionCost.merge(costs)
    local_total = ResolutionCost.merge(local_costs)
    # `load` aggregates by label (reporting view of the per-process
    # counters); the central machine hosts exactly one server here.
    central = sum(
        count for label, count in deployment.resolver.load.items()
        if deployment.central_server_machine in label)
    return {
        "mean_messages": total.messages / resolutions,
        "mean_latency": total.latency / resolutions,
        "local_mean_messages": (local_total.messages / len(local_costs)
                                if local_costs else 0.0),
        "central_load": float(central),
        "failures": float(failures),
    }


def run_a4_resolution_cost(seed: int = 0,
                           resolutions: int = 200) -> ExperimentResult:
    """A4: messages/latency/central load per naming design."""
    rng = random.Random(seed)
    measurements = {}
    for deploy in (_deploy_single_tree, _deploy_shared_graph,
                   _deploy_perprocess):
        deployment = deploy(seed)
        measurements[deployment.label] = _run_workload(
            deployment, rng, resolutions)

    result = ExperimentResult(
        exp_id="A4",
        title="Resolution cost by naming design (section 5 trade-off)",
        headers=["design", "mean msgs", "mean latency",
                 "local-name mean msgs", "central-server steps",
                 "failed resolutions"])
    for label in ("single-tree", "shared-graph", "per-process"):
        m = measurements[label]
        result.rows.append([label, m["mean_messages"], m["mean_latency"],
                            m["local_mean_messages"], m["central_load"],
                            int(m["failures"])])

    single = measurements["single-tree"]
    andrew = measurements["shared-graph"]
    port = measurements["per-process"]
    result.check("every resolution succeeded on every design",
                 all(m["failures"] == 0 for m in measurements.values()))
    result.check("the single tree pays messages even for local names",
                 single["local_mean_messages"] > 0.0)
    result.check("the shared graph serves local names without any "
                 "messages", andrew["local_mean_messages"] == 0.0)
    result.check("per-process namespaces match shared-graph locality",
                 port["local_mean_messages"] == 0.0)
    result.check("the single tree concentrates the most load on its "
                 "central server",
                 single["central_load"] > andrew["central_load"]
                 and single["central_load"] > port["central_load"])
    result.check("loosely-coupled designs cost fewer messages overall",
                 single["mean_messages"] > andrew["mean_messages"]
                 and single["mean_messages"] > port["mean_messages"])
    result.notes.append(f"seed={seed} resolutions={resolutions} "
                        f"(70% local / 30% shared)")
    result.figures = {f"{k}|mean_messages": v["mean_messages"]
                      for k, v in measurements.items()}
    return result
