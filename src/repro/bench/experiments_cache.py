"""Ablation A5 (extension): cached bindings and coherence maintenance.

A binding cache copies part of a context onto another machine — so a
stale cache entry *is* incoherence in the paper's sense: the same name
denoting different entities in different parts of the system.  A5
drives a lookup workload with occasional rebinds under the three
policies of :mod:`repro.nameservice.cache` and measures the classic
trade-off:

* ``NONE``   — never stale, every remote lookup pays a round trip;
* ``TTL``    — cheap reads, stale reads inside the expiry window;
* ``INVALIDATE`` — cheap reads AND never stale after delivery, paying
  one invalidation message per cached copy on each rebind.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult
from repro.model.context import context_object
from repro.model.entities import ObjectEntity
from repro.nameservice.cache import CachePolicy, CachingDirectoryService
from repro.nameservice.placement import DirectoryPlacement
from repro.sim.kernel import Simulator

__all__ = ["run_a5_cache_coherence"]

_NAMES = [f"svc{i}" for i in range(6)]


def _run_policy(policy: CachePolicy, seed: int, operations: int,
                rebind_every: int, ttl: float) -> dict[str, float]:
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    server_machine = simulator.machine(network, "registry")
    client_machines = [simulator.machine(network, f"client{i}")
                       for i in range(3)]
    directory = context_object("services")
    simulator.sigma.add(directory)
    versions: dict[str, ObjectEntity] = {}
    for name_ in _NAMES:
        versions[name_] = ObjectEntity(f"{name_}-v1")
        simulator.sigma.add(versions[name_])
        directory.state.bind(name_, versions[name_])
    placement = DirectoryPlacement()
    placement.place(directory, server_machine)
    service = CachingDirectoryService(simulator, placement,
                                      policy=policy, ttl=ttl)
    rng = random.Random(seed)
    stale = 0
    reads = 0
    version_counter = {name_: 1 for name_ in _NAMES}
    for op_index in range(operations):
        # Virtual time advances steadily so TTL windows are meaningful.
        simulator.schedule(1.0, lambda: None, note="tick")
        simulator.run()
        if rebind_every and op_index and op_index % rebind_every == 0:
            name_ = rng.choice(_NAMES)
            version_counter[name_] += 1
            fresh = ObjectEntity(
                f"{name_}-v{version_counter[name_]}")
            simulator.sigma.add(fresh)
            service.rebind(directory, name_, fresh)
            versions[name_] = fresh
            continue
        client = rng.choice(client_machines)
        name_ = rng.choice(_NAMES)
        seen = service.lookup(client, directory, name_)
        reads += 1
        if seen is not versions[name_]:
            stale += 1
    stats = service.stats()
    return {
        "stale_rate": stale / reads if reads else 0.0,
        "remote_reads_per_lookup": stats["remote_reads"] / reads,
        "invalidation_messages": float(stats["invalidation_messages"]),
        "hit_rate": (stats["hits"] / (stats["hits"] + stats["misses"])
                     if stats["hits"] + stats["misses"] else 0.0),
    }


def run_a5_cache_coherence(seed: int = 0, operations: int = 400,
                           rebind_every: int = 25,
                           ttl: float = 40.0) -> ExperimentResult:
    """A5: staleness vs message cost for the three cache policies."""
    measurements = {policy: _run_policy(policy, seed, operations,
                                        rebind_every, ttl)
                    for policy in CachePolicy}
    result = ExperimentResult(
        exp_id="A5",
        title="Cache-coherence ablation (extension: cached bindings)",
        headers=["policy", "stale-read rate", "remote reads / lookup",
                 "cache hit rate", "invalidation msgs"])
    for policy in CachePolicy:
        m = measurements[policy]
        result.rows.append([str(policy), m["stale_rate"],
                            m["remote_reads_per_lookup"],
                            m["hit_rate"],
                            int(m["invalidation_messages"])])

    none, ttl_m, inv = (measurements[CachePolicy.NONE],
                        measurements[CachePolicy.TTL],
                        measurements[CachePolicy.INVALIDATE])
    result.check("no caching: never stale",
                 none["stale_rate"] == 0.0)
    result.check("no caching: every lookup pays a remote read",
                 none["remote_reads_per_lookup"] == 1.0)
    result.check("TTL caching: cheaper reads but stale windows",
                 ttl_m["remote_reads_per_lookup"]
                 < none["remote_reads_per_lookup"]
                 and ttl_m["stale_rate"] > 0.0)
    result.check("invalidation: cheap reads and never stale",
                 inv["remote_reads_per_lookup"]
                 < none["remote_reads_per_lookup"]
                 and inv["stale_rate"] == 0.0)
    result.check("invalidation pays its coherence in messages",
                 inv["invalidation_messages"] > 0)
    result.notes.append(
        f"seed={seed} operations={operations} "
        f"rebind_every={rebind_every} ttl={ttl}")
    result.figures = {f"{p}|stale": m["stale_rate"]
                      for p, m in ((str(k), v)
                                   for k, v in measurements.items())}
    return result
