"""Experiment E12: the section-7 architecture — shared name spaces in
limited scopes, human prefix-mapping at scope boundaries, and the
section-6 solutions restoring coherence across scopes.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult
from repro.closure.rules import RActivity, RReceiver, RSender
from repro.coherence.auditor import CoherenceAuditor
from repro.coherence.metrics import measure_degree
from repro.embedded.documents import flatten
from repro.embedded.objects import StructuredContent, structured_object
from repro.embedded.scoping import scope_rule
from repro.federation.mapping import PrefixMapping, mapping_burden
from repro.workloads.generators import exchange_events
from repro.workloads.organizations import OrgSpec, build_federation

__all__ = ["run_e12_federation"]


def run_e12_federation(seed: int = 0, count: int = 400,
                       ) -> ExperimentResult:
    """E12 (§7): shared name spaces in scopes."""
    rng = random.Random(seed)
    env, orgs = build_federation(
        [OrgSpec("org1", divisions=2, users_per_division=2, services=2),
         OrgSpec("org2", divisions=2, users_per_division=2, services=2)],
        seed=seed)
    org1, org2 = orgs

    result = ExperimentResult(
        exp_id="E12",
        title="Shared name spaces in limited scopes (section 7)",
        headers=["measurement", "population", "value"])

    # 1. Coherence within each scope for its shared spaces.
    probes1 = org1.user_names + org1.service_names
    within1 = measure_degree(org1.activities, probes1, env.registry)
    result.rows.append(["/users and /services names", "within org1",
                        within1.coherent_fraction])
    result.check("name spaces shared under a common name give coherence "
                 "within the scope", within1.coherent_fraction == 1.0)

    # 2. Across organizations, those names are incoherent.
    both = org1.activities + org2.activities
    across = measure_degree(both, probes1, env.registry)
    result.rows.append(["org1 /users names", "across both orgs",
                        across.coherent_fraction])
    result.check("crossing scope boundaries: common-name attachment is "
                 "not possible, incoherence arises",
                 across.coherent_fraction < 1.0)

    # 3. The human mapping: attach foreign spaces under /org2 and
    #    rewrite names with the prefix.
    env.import_foreign(org1.scope, org2.scope, "org2")
    mapping = PrefixMapping("org2", "org1", "org2")
    sample = org2.user_names[:3]
    mapped_ok = all(
        env.resolve_for(org1.activities[0], mapping.apply(name_))
        is env.resolve_for(org2.activities[0], name_)
        for name_ in sample)
    result.rows.append(["prefix-mapped /org2/users names resolve",
                        "org1 → org2", mapped_ok])
    result.check("humans map names by adding the prefix /org2",
                 mapped_ok)

    # 4. Mapping burden: how often the workload crosses the boundary.
    events = exchange_events(env.registry, both,
                             probes1 + org2.user_names, rng, count)
    crossing = [e for e in events
                if (env.scope_of(e.sender).chain()[-1]
                    is not env.scope_of(e.resolver).chain()[-1])]
    burden = mapping_burden(crossing, len(events))
    result.rows.append(["mapping burden (boundary-crossing uses)",
                        f"{int(burden['crossing'])}/{int(burden['total'])}",
                        burden["burden"]])
    result.check("interaction across scope boundaries creates mapping "
                 "work", 0.0 < burden["burden"] < 1.0)

    # 5. Exchanged names across scopes: R(receiver) breaks on homonyms,
    #    R(sender) (a section-6 solution) restores coherence.
    receiver_rate = (CoherenceAuditor(RReceiver(env.registry))
                     .observe_all(events).summary.coherence_rate())
    sender_rate = (CoherenceAuditor(RSender(env.registry))
                   .observe_all(events).summary.coherence_rate())
    result.rows.append(["exchanged names, R(receiver)", "both orgs",
                        receiver_rate])
    result.rows.append(["exchanged names, R(sender)", "both orgs",
                        sender_rate])
    result.check("one cannot rely on humans for exchanged names — "
                 "R(receiver) is incoherent across scopes",
                 receiver_rate < 1.0)
    result.check("the section-6 solution (R(sender)) restores coherence "
                 "for exchanged names", sender_rate == 1.0)

    # 6. Embedded names across scopes: a structured object in org2's
    #    /users tree, read from org1 via the /org2 prefix.  Under
    #    R(activity) the embedded name breaks; under Figure-6 R(file)
    #    it resolves inside org2's subtree.
    users2 = org2.scope.space("users")
    notes = users2.mkfile("bob/notes")
    notes.state = "BOB-NOTES"
    report = users2.add("bob/report", structured_object(
        "report", StructuredContent().text("{").include("bob/notes")
        .text("}"), sigma=env.sigma))
    reader = org1.activities[0]
    via_activity = flatten(report, reader, RActivity(env.registry))
    via_scope = flatten(report, reader, scope_rule(env.sigma))
    result.rows.append(["embedded name via R(activity)", reader.label,
                        via_activity])
    result.rows.append(["embedded name via R(file)", reader.label,
                        via_scope])
    result.check("embedded names crossing scopes are incoherent under "
                 "R(activity)", "⊥" in via_activity)
    result.check("the embedded-names solution restores coherence across "
                 "scopes", via_scope == "{BOB-NOTES}")
    result.notes.append(f"seed={seed} events={count}")
    result.figures["burden"] = burden["burden"]
    result.figures["receiver_rate"] = receiver_rate
    return result
