"""Experiments E4–E8 and ablation A2: the section-5 naming schemes.

One experiment per analysed scheme — Unix trees, the Newcastle
Connection (Figure 3), the Andrew-style shared naming graph
(Figure 4), OSF DCE cells, and federated cross-links (Figure 5) —
each reproducing the paper's qualitative claims about who is coherent
with whom, for which names.  A2 puts all schemes on one comparable
grid.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.coherence.definitions import coherent, is_global_name
from repro.coherence.metrics import measure_degree
from repro.model.names import CompoundName
from repro.namespaces.crosslink import FederatedSystems
from repro.namespaces.dce import DCESystem
from repro.namespaces.newcastle import NewcastleSystem, RemoteRootPolicy
from repro.namespaces.perprocess import PerProcessSystem
from repro.namespaces.shared_graph import SharedGraphSystem
from repro.namespaces.single_tree import SingleTreeSystem
from repro.namespaces.unix import UnixSystem
from repro.remote.execution import evaluate_remote_exec
from repro.replication.weak import classify_names, replica_equivalence
from repro.workloads.organizations import build_campus

__all__ = ["run_e4_unix", "run_e5_newcastle", "run_e6_shared_graph",
           "run_e7_dce", "run_e8_crosslinks", "run_a2_scheme_grid"]


def run_e4_unix(seed: int = 0) -> ExperimentResult:
    """E4 (§5.1): Unix file names — root sharing, fork inheritance,
    working directories, chroot."""
    unix = UnixSystem("wombat")
    for path in ("etc/passwd", "usr/bin/cc", "home/alice/notes",
                 "home/alice/paper", "home/bob/todo"):
        unix.tree.mkfile(path)
    init = unix.spawn("init")
    shell = unix.fork(init, "shell")
    editor = unix.fork(shell, "editor")
    rooted_probes = unix.probe_names()
    relative_probes = [p.relative() for p in rooted_probes]
    all_probes = rooted_probes + relative_probes
    same_root = [init, shell, editor]

    result = ExperimentResult(
        exp_id="E4", title="Unix file names (section 5.1)",
        headers=["population", "probe set", "coherent fraction"])

    degree_rooted = measure_degree(same_root, rooted_probes, unix.registry)
    result.rows.append(["same-root processes", "rooted /…",
                        degree_rooted.coherent_fraction])
    result.check("coherence for names starting with '/' among "
                 "same-root processes",
                 degree_rooted.coherent_fraction == 1.0)

    degree_fork = measure_degree([shell, editor], all_probes, unix.registry)
    result.rows.append(["parent+fresh fork child", "all names",
                        degree_fork.coherent_fraction])
    result.check("parent and child coherent for ALL names after fork",
                 degree_fork.coherent_fraction == 1.0)

    unix.chdir(editor, "/home/alice")
    degree_after = measure_degree([shell, editor], relative_probes,
                                  unix.registry)
    degree_after_rooted = measure_degree([shell, editor], rooted_probes,
                                         unix.registry)
    result.rows.append(["parent+child after chdir", "relative names",
                        degree_after.coherent_fraction])
    result.rows.append(["parent+child after chdir", "rooted /…",
                        degree_after_rooted.coherent_fraction])
    result.check("context modification (chdir) breaks relative-name "
                 "coherence",
                 degree_after.coherent_fraction < 1.0)
    result.check("rooted names stay coherent through chdir",
                 degree_after_rooted.coherent_fraction == 1.0)

    jail = unix.spawn("jailed")
    unix.chroot(jail, "/home")
    degree_jail = measure_degree(same_root + [jail], rooted_probes,
                                 unix.registry)
    result.rows.append(["population incl. chroot'd process", "rooted /…",
                        degree_jail.coherent_fraction])
    result.check("coherence only among processes with the same root "
                 "binding (chroot breaks it)",
                 degree_jail.coherent_fraction < 1.0)
    result.figures["rooted_same_root"] = degree_rooted.coherent_fraction
    result.figures["rooted_with_jail"] = degree_jail.coherent_fraction
    return result


def _newcastle_fixture() -> tuple[NewcastleSystem, dict[str, list]]:
    nc = NewcastleSystem()
    for machine in ("unix1", "unix2", "unix3"):
        tree = nc.add_machine(machine)
        tree.mkfile("usr/spool/mail")          # homonym on every machine
        tree.mkfile(f"usr/{machine}-data")     # machine-specific file
    processes = {m: [nc.spawn(m, f"{m}-p{i}") for i in range(2)]
                 for m in nc.machines()}
    return nc, processes


def run_e5_newcastle(seed: int = 0) -> ExperimentResult:
    """E5 (Figure 3): the Newcastle Connection — three machines, one
    tree, per-machine roots."""
    nc, processes = _newcastle_fixture()
    result = ExperimentResult(
        exp_id="E5", title="Newcastle Connection (Figure 3)",
        headers=["measurement", "value"])

    local_probe = CompoundName.parse("/usr/unix1-data")
    homonym_probe = CompoundName.parse("/usr/spool/mail")
    same_machine = processes["unix1"]
    cross = [processes["unix1"][0], processes["unix2"][0]]

    same_ok = coherent(local_probe, same_machine, nc.registry)
    result.rows.append(["same-machine coherence for /usr/unix1-data",
                        same_ok])
    result.check("processes with the same root binding have coherence "
                 "for '/' names", same_ok)

    cross_ok = coherent(homonym_probe, cross, nc.registry)
    result.rows.append(["cross-machine coherence for /usr/spool/mail",
                        cross_ok])
    result.check("incoherence across machine boundaries", not cross_ok)

    globals_ok = is_global_name(homonym_probe, nc.activities(),
                                nc.registry)
    result.rows.append(["/usr/spool/mail is a global name", globals_ok])
    result.check("a shared naming tree does not imply global names",
                 not globals_ok)

    mapped = nc.map_name(local_probe, "unix1", "unix2")
    p1, p2 = cross
    map_ok = (nc.resolve_for(p2, mapped)
              is nc.resolve_for(p1, local_probe))
    result.rows.append([f"mapping rule {local_probe} → {mapped}", map_ok])
    result.check("the simple ../machine mapping rule maps names across "
                 "machines", map_ok)

    arguments = [local_probe, homonym_probe,
                 CompoundName.parse("/usr/spool")]
    child_invoker = nc.remote_spawn(p1, "unix2", "rc-invoker",
                                    RemoteRootPolicy.INVOKER)
    child_target = nc.remote_spawn(p1, "unix2", "rc-target",
                                   RemoteRootPolicy.TARGET)
    report_invoker = evaluate_remote_exec(nc.registry, p1, child_invoker,
                                          arguments, "invoker-root")
    report_target = evaluate_remote_exec(nc.registry, p1, child_target,
                                         arguments, "target-root")
    result.rows.append(["remote exec, invoker-root arg coherence",
                        report_invoker.coherence_rate])
    result.rows.append(["remote exec, target-root arg coherence",
                        report_target.coherence_rate])
    result.check("invoker-root remote execution provides coherence for "
                 "parameters", report_invoker.coherence_rate == 1.0)
    result.check("target-root remote execution does not",
                 report_target.coherence_rate < 1.0)

    local_access = nc.resolve_for(child_target,
                                  "/usr/unix2-data").is_defined()
    result.rows.append(["target-root child accesses local objects",
                        local_access])
    result.check("target-root child can access objects local to the "
                 "remote machine", local_access)
    result.figures["invoker_rate"] = report_invoker.coherence_rate
    result.figures["target_rate"] = report_target.coherence_rate
    return result


def run_e6_shared_graph(seed: int = 0) -> ExperimentResult:
    """E6 (Figure 4): the shared naming graph approach (Andrew)."""
    campus = build_campus(clients=3, local_files_per_client=2,
                          shared_files=4, replicated_commands=2,
                          processes_per_client=2, seed=seed)
    activities = campus.activities()
    classes = classify_names(campus.probe_names(), activities,
                             campus.registry, campus.replicas)

    result = ExperimentResult(
        exp_id="E6", title="Shared naming graph / Andrew (Figure 4)",
        headers=["name class", "count", "example"])
    for klass in ("strong", "weak", "incoherent"):
        names = sorted(classes[klass])
        result.rows.append([klass, len(names),
                            str(names[0]) if names else "-"])

    shared_prefix = campus.shared_prefix.as_rooted()
    strong_all_shared = all(n.starts_with(shared_prefix)
                            for n in classes["strong"])
    shared_all_strong = all(n in classes["strong"]
                            for n in campus.shared_probe_names())
    result.check("all /vice names are coherent among all processes",
                 shared_all_strong)
    result.check("only shared-graph names are strongly coherent "
                 "system-wide", strong_all_shared)

    replicated = [n for n in classes["weak"]]
    result.check("replicated commands (/bin/...) are weakly coherent",
                 len(replicated) > 0 and all(
                     str(n).startswith("/bin/") for n in replicated))

    client0 = campus.client("ws0")
    local_probes = [p.as_rooted() for p in client0.tree.all_paths()
                    if not p.starts_with(campus.shared_prefix)]
    within = measure_degree(
        [a for a in activities
         if a.label.startswith("ws0")], local_probes, campus.registry)
    result.rows.append(["ws0 local names within ws0", within.probes,
                        f"{within.coherent_fraction:.3f}"])
    result.check("local names are coherent within a client subsystem",
                 within.coherent_fraction == 1.0)

    parent = [a for a in activities if a.label.startswith("ws0")][0]
    child = campus.remote_spawn(parent, "ws1", "rc")
    shared_args = campus.shared_probe_names()[:3]
    local_args = local_probes[:2]
    report_shared = evaluate_remote_exec(
        campus.registry, parent, child, shared_args, "shared args",
        equivalence=replica_equivalence(campus.replicas))
    report_local = evaluate_remote_exec(
        campus.registry, parent, child, local_args, "local args",
        equivalence=replica_equivalence(campus.replicas))
    result.rows.append(["remote exec: shared-graph args coherent",
                        report_shared.total,
                        f"{report_shared.coherence_rate:.3f}"])
    result.rows.append(["remote exec: home-subsystem args coherent",
                        report_local.total,
                        f"{report_local.coherence_rate:.3f}"])
    result.check("only entities in the shared naming graph can be "
                 "passed as arguments",
                 report_shared.coherence_rate == 1.0
                 and report_local.coherence_rate < 1.0)
    result.check("passable() predicts argument coherence",
                 all(campus.passable(n) for n in shared_args)
                 and not any(campus.passable(n) for n in local_args))
    return result


def run_e7_dce(seed: int = 0) -> ExperimentResult:
    """E7 (§5.2): OSF DCE — /... global directory and /.: cells."""
    dce = DCESystem()
    for cell in ("research", "sales"):
        tree = dce.add_cell(cell)
        tree.mkfile("services/login")          # homonym across cells
        tree.mkfile(f"services/{cell}-db")     # cell-specific
    machines = [dce.add_machine("ws1", "research"),
                dce.add_machine("ws2", "research"),
                dce.add_machine("ws3", "sales")]
    processes = [m.spawn(f"{m.label}-p") for m in machines]

    result = ExperimentResult(
        exp_id="E7", title="OSF DCE cells (section 5.2)",
        headers=["probe set", "population", "coherent fraction"])

    globals_degree = measure_degree(processes, dce.global_probe_names(),
                                    dce.registry)
    result.rows.append(["/... global names", "all machines",
                        globals_degree.coherent_fraction])
    result.check("global directory names (/...) are coherent everywhere",
                 globals_degree.coherent_fraction == 1.0)

    cell_probe = dce.cell_relative_name("services/login")
    same_cell = processes[:2]
    cross_cell = [processes[0], processes[2]]
    same_ok = coherent(cell_probe, same_cell, dce.registry)
    cross_ok = coherent(cell_probe, cross_cell, dce.registry)
    result.rows.append([str(cell_probe), "same cell", float(same_ok)])
    result.rows.append([str(cell_probe), "across cells", float(cross_ok)])
    result.check("cell-relative names are coherent within a cell",
                 same_ok)
    result.check("incoherence arises for names relative to the cell "
                 "context", not cross_ok)

    cell_degree = measure_degree(processes, dce.cell_probe_names(),
                                 dce.registry,
                                 groups={"research": same_cell})
    result.rows.append(["/.: names", "all machines",
                        cell_degree.coherent_fraction])
    result.check("a machine knows only one local cell → /.: names are "
                 "not global", cell_degree.global_fraction < 1.0)
    result.figures["global_rate"] = globals_degree.coherent_fraction
    result.figures["cell_rate"] = cell_degree.coherent_fraction
    return result


def run_e8_crosslinks(seed: int = 0) -> ExperimentResult:
    """E8 (Figure 5): cross-links between autonomous systems."""
    fed = FederatedSystems()
    sys1 = fed.add_system("sys1")
    sys2 = fed.add_system("sys2")
    sys1.mkfile("users/amy/todo")
    sys2.mkfile("projects/apollo/plan")
    # A jointly maintained entity that HAPPENS to be bound under the
    # same prefix in both systems (§5.3's coincidence case).
    joint = sys1.mkfile("well-known/rfc")
    sys2.add("well-known/rfc", joint)
    # Homonyms: same textual path, different entity.
    sys1.mkfile("etc/motd")
    sys2.mkfile("etc/motd")

    fed.add_link("sys1", "org2", "sys2")
    p1 = fed.spawn("sys1", "p1")
    p2 = fed.spawn("sys2", "p2")

    result = ExperimentResult(
        exp_id="E8", title="Cross-links between autonomous systems "
                           "(Figure 5)",
        headers=["measurement", "value"])

    remote_entity = fed.resolve_for(p2, "/projects/apollo/plan")
    access_ok = (fed.resolve_for(p1, "/org2/projects/apollo/plan")
                 is remote_entity)
    result.rows.append(["cross-link extends access to remote graph",
                        access_ok])
    result.check("the context of each activity is extended to allow "
                 "access to the remote naming graph", access_ok)

    coincidental = fed.coincidental_global_names()
    result.rows.append(["coincidental global names",
                        ", ".join(str(n) for n in coincidental) or "-"])
    result.check("no global names between systems unless the same "
                 "prefix happens to be used for a shared entity",
                 coincidental == [CompoundName.parse("/well-known/rfc")])

    exchanged_ok = coherent("/projects/apollo/plan", [p1, p2],
                            fed.registry)
    homonym_ok = coherent("/etc/motd", [p1, p2], fed.registry)
    result.rows.append(["exchanged name /projects/apollo/plan coherent",
                        exchanged_ok])
    result.rows.append(["homonym /etc/motd coherent", homonym_ok])
    result.check("incoherence when names are exchanged across system "
                 "boundaries", not exchanged_ok and not homonym_ok)

    child = fed.spawn("sys2", "remote-child")
    report = evaluate_remote_exec(
        fed.registry, p1, child,
        ["/users/amy/todo", "/etc/motd", "/well-known/rfc"],
        "cross-system remote exec")
    result.rows.append(["remote exec arg coherence across systems",
                        f"{report.coherence_rate:.3f}"])
    result.check("remote execution across systems suffers name "
                 "conflicts", report.coherence_rate < 1.0)
    return result


def run_a2_scheme_grid(seed: int = 0) -> ExperimentResult:
    """A2: all schemes under a comparable two-site workload.

    Each scheme hosts two sites, each with one site-local file of the
    *same* textual path (a homonym) plus a shared corpus reachable by
    every activity; the measured coherent fraction over each scheme's
    own probe population orders the approaches the way section 5 does.
    """
    rows: dict[str, float] = {}

    single = SingleTreeSystem()
    for site in ("site1", "site2"):
        single.add_machine(site)
        single.machine_tree(site).mkfile("tmp/scratch")
    single.tree.mkfile("shared/corpus")
    for site in ("site1", "site2"):
        for index in range(2):
            single.spawn(site, f"{site}-p{index}")
    rows["single-tree"] = single.measure().coherent_fraction

    andrew = SharedGraphSystem()
    andrew.shared.mkfile("corpus")
    for site in ("site1", "site2"):
        client = andrew.add_client(site)
        client.tree.mkfile("tmp/scratch")
        for index in range(2):
            client.spawn(f"{site}-p{index}")
    rows["shared-graph"] = andrew.measure().coherent_fraction

    nc = NewcastleSystem()
    for site in ("site1", "site2"):
        tree = nc.add_machine(site)
        tree.mkfile("tmp/scratch")
    nc.machine_tree("site1").mkfile("shared/corpus")
    for site in ("site1", "site2"):
        for index in range(2):
            nc.spawn(site, f"{site}-p{index}")
    rows["newcastle"] = nc.measure().coherent_fraction

    fed = FederatedSystems()
    for site in ("site1", "site2"):
        tree = fed.add_system(site)
        tree.mkfile("tmp/scratch")
    fed.tree("site1").mkfile("shared/corpus")
    fed.add_link("site2", "remote/site1", "site1")
    for site in ("site1", "site2"):
        for index in range(2):
            fed.spawn(site, f"{site}-p{index}")
    rows["cross-links"] = fed.measure().coherent_fraction

    port = PerProcessSystem()
    for site in ("site1", "site2"):
        port.add_machine(site)
        port.machine_tree(site).mkfile("tmp/scratch")
    port.add_machine("fileserver")
    port.machine_tree("fileserver").mkfile("corpus")
    for site in ("site1", "site2"):
        for index in range(2):
            port.spawn(site, f"{site}-p{index}",
                       mounts=[("local", site), ("shared", "fileserver")])
    rows["per-process"] = port.measure().coherent_fraction

    result = ExperimentResult(
        exp_id="A2", title="Scheme comparison grid (section 5)",
        headers=["scheme", "coherent fraction of probe names"])
    for scheme_label in ("single-tree", "shared-graph", "per-process",
                         "newcastle", "cross-links"):
        result.rows.append([scheme_label, rows[scheme_label]])

    result.check("the single naming tree has the highest degree of "
                 "coherence",
                 rows["single-tree"] == max(rows.values()))
    result.check("single tree >= shared graph",
                 rows["single-tree"] >= rows["shared-graph"])
    result.check("shared graph >= per-machine-root approaches",
                 rows["shared-graph"] >= rows["newcastle"]
                 and rows["shared-graph"] >= rows["cross-links"])
    result.figures.update(rows)
    return result
