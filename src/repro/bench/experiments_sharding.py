"""Ablation A10 (extension): hot-shard splitting at million-name scale.

The ROADMAP's production-scale target: a directory of ≥10^6 names
under an open-loop Zipf workload (≥10^5 resolutions) saturates any
single hosting server — the offered load exceeds one machine's
service rate, so its queue, and with it p99 latency, grows without
bound.  Sharding the directory's bindings by consistent hash
(:meth:`~repro.nameservice.placement.DirectoryPlacement.
place_sharded`) with **live load-driven splits**
(:class:`~repro.nameservice.sharding.ShardManager`) spreads the hot
bindings across a machine pool while the workload runs; migrations
travel as simulated messages, and every placement change rides the
epoch protocol.

Two configurations resolve the *same* seeded sample sequence:

* ``single placement`` — the classic one-machine directory (the seed
  system's only option);
* ``sharded + live splits`` — starts identically (one shard on the
  same machine) and lets the split policy react to observed load.

Latency is measured on an **open-loop overlay**: arrival *i* happens
at ``i/λ`` regardless of service progress (clients don't wait for
each other), each resolution pays its simulated hop latency plus a
deterministic per-server queue (``service × steps`` work units at
every directory server it touched, FIFO per server).  The overlay is
what makes saturation visible: the synchronous walk serializes the
simulator clock, but the queue model exposes what λ concurrent users
would experience.

Expected shape: single-placement p99 grows quarter over quarter
(unbounded queue), while the sharded run's *steady-state* p99 — after
the split policy's first check windows, warm-up excluded as usual in
queueing measurement — stays within 1.5× of the idle-network
baseline, and every binding is owned by exactly one shard at the end
of any split sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.bench.harness import ExperimentResult
from repro.model.context import Context
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.sharding import ShardManager
from repro.obs.audit import CoherenceAuditor
from repro.obs.instrument import Instrumentation
from repro.sim.kernel import Simulator
from repro.workloads.zipf import ZipfSampler, build_zipf_namespace

__all__ = ["run_a10_sharding", "run_a10_sharding_suite"]

_SERVICE = 0.4       #: virtual-time service cost per step at a server
_RATE = 5.0          #: open-loop arrivals per virtual-time unit
_SKEW = 1.0          #: Zipf exponent of the name popularity law
_POOL = 8            #: shard-server machines available to the splitter


@dataclass
class _OpenLoopQueue:
    """Deterministic FIFO queue per server over the arrival overlay.

    ``offer`` charges *work* (uid → directory steps) for a request
    arriving at *arrival*: the request waits for each server's
    previous backlog, then holds it for ``steps × service``.  Returns
    the total wait + service time added on top of hop latency.
    """

    service: float
    busy_until: dict[int, float] = field(default_factory=dict)

    def offer(self, arrival: float, work: dict[int, int]) -> float:
        at = arrival
        for uid in sorted(work):
            start = max(at, self.busy_until.get(uid, 0.0))
            done = start + work[uid] * self.service
            self.busy_until[uid] = done
            at = done
        return at - arrival

    def utilization(self, horizon: float) -> float:
        """Peak per-server busy time as a fraction of the horizon."""
        if not self.busy_until or horizon <= 0:
            return 0.0
        return max(self.busy_until.values()) / horizon


@dataclass
class _Deployment:
    simulator: Simulator
    resolver: DistributedResolver
    placement: DirectoryPlacement
    client: object
    client_uid: int
    context: Context
    namespace: object
    machines: list


def _deploy(seed: int, names: int, sharded: bool,
            obs: Optional[Instrumentation] = None,
            max_shards: int = 32) -> _Deployment:
    simulator = Simulator(seed=seed, obs=obs)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"shard{i}") for i in range(_POOL)]
    client_machine = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=names)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    if sharded:
        placement.place_sharded(namespace.directory, pool[0])
    else:
        placement.place(namespace.directory, pool[0])
    client = simulator.spawn(client_machine, "client")
    resolver = DistributedResolver(simulator, placement)
    if sharded:
        # The live feedback loop under test: watch per-shard window
        # load, split hot shards onto the least-loaded pool machine,
        # migrate bindings as simulated messages.
        resolver.shard_manager = ShardManager(
            resolver, pool=pool, split_fraction=0.2,
            check_every=max(200, names // 200),
            min_window=100, max_shards=max_shards)
    context = ProcessContext(tree.root)
    client_uid = resolver.server_for(client_machine).uid
    return _Deployment(simulator, resolver, placement, client,
                       client_uid, context, namespace, pool)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, int(q * len(ordered) + 0.999999) - 1))
    return ordered[index]


def _run_config(deployment: _Deployment, ranks: list[int],
                ) -> dict[str, float]:
    """Drive the sampled *ranks* through the deployment open-loop."""
    resolver = deployment.resolver
    namespace = deployment.namespace
    queue = _OpenLoopQueue(service=_SERVICE)
    latencies: list[float] = []
    step = 1.0 / _RATE
    before = resolver.load_by_uid()
    for index, rank in enumerate(ranks):
        arrival = index * step
        entity, cost = resolver.resolve(
            deployment.client, deployment.context,
            "/hot/" + namespace.names[rank])
        assert entity.is_defined()
        after = resolver.load_by_uid()
        work = {uid: count - before.get(uid, 0)
                for uid, count in after.items()
                if uid != deployment.client_uid
                and count != before.get(uid, 0)}
        before = after
        latencies.append(cost.latency + queue.offer(arrival, work))
    quarter = max(1, len(latencies) // 4)
    quarters = [latencies[i * quarter:(i + 1) * quarter]
                for i in range(4)]
    shard_map = deployment.placement.shard_map_of(
        namespace.directory)
    return {
        "latencies": latencies,
        "p50": _percentile(latencies, 0.50),
        "p99": _percentile(latencies, 0.99),
        # Steady state = second half of the run: the split policy needs
        # a check window of observed load before it can react, so the
        # warm-up transient is reported (q1 p99) but excluded from the
        # "flat" claim — classic warm-up exclusion.
        "p99_steady": _percentile(latencies[len(latencies) // 2:], 0.99),
        "q1_p99": _percentile(quarters[0], 0.99),
        "q4_p99": _percentile(quarters[3], 0.99),
        "peak_utilization": queue.utilization(len(ranks) * step),
        "splits": resolver.shard_splits,
        "split_aborts": resolver.shard_split_aborts,
        "shards": len(shard_map) if shard_map is not None else 1,
        "machines": (len(shard_map.machines())
                     if shard_map is not None else 1),
        "migration_messages": resolver.migration_messages,
        "kernel_messages": float(deployment.simulator.messages_sent),
        "partitioned": (shard_map.is_partition()
                        if shard_map is not None else True),
    }


def run_a10_sharding(seed: int = 0, names: int = 1_000_000,
                     resolutions: int = 100_000) -> ExperimentResult:
    """A10: live hot-shard splitting vs single placement, open-loop.

    Defaults are the ROADMAP's "millions of users" floor (10^6 names,
    10^5 resolutions); tests and smoke runs pass reduced sizes — the
    comparison's shape is scale-invariant as long as the offered rate
    exceeds one server's service rate (λ·service = 2.0 here).
    """
    sampler = ZipfSampler(names, skew=_SKEW, rng=random.Random(seed))
    ranks = sampler.sample_many(resolutions)

    configs = {}
    for label, sharded in (("single placement", False),
                           ("sharded + live splits", True)):
        deployment = _deploy(seed, names, sharded)
        configs[label] = _run_config(deployment, ranks)
        del deployment  # free the million-binding namespace promptly

    single = configs["single placement"]
    shard = configs["sharded + live splits"]
    # The no-queue floor: hop latency of one uncontended walk plus one
    # service quantum — what an idle deployment would answer in.
    idle_base = min(single["latencies"][0], shard["latencies"][0])
    result = ExperimentResult(
        exp_id="A10",
        title="Hot-shard splitting under an open-loop Zipf workload",
        headers=["configuration", "p50 latency", "p99 latency",
                 "steady p99", "q1 p99", "q4 p99", "shards", "splits",
                 "migration msgs", "peak util"])
    for label, m in configs.items():
        result.rows.append([
            label, round(m["p50"], 3), round(m["p99"], 3),
            round(m["p99_steady"], 3),
            round(m["q1_p99"], 3), round(m["q4_p99"], 3),
            int(m["shards"]), int(m["splits"]),
            int(m["migration_messages"]), round(m["peak_utilization"], 3)])

    result.check(
        "single placement saturates: p99 grows superlinearly across "
        "the run (q4 excess ≥ 2× q1 excess over the idle baseline)",
        (single["q4_p99"] - idle_base)
        >= 2 * max(single["q1_p99"] - idle_base, 1e-9))
    result.check(
        "live splitting keeps p99 flat: sharded steady-state p99 "
        "(warm-up excluded) ≤ 1.5× the unsharded idle baseline",
        shard["p99_steady"] <= 1.5 * idle_base)
    result.check(
        "the split policy converges: sharded q4 p99 ≤ the warm-up "
        "transient's q1 p99",
        shard["q4_p99"] <= max(shard["q1_p99"], idle_base))
    result.check(
        "sharded p99 beats saturated single placement by ≥4× even "
        "with its warm-up transient included",
        single["p99"] >= 4 * shard["p99"])
    result.check(
        "the split policy actually split (≥3 live splits) and spread "
        "shards over ≥3 machines",
        shard["splits"] >= 3 and shard["machines"] >= 3)
    result.check(
        "migrations travelled as simulated messages",
        shard["migration_messages"] > 0
        and shard["kernel_messages"] > 0)
    result.check(
        "every binding is owned by exactly one shard after the split "
        "sequence (contiguous partition of the hash space)",
        bool(shard["partitioned"]))
    result.check(
        "no split was aborted on the healthy network",
        shard["split_aborts"] == 0)
    result.notes.append(
        f"seed={seed} names={names} resolutions={resolutions} "
        f"zipf_s={_SKEW} rate={_RATE}/t service={_SERVICE} "
        f"pool={_POOL} idle_base={idle_base:.3f} "
        f"head_share(100)={sampler.head_share(100):.3f}")
    result.figures = {
        "single|p99": single["p99"],
        "sharded|p99": shard["p99"],
        "sharded|p99_steady": shard["p99_steady"],
        "p99_ratio": (single["p99"] / shard["p99"]
                      if shard["p99"] else float("inf")),
        "splits": float(shard["splits"]),
        "final_shards": float(shard["shards"]),
        "migration_messages": float(shard["migration_messages"]),
    }
    # Instrumented replay at reduced scale: captures shard/migration
    # spans + counters for the JSON record (and the inspect tooling)
    # without instrumenting the timed runs above.  The coherence
    # auditor rides along: its per-shard staleness histograms land in
    # the same metrics snapshot, and its summary is the measured
    # ground truth that no split or migration ever served a stale
    # binding — placement changes must be coherence-invisible.
    obs = Instrumentation(max_spans=4096,
                          auditor=CoherenceAuditor())
    replay = _deploy(seed, min(names, 20_000), sharded=True, obs=obs)
    replay_sampler = ZipfSampler(min(names, 20_000), skew=_SKEW,
                                 rng=random.Random(seed))
    replay.resolver.shard_manager.check_every = 200
    replay.resolver.shard_manager.min_window = 50
    for rank in replay_sampler.sample_many(min(resolutions, 2_000)):
        replay.resolver.resolve(replay.client, replay.context,
                                "/hot/" + replay.namespace.names[rank])
    result.metrics = obs.metrics.snapshot()
    result.metrics["spans_recorded"] = len(obs.tracer)
    result.metrics["spans_dropped"] = obs.tracer.dropped_spans
    result.metrics["replay_splits"] = replay.resolver.shard_splits
    audit = obs.auditor.summary()
    result.audit = {"replay": audit}
    result.check(
        "measured: the audited sharded replay is violation-free — "
        "splits and migrations never surface a stale binding",
        audit["observed"] > 0 and audit["violations"] == 0
        and audit["max_staleness"] == 0.0
        and replay.resolver.shard_splits > 0)
    return result


def run_a10_sharding_suite(seed: int = 0) -> ExperimentResult:
    """A10 (suite scale): hot-shard splitting keeps p99 flat under an
    open-loop Zipf load where single placement saturates.

    Runs at 2·10^5 names / 2·10^4 resolutions so the full experiment
    suite stays quick; the perf harness's ``a10_sharding`` scenario
    (and ``BENCH_7.json``) runs the full 10^6 / 10^5 ROADMAP floor.
    """
    return run_a10_sharding(seed=seed, names=200_000,
                            resolutions=20_000)
