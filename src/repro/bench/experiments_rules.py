"""Experiments E1–E3 and ablation A1: sources of names × resolution
rules (Figures 1 and 2, section 4).

These experiments measure the paper's central matrix: for each source
of names (internal / message / object) and each resolution rule
(R(activity), R(receiver), R(sender), R(object)), what fraction of
name uses stay coherent — and verify the §4 predictions:

* exchanged names: R(sender) ⇒ coherence for **all** names sent;
  R(receiver) ⇒ coherence **only for global** names;
* embedded names: R(object) ⇒ coherence among all activities;
  R(activity) ⇒ only global names;
* internal names: the rule can only be R(activity) — global names are
  essential.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult
from repro.closure.meta import NameSource
from repro.closure.rules import (
    PerSourceRule,
    RActivity,
    RObject,
    RReceiver,
    RSender,
    ResolutionRule,
)
from repro.coherence.auditor import CoherenceAuditor
from repro.workloads.generators import (
    embedded_events,
    exchange_events,
    internal_events,
    mixed_workload,
)
from repro.workloads.scenarios import RuleScenario, build_rule_scenario

__all__ = ["run_e1_sources", "run_e2_exchange_rules",
           "run_e3_embedded_rules", "run_a1_rule_ablation"]

_EVENTS = 600


def _rate(scenario: RuleScenario, rule: ResolutionRule, events) -> float:
    auditor = CoherenceAuditor(rule)
    auditor.observe_all(events)
    return auditor.summary.coherence_rate()


def run_e1_sources(seed: int = 0, count: int = _EVENTS) -> ExperimentResult:
    """E1 (Figure 1): the three sources of names occur and are audited
    under a per-source rule table."""
    scenario = build_rule_scenario(seed=seed)
    rng = random.Random(seed + 1)
    rule = PerSourceRule({
        NameSource.INTERNAL: RActivity(scenario.activity_registry),
        NameSource.MESSAGE: RSender(scenario.activity_registry),
        NameSource.OBJECT: RObject(scenario.object_registry),
    })
    events = mixed_workload(scenario.activity_registry,
                            scenario.activities, scenario.all_names,
                            scenario.embedded_uses, rng, count)
    auditor = CoherenceAuditor(rule)
    auditor.observe_all(events)
    summary = auditor.summary

    result = ExperimentResult(
        exp_id="E1", title="Three sources of names (Figure 1)",
        headers=["source", "events", "coherence rate"])
    total_by_source = 0
    for source in NameSource:
        events_of_source = summary.source_total(source)
        total_by_source += events_of_source
        result.rows.append([str(source), events_of_source,
                            summary.coherence_rate(source)])
    result.check("all three sources occur",
                 all(summary.source_total(s) > 0 for s in NameSource))
    result.check("source classification is total and disjoint",
                 total_by_source == summary.total == count)
    result.check("per-source rule table keeps exchanged names coherent",
                 summary.coherence_rate(NameSource.MESSAGE) == 1.0)
    result.check("per-source rule table keeps embedded names coherent",
                 summary.coherence_rate(NameSource.OBJECT) == 1.0)
    result.notes.append(f"seed={seed} events={count}")
    result.figures["overall_rate"] = summary.coherence_rate()
    return result


def run_e2_exchange_rules(seed: int = 0,
                          count: int = _EVENTS) -> ExperimentResult:
    """E2 (Figure 2a): names exchanged in messages, R(sender) vs
    R(receiver), split by global vs non-global names."""
    scenario = build_rule_scenario(seed=seed)
    rng = random.Random(seed + 2)
    registry = scenario.activity_registry
    events_global = exchange_events(registry, scenario.activities,
                                    scenario.global_names, rng, count // 2)
    events_homonym = exchange_events(registry, scenario.activities,
                                     scenario.homonym_names, rng, count // 2)

    result = ExperimentResult(
        exp_id="E2",
        title="Exchanged names vs resolution rule (Figure 2a)",
        headers=["rule", "name kind", "events", "coherence rate"])
    rates = {}
    for rule_label, rule in (("R(sender)", RSender(registry)),
                             ("R(receiver)", RReceiver(registry))):
        for kind, events in (("global", events_global),
                             ("non-global", events_homonym)):
            rate = _rate(scenario, rule, events)
            rates[(rule_label, kind)] = rate
            result.rows.append([rule_label, kind, len(events), rate])

    result.check("R(sender): coherence for ALL names sent",
                 rates[("R(sender)", "global")] == 1.0
                 and rates[("R(sender)", "non-global")] == 1.0)
    result.check("R(receiver): coherence for global names",
                 rates[("R(receiver)", "global")] == 1.0)
    result.check("R(receiver): NO coherence for non-global names",
                 rates[("R(receiver)", "non-global")] == 0.0)
    result.notes.append(f"seed={seed} events={count}")
    result.figures.update(
        {f"{r}|{k}": v for (r, k), v in rates.items()})
    return result


def run_e3_embedded_rules(seed: int = 0,
                          count: int = _EVENTS) -> ExperimentResult:
    """E3 (Figure 2b): names obtained from objects, R(object) vs
    R(activity)."""
    scenario = build_rule_scenario(seed=seed)
    rng = random.Random(seed + 3)
    events = embedded_events(scenario.activities, scenario.embedded_uses,
                             rng, count)
    global_set = set(scenario.global_names)
    events_global = [e for e in events if e.name in global_set]
    events_homonym = [e for e in events if e.name not in global_set]

    result = ExperimentResult(
        exp_id="E3",
        title="Embedded names vs resolution rule (Figure 2b)",
        headers=["rule", "name kind", "events", "coherence rate"])
    rates = {}
    for rule_label, rule in (
            ("R(object)", RObject(scenario.object_registry)),
            ("R(activity)", RActivity(scenario.activity_registry))):
        for kind, kind_events in (("global", events_global),
                                  ("non-global", events_homonym)):
            rate = _rate(scenario, rule, kind_events)
            rates[(rule_label, kind)] = rate
            result.rows.append([rule_label, kind, len(kind_events), rate])

    result.check("R(object): coherence among all activities for "
                 "embedded names",
                 rates[("R(object)", "global")] == 1.0
                 and rates[("R(object)", "non-global")] == 1.0)
    result.check("R(activity): coherence only for global names",
                 rates[("R(activity)", "global")] == 1.0
                 and rates[("R(activity)", "non-global")] < 1.0)
    result.notes.append(f"seed={seed} events={count}")
    result.figures.update(
        {f"{r}|{k}": v for (r, k), v in rates.items()})
    return result


def run_a1_rule_ablation(seed: int = 0,
                         count: int = _EVENTS) -> ExperimentResult:
    """A1: the full §4 rule × source grid, checked against each rule's
    own prediction ("all", "global-only", "n/a")."""
    scenario = build_rule_scenario(seed=seed)
    rng = random.Random(seed + 4)
    registry = scenario.activity_registry
    events_by_source = {
        NameSource.INTERNAL: internal_events(
            registry, scenario.activities, scenario.all_names, rng, count),
        NameSource.MESSAGE: exchange_events(
            registry, scenario.activities, scenario.all_names, rng, count),
        NameSource.OBJECT: embedded_events(
            scenario.activities, scenario.embedded_uses, rng, count),
    }
    rules: list[tuple[str, ResolutionRule]] = [
        ("R(activity)", RActivity(registry)),
        ("R(sender)", RSender(registry)),
        ("R(object)", RObject(scenario.object_registry)),
    ]
    result = ExperimentResult(
        exp_id="A1", title="Rule x source ablation grid (section 4)",
        headers=["rule", "source", "prediction", "coherence rate",
                 "applicable rate"])
    for rule_label, rule in rules:
        for source, events in events_by_source.items():
            auditor = CoherenceAuditor(rule)
            auditor.observe_all(events)
            summary = auditor.summary
            from repro.coherence.auditor import Verdict

            applicable = 1.0 - summary.rate(Verdict.INAPPLICABLE, source)
            rate = summary.coherence_rate(source)
            prediction = rule.coherence_prediction(source)
            result.rows.append([rule_label, str(source), prediction,
                                rate, applicable])
            claim = f"{rule_label} on {source}: prediction '{prediction}'"
            if prediction == "all":
                result.check(claim, rate == 1.0 and applicable == 1.0)
            elif prediction == "global-only":
                # Global names all succeed; homonyms all fail; the
                # measured rate must sit strictly between when both
                # kinds were drawn.
                result.check(claim, 0.0 < rate < 1.0)
            else:  # "n/a" — rule cannot select a context for source
                result.check(claim, applicable == 0.0)
    result.notes.append(f"seed={seed} events-per-cell={count}")
    return result
