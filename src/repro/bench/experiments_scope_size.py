"""Ablation A6: enlarging the scope (§7's final advice).

"If the interaction across scope boundaries is high, then mapping
names can become a hindrance and enlarging the scope may be
necessary."  A6 quantifies that advice: the *same* population of users
and services is arranged two ways —

* **federated**: two organizations, each sharing its own ``/users``
  and ``/services``; cross-org interaction requires prefix mapping;
* **enlarged**: one organization-pair-wide scope sharing a single
  merged ``/users`` / ``/services``.

An identical exchange workload is then measured for R(receiver)
coherence and human-mapping burden.  Expected shape: enlarging the
scope removes both the burden and the exchanged-name incoherence —
at the price the paper spends its whole introduction on (a bigger
shared name space that every participant must agree on).
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult
from repro.closure.rules import RReceiver
from repro.coherence.auditor import CoherenceAuditor
from repro.federation.mapping import mapping_burden
from repro.federation.scopes import FederationEnvironment
from repro.model.names import CompoundName

__all__ = ["run_a6_scope_enlargement"]

_ORGS = ("acme", "globex")
_USERS_PER_ORG = 4
_ACTIVITIES_PER_ORG = 3


def _user_names(org: str) -> list[str]:
    return [f"{org}-u{i}" for i in range(_USERS_PER_ORG)]


def _build_federated():
    env = FederationEnvironment()
    activities = []
    probes: list[CompoundName] = []
    for org_label in _ORGS:
        scope = env.add_scope(org_label)
        users = scope.publish("users")
        for user in _user_names(org_label):
            users.mkfile(f"{user}/plan")
            probes.append(CompoundName.parse(f"/users/{user}/plan"))
        for index in range(_ACTIVITIES_PER_ORG):
            activities.append(env.spawn(scope,
                                        f"{org_label}-p{index}"))
    return env, activities, probes


def _build_enlarged():
    env = FederationEnvironment()
    merged = env.add_scope("consortium")
    users = merged.publish("users")
    activities = []
    probes: list[CompoundName] = []
    for org_label in _ORGS:
        for user in _user_names(org_label):
            users.mkfile(f"{user}/plan")
            probes.append(CompoundName.parse(f"/users/{user}/plan"))
        for index in range(_ACTIVITIES_PER_ORG):
            # Same population; now every activity lives in one scope.
            activities.append(env.spawn(merged,
                                        f"{org_label}-p{index}"))
    return env, activities, probes


def _measure(env, activities, probes, rng, count):
    from repro.workloads.generators import exchange_events

    events = exchange_events(env.registry, activities, probes, rng,
                             count)
    crossing = [e for e in events
                if env.scope_of(e.sender).chain()[-1]
                is not env.scope_of(e.resolver).chain()[-1]]
    burden = mapping_burden(crossing, len(events))
    rate = (CoherenceAuditor(RReceiver(env.registry))
            .observe_all(events).summary.coherence_rate())
    return rate, burden["burden"]


def run_a6_scope_enlargement(seed: int = 0,
                             count: int = 400) -> ExperimentResult:
    """A6: federated scopes vs one enlarged scope, same workload."""
    rng = random.Random(seed)
    fed_env, fed_acts, fed_probes = _build_federated()
    big_env, big_acts, big_probes = _build_enlarged()
    fed_rate, fed_burden = _measure(fed_env, fed_acts, fed_probes,
                                    rng, count)
    big_rate, big_burden = _measure(big_env, big_acts, big_probes,
                                    rng, count)

    result = ExperimentResult(
        exp_id="A6",
        title="Scope enlargement (section 7: 'enlarging the scope may "
              "be necessary')",
        headers=["configuration", "R(receiver) coherence",
                 "mapping burden", "shared spaces to govern"])
    result.rows.append(["two federated orgs", fed_rate, fed_burden,
                        len(_ORGS)])
    result.rows.append(["one enlarged scope", big_rate, big_burden, 1])

    result.check("high cross-boundary interaction makes the federated "
                 "configuration incoherent under R(receiver)",
                 fed_rate < 1.0)
    result.check("federated interaction carries a mapping burden",
                 fed_burden > 0.0)
    result.check("enlarging the scope removes the incoherence",
                 big_rate == 1.0)
    result.check("enlarging the scope removes the mapping burden",
                 big_burden == 0.0)
    result.notes.append(f"seed={seed} events={count} "
                        f"({_USERS_PER_ORG} users x {len(_ORGS)} orgs, "
                        f"{_ACTIVITIES_PER_ORG} activities each)")
    result.figures = {"federated_rate": fed_rate,
                      "enlarged_rate": big_rate,
                      "federated_burden": fed_burden}
    return result
