"""Experiment harness: structured, printable, assertable results.

Every experiment (one per paper figure / analysis section; see
DESIGN.md §4) is a function returning an :class:`ExperimentResult`:
a titled table of measured rows plus named *shape checks* — boolean
assertions encoding the paper's qualitative claims ("R(sender) gives
coherence for all sent names", "only /vice names are coherent across
clients", ...).  Benches print the table and assert every check;
EXPERIMENTS.md records the claim-vs-measured correspondence.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.coherence.report import format_table
from repro.obs.export import json_safe

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    #: Named shape checks: claim → did the measurement satisfy it.
    checks: dict[str, bool] = field(default_factory=dict)
    #: Free-form notes (parameters, seeds) printed under the table.
    notes: list[str] = field(default_factory=list)
    #: Machine-readable key figures for cross-experiment comparison.
    figures: dict[str, float] = field(default_factory=dict)
    #: Optional `repro.obs` metrics snapshot captured during the run.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Optional measured-staleness summary from the coherence auditor
    #: (:meth:`repro.obs.audit.CoherenceAuditor.summary` digests) —
    #: ground truth beside the rows' claimed numbers.
    audit: dict[str, Any] = field(default_factory=dict)

    def check(self, claim: str, ok: bool) -> bool:
        """Record a named shape check; returns *ok* for chaining."""
        self.checks[claim] = bool(ok)
        return bool(ok)

    def all_checks_pass(self) -> bool:
        """True if every recorded shape check held."""
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        """Names of failed checks (empty when the shape reproduced)."""
        return [claim for claim, ok in self.checks.items() if not ok]

    def table(self) -> str:
        """The experiment's printable table."""
        return format_table(self.headers, self.rows,
                            title=f"{self.exp_id}: {self.title}")

    def to_dict(self) -> dict:
        """A JSON-serialisable record of the run (rows stringified).

        Machine-readable counterpart of :meth:`render`; the
        ``tools/run_all_json.py`` script aggregates these across the
        suite so downstream analysis never has to scrape tables.
        """
        record = {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[cell if isinstance(cell, (int, float, bool))
                      else str(cell) for cell in row]
                     for row in self.rows],
            "checks": dict(self.checks),
            "all_checks_pass": self.all_checks_pass(),
            "notes": list(self.notes),
            "figures": {str(k): v for k, v in self.figures.items()},
            "metrics": json_safe(self.metrics),
        }
        # Only audited experiments carry the key: the schema of every
        # unaudited experiment (and its pinned golden digest) is
        # untouched.
        if self.audit:
            record["audit"] = json_safe(self.audit)
        return record

    def render(self) -> str:
        """Table + check list + notes, ready to print."""
        lines = [self.table(), ""]
        for claim, ok in self.checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {claim}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        status = "ok" if self.all_checks_pass() else "SHAPE MISMATCH"
        return f"<{self.exp_id} {len(self.rows)} rows, {status}>"
