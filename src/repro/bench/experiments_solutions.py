"""Experiments E9–E11: the paper's section-6 solutions.

* E9 — partially qualified identifiers with the R(sender) mapping
  (§6-I Example 1): exchange coherence and survival of connections
  under machine/network renumbering, against fully-qualified and
  unmapped baselines.
* E10 — embedded names under Algol-scope R(file) (§6-I Example 2,
  Figure 6): invariance under relocation, copying, simultaneous
  attachment and combination of structured objects.
* E11 — per-process namespaces and the remote-execution facility
  (§6-II): coherence for names passed parent → remote child without
  global names.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult
from repro.closure.rules import RActivity
from repro.coherence.definitions import is_global_name
from repro.embedded.documents import assembly_equal, flatten
from repro.embedded.objects import StructuredContent, structured_object
from repro.embedded.relocate import (
    copy_structured_subtree,
    move_subtree,
    multi_attach,
)
from repro.embedded.scoping import scope_rule
from repro.model.entities import Activity
from repro.model.state import GlobalState
from repro.namespaces.perprocess import PerProcessSystem
from repro.namespaces.tree import NamingTree
from repro.pqid.mapping import fully_qualify, qualify
from repro.pqid.relocation import ReferenceTable
from repro.pqid.transport import PidPolicy, exchange_outcome, send_pid
from repro.remote.execution import evaluate_remote_exec
from repro.sim.failures import FailureInjector
from repro.workloads.scenarios import build_pqid_population

__all__ = ["run_e9_pqid", "run_e10_algol_scope", "run_e11_perprocess"]


def run_e9_pqid(seed: int = 0, exchanges: int = 120,
                references: int = 150) -> ExperimentResult:
    """E9: partially qualified identifiers (§6-I Example 1)."""
    rng = random.Random(seed)
    population = build_pqid_population(seed=seed)
    simulator = population.simulator

    result = ExperimentResult(
        exp_id="E9",
        title="Partially qualified identifiers (section 6, Example 1)",
        headers=["phase", "policy", "population", "rate"])

    # Phase 1: pid exchange under the three wire policies.
    rates: dict[PidPolicy, float] = {}
    for policy in (PidPolicy.MAPPED, PidPolicy.RAW, PidPolicy.FULL):
        done = []
        for _ in range(exchanges):
            sender, receiver = population.random_pair(rng)
            target = rng.choice(population.processes)
            done.append(send_pid(sender, receiver, target, policy))
        simulator.run()
        coherent_count = sum(
            1 for ex in done if exchange_outcome(ex) == "coherent")
        rates[policy] = coherent_count / len(done)
        result.rows.append(["exchange", str(policy), "all pairs",
                            rates[policy]])
    result.check("R(sender) mapping: coherence for all exchanged pids",
                 rates[PidPolicy.MAPPED] == 1.0)
    result.check("unmapped (R(receiver)) exchange is incoherent for "
                 "non-global pids", rates[PidPolicy.RAW] < 1.0)
    result.check("fully qualified pids work while addresses are stable",
                 rates[PidPolicy.FULL] == 1.0)

    # Phase 2: long-lived references, partially vs fully qualified.
    tables = {"pqid": ReferenceTable(), "full": ReferenceTable()}
    for _ in range(references):
        holder, target = population.random_pair(rng)
        if holder.machine is target.machine:
            note = "intra-machine"
        elif holder.same_network(target):
            note = "intra-network"
        else:
            note = "inter-network"
        tables["pqid"].add(holder, qualify(target, holder), target, note)
        tables["full"].add(holder, fully_qualify(target), target, note)

    # Phase 3: renumber one machine, then one network.
    injector = FailureInjector(simulator)
    renamed_machine = population.machines[0]
    injector.renumber_machine(renamed_machine, 90)

    def survival(kind: str, note: str) -> float:
        return tables[kind].subset(note).survival()

    for kind in ("pqid", "full"):
        for note in ("intra-machine", "intra-network", "inter-network"):
            result.rows.append([f"after machine renumber", kind, note,
                                survival(kind, note)])
    result.check("pids of local processes within the renamed machine "
                 "remain valid (intra-machine survival = 1)",
                 survival("pqid", "intra-machine") == 1.0)
    result.check("fully qualified pids referencing the renamed machine "
                 "break",
                 survival("full", "intra-machine") < 1.0)

    # Phase 3b: fresh references (taken after the machine renumber,
    # so they reflect current addresses), then renumber a network.
    # The §6 claim is about the renumbering in isolation: connections
    # inside the renamed network survive with partially qualified
    # pids and break with fully qualified ones.
    fresh = {"pqid": ReferenceTable(), "full": ReferenceTable()}
    renamed_network = population.networks[0]
    inside = [p for p in population.processes
              if p.machine.network is renamed_network]
    for _ in range(references // 2):
        holder, target = rng.sample(inside, 2)
        note = ("intra-machine" if holder.machine is target.machine
                else "intra-network")
        fresh["pqid"].add(holder, qualify(target, holder), target, note)
        fresh["full"].add(holder, fully_qualify(target), target, note)
    injector.renumber_network(renamed_network, 95)

    for kind in ("pqid", "full"):
        for note in ("intra-machine", "intra-network"):
            result.rows.append([f"after network renumber (fresh refs "
                                f"inside renamed net)", kind, note,
                                fresh[kind].subset(note).survival()])
    result.check("connections within the renamed network survive with "
                 "partially qualified pids",
                 fresh["pqid"].survival() == 1.0)
    result.check("fully qualified pids break under network renumbering",
                 fresh["full"].survival() < 1.0)
    stale_pqid = survival("pqid", "intra-machine")
    result.rows.append(["after both renumberings", "pqid",
                        "intra-machine (original refs)", stale_pqid])
    result.check("original intra-machine pqid connections survive both "
                 "renumberings", stale_pqid == 1.0)
    result.notes.append(
        f"seed={seed} exchanges={exchanges} references={references}")
    result.figures["mapped_rate"] = rates[PidPolicy.MAPPED]
    result.figures["raw_rate"] = rates[PidPolicy.RAW]
    return result


def run_e10_algol_scope(seed: int = 0) -> ExperimentResult:
    """E10 (Figure 6): embedded file names under Algol scope rules."""
    sigma = GlobalState()
    tree = NamingTree("env", sigma=sigma, parent_links=True)
    rule = scope_rule(sigma)
    readers = [Activity(f"reader{i}") for i in range(3)]
    for reader in readers:
        sigma.add(reader)

    # Figure 6's shape: subtree `proj` with a binding for `a` at an
    # ancestor (n'), an embedded name a/p in node n, denoting n''.
    part = tree.mkfile("proj/a/p", label="component")
    part.state = "COMPONENT-TEXT"
    document = tree.add("proj/src/n", structured_object(
        "n", StructuredContent().text("[").include("a/p").text("]"),
        sigma=sigma))
    expected = "[COMPONENT-TEXT]"

    result = ExperimentResult(
        exp_id="E10",
        title="Embedded names, Algol scope rules (Figure 6)",
        headers=["operation", "assembly stable", "same for all readers"])

    def measure(op: str) -> tuple[bool, bool]:
        stable = flatten(document, readers[0], rule) == expected
        same = assembly_equal(document, readers, rule, reference=expected)
        result.rows.append([op, stable, same])
        return stable, same

    baseline = measure("baseline")
    result.check("the embedded name denotes n'' via the closest "
                 "ancestor binding", all(baseline))

    proj = move_subtree(tree, "proj", "archive/2026/proj")
    moved = measure("relocate subtree")
    result.check("relocation does not change the meaning of embedded "
                 "names", all(moved))

    other = NamingTree("other-site", sigma=sigma, parent_links=True)
    multi_attach(proj, [(other, "mnt/a"), (other, "mnt/b")])
    attached = measure("simultaneous attach (2 places)")
    result.check("the subtree can be simultaneously attached in "
                 "different parts of the environment", all(attached))

    copy_structured_subtree(tree, "archive/2026/proj", "copies/proj")
    copied_doc = tree.lookup("copies/proj/src/n")
    copy_ok = (copied_doc is not document
               and flatten(copied_doc, readers[1], rule) == expected)
    result.rows.append(["copy subtree", copy_ok, copy_ok])
    result.check("copying does not change the meaning of embedded names",
                 copy_ok)

    # Combine two structured objects with CLASHING internal names.
    tree2 = NamingTree("pkg", sigma=sigma, parent_links=True)
    for package in ("alpha", "beta"):
        piece = tree2.mkfile(f"{package}/a/p", label=f"{package}-piece")
        piece.state = f"{package.upper()}-DATA"
        tree2.add(f"{package}/main", structured_object(
            f"{package}-main",
            StructuredContent().include("a/p"), sigma=sigma))
    alpha_text = flatten(tree2.lookup("alpha/main"), readers[0], rule)
    beta_text = flatten(tree2.lookup("beta/main"), readers[0], rule)
    combine_ok = (alpha_text == "ALPHA-DATA" and beta_text == "BETA-DATA")
    result.rows.append(["combine structured objects (clashing names)",
                        combine_ok, combine_ok])
    result.check("several structured objects can be combined without "
                 "name conflicts", combine_ok)

    # Contrast: under R(activity) the embedded name breaks for readers
    # whose context lacks an `a` binding.
    from repro.closure.meta import ContextRegistry
    from repro.model.context import Context

    activity_registry = ContextRegistry(
        default=Context(label="empty"), label="R(a)")
    broken = flatten(document, readers[0],
                     RActivity(activity_registry))
    result.rows.append(["R(activity) contrast renders unresolved",
                        "⊥" in broken, "-"])
    result.check("under R(activity) the embedded name does not resolve "
                 "for an unrelated activity", "⊥" in broken)
    return result


def run_e11_perprocess(seed: int = 0) -> ExperimentResult:
    """E11 (§6-II): per-process namespaces and remote execution."""
    port = PerProcessSystem()
    for machine in ("workstation", "server", "fileserver"):
        port.add_machine(machine)
    port.machine_tree("workstation").mkfile("src/prog.c")
    port.machine_tree("workstation").mkfile("src/prog.h")
    port.machine_tree("server").mkfile("data/results")
    port.machine_tree("fileserver").mkfile("lib/libc")

    parent = port.spawn("workstation", "make",
                        mounts=[("home", "workstation"),
                                ("lib", "fileserver")])
    arguments = ["/home/src/prog.c", "/home/src/prog.h", "/lib/lib/libc"]

    result = ExperimentResult(
        exp_id="E11",
        title="Per-process naming and remote execution (section 6-II)",
        headers=["variant", "arg coherence", "local access"])

    child = port.remote_spawn(parent, "server", "cc-remote")
    report = evaluate_remote_exec(port.registry, parent, child,
                                  arguments, "namespace import")
    local_ok = port.resolve_for(child, "/local/data/results").is_defined()
    result.rows.append(["import parent namespace",
                        report.coherence_rate, local_ok])
    result.check("coherence for names passed from parent to remote "
                 "child", report.coherence_rate == 1.0)
    result.check("the remote child can access files on its local "
                 "machine too", local_ok)

    bare = port.remote_spawn(parent, "server", "cc-bare",
                             import_namespace=False)
    report_bare = evaluate_remote_exec(port.registry, parent, bare,
                                       arguments, "no import")
    result.rows.append(["machine context only (no import)",
                        report_bare.coherence_rate,
                        port.resolve_for(
                            bare, "/local/data/results").is_defined()])
    result.check("without the per-process import the parameters are "
                 "incoherent", report_bare.coherence_rate < 1.0)

    # "In spite of not having global names": the passed names are not
    # global over the whole population.
    port.spawn("fileserver", "unrelated")
    not_global = not any(
        is_global_name(arg, port.activities(), port.registry)
        for arg in arguments)
    result.rows.append(["arguments are global names", not not_global, "-"])
    result.check("coherence achieved without global names", not_global)

    sibling = port.fork(parent, "make-child")
    report_fork = evaluate_remote_exec(port.registry, parent, sibling,
                                       arguments, "fork")
    result.rows.append(["local fork (mount-table copy)",
                        report_fork.coherence_rate, "-"])
    result.check("fork children inherit the namespace coherently",
                 report_fork.coherence_rate == 1.0)
    return result
