"""Ablation A7 (extension): prefix-cached, batched resolution at scale.

The §6 cost analysis counts remote steps per compound-name resolution;
A4 measures them.  A7 measures what real name services (DNS resolvers,
the AFS/DCE CDS client caches) add on top: *amortization*.  A hot
workload — many resolutions of a few names under a shared remote
prefix — should not re-pay the walk every time.  Two mechanisms are
ablated, separately and together:

* the per-machine **prefix cache** (policy TTL or INVALIDATE), which
  memoizes resolved prefixes ``(context, n1…ni) → directory`` so a
  repeated resolution jumps to the deepest live prefix; and
* the **batch API** :meth:`DistributedResolver.resolve_many`, which
  sorts a batch by shared prefix, dedupes common steps, and coalesces
  same-server queries into one visit.

Expected shape: on a hot-directory workload (1000 resolutions of 50
names under a shared 4-deep remote prefix) the cached batch path pays
≥5× fewer kernel messages than the seed sequential/uncached path, with
semantics preserved in every (style × policy) cell — including a
rebind injected mid-workload, whose effect under TTL is stale only
inside the expiry window and under INVALIDATE is visible immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.bench.harness import ExperimentResult
from repro.model.context import Context, context_object
from repro.model.entities import ObjectEntity
from repro.model.resolution import resolve as local_resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionCost,
    ResolutionStyle,
    check_semantics_preserved,
)
from repro.obs.instrument import Instrumentation
from repro.sim.kernel import Simulator

__all__ = ["run_a7_batch_resolution"]

_PREFIX = ("a", "b", "c", "hot")
_TTL = 200.0


@dataclass
class _Deployment:
    simulator: Simulator
    resolver: DistributedResolver
    client: object
    context: Context
    names: list[str]
    #: the directory holding the binding that the rebind flips
    parent_dir: ObjectEntity
    #: current and alternate hot directories (both pre-placed, so a
    #: rebind does not disturb the placement epoch)
    hot_v1: ObjectEntity
    hot_v2: ObjectEntity


def _deploy(seed: int, policy: CachePolicy, fanout: int,
            obs: Optional[Instrumentation] = None) -> _Deployment:
    """A client machine plus one server machine per prefix level; the
    hot directory holds *fanout* leaves and has a pre-placed alternate
    version (same leaf names, different entities) for rebind tests."""
    simulator = Simulator(seed=seed, obs=obs)
    network = simulator.network("lan")
    client_machine = simulator.machine(network, "client-m")
    servers = [simulator.machine(network, f"server{i}")
               for i in range(len(_PREFIX))]
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("/".join(_PREFIX))
    for index in range(fanout):
        tree.mkfile("/".join(_PREFIX) + f"/f{index}")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    for depth in range(len(_PREFIX)):
        placement.place(tree.directory("/".join(_PREFIX[:depth + 1])),
                        servers[depth])
    hot_v1 = tree.directory("/".join(_PREFIX))
    parent_dir = tree.directory("/".join(_PREFIX[:-1]))
    # The alternate hot directory: same names, fresh entities.
    hot_v2 = context_object("hot-v2")
    simulator.sigma.add(hot_v2)
    for index in range(fanout):
        leaf = ObjectEntity(f"f{index}-v2")
        simulator.sigma.add(leaf)
        hot_v2.state.bind(f"f{index}", leaf)
    placement.place(hot_v2, servers[-1])
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(simulator, placement,
                                   cache_policy=policy, cache_ttl=_TTL)
    names = ["/" + "/".join(_PREFIX) + f"/f{index}"
             for index in range(fanout)]
    return _Deployment(simulator, resolver, client, context, names,
                       parent_dir, hot_v1, hot_v2)


def _run_hot_workload(deployment: _Deployment, resolutions: int,
                      batched: bool, seed: int) -> dict[str, float]:
    """Resolve *resolutions* draws of the hot names; returns totals."""
    rng = random.Random(seed)
    rounds = resolutions // len(deployment.names)
    costs: list[ResolutionCost] = []
    for _ in range(rounds):
        batch = list(deployment.names)
        rng.shuffle(batch)
        if batched:
            costs.extend(cost for _entity, cost in
                         deployment.resolver.resolve_many(
                             deployment.client, deployment.context, batch))
        else:
            for name_ in batch:
                _entity, cost = deployment.resolver.resolve(
                    deployment.client, deployment.context, name_)
                costs.append(cost)
    total = ResolutionCost.merge(costs)
    stats = deployment.resolver.cache_stats()
    hits, misses = stats["hits"], stats["misses"]
    return {
        "kernel_messages": float(deployment.simulator.messages_sent),
        "mean_messages": deployment.simulator.messages_sent
        / (rounds * len(deployment.names)),
        "latency": total.latency,
        "cached_steps": float(total.cached_steps),
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        # Deterministic work proxy (wall clock would be noisy): every
        # kernel event the workload drove, including the trace's
        # send/deliver pairs.
        "kernel_events": float(len(deployment.simulator.trace)),
    }


def _semantics_cell(seed: int, style: ResolutionStyle,
                    policy: CachePolicy, fanout: int) -> dict[str, bool]:
    """One (style × policy) cell: warm the caches, inject a rebind
    mid-workload, and check semantics at the points where the policy
    promises coherence (immediately for NONE/INVALIDATE; after the
    expiry window for TTL)."""
    deployment = _deploy(seed, policy, fanout)
    probes = deployment.names[:8] + ["/a/b/nope", "missing", "/"]
    # Warm-up: two batches.
    for _ in range(2):
        deployment.resolver.resolve_many(deployment.client,
                                         deployment.context,
                                         deployment.names, style)
    deployment.resolver.rebind(deployment.parent_dir, _PREFIX[-1],
                               deployment.hot_v2)
    stale_inside_window = False
    if policy is CachePolicy.TTL:
        # Inside the window the cached prefix may still serve hot-v1.
        entity, _cost = deployment.resolver.resolve(
            deployment.client, deployment.context, probes[0], style)
        stale_inside_window = entity is not local_resolve(
            deployment.context, probes[0])
        deployment.simulator.schedule(_TTL + 1.0, lambda: None,
                                      note="ttl-window")
        deployment.simulator.run()
    coherent_after = all(
        check_semantics_preserved(deployment.resolver, deployment.client,
                                  deployment.context, name_, style)
        for name_ in probes)
    batch_results = deployment.resolver.resolve_many(
        deployment.client, deployment.context, probes, style)
    batch_coherent = all(
        entity is local_resolve(deployment.context, name_)
        for name_, (entity, _cost) in zip(probes, batch_results))
    return {
        "coherent": coherent_after and batch_coherent,
        "stale_inside_window": stale_inside_window,
        "paid_invalidations":
            deployment.resolver.invalidation_messages > 0,
    }


def run_a7_batch_resolution(seed: int = 0, resolutions: int = 1000,
                            fanout: int = 50) -> ExperimentResult:
    """A7: amortized cost of prefix caching + batched resolution."""
    configs = [
        ("sequential / no cache (seed path)", False, CachePolicy.NONE),
        ("sequential / ttl cache", False, CachePolicy.TTL),
        ("batch / no cache", True, CachePolicy.NONE),
        ("batch / ttl cache", True, CachePolicy.TTL),
        ("batch / invalidate cache", True, CachePolicy.INVALIDATE),
    ]
    measurements = {}
    for label, batched, policy in configs:
        deployment = _deploy(seed, policy, fanout)
        measurements[label] = _run_hot_workload(deployment, resolutions,
                                                batched, seed)

    baseline = measurements[configs[0][0]]
    result = ExperimentResult(
        exp_id="A7",
        title="Prefix-cached, batched resolution (hot-directory workload)",
        headers=["configuration", "kernel msgs", "msgs / resolution",
                 "virtual latency", "cache hit rate", "speedup ×"])
    for label, _batched, _policy in configs:
        m = measurements[label]
        speedup = (baseline["kernel_messages"] / m["kernel_messages"]
                   if m["kernel_messages"] else float("inf"))
        result.rows.append([label, int(m["kernel_messages"]),
                            m["mean_messages"], m["latency"],
                            m["hit_rate"], speedup])

    cells = {(style, policy): _semantics_cell(seed, style, policy,
                                              fanout=8)
             for style in ResolutionStyle for policy in CachePolicy}

    batch_ttl = measurements["batch / ttl cache"]
    batch_none = measurements["batch / no cache"]
    seq_ttl = measurements["sequential / ttl cache"]
    result.check("cached batch path pays ≥5× fewer kernel messages "
                 "than the seed path",
                 baseline["kernel_messages"]
                 >= 5 * batch_ttl["kernel_messages"])
    result.check("batch dedup alone (no cache) already amortizes the "
                 "shared prefix",
                 baseline["kernel_messages"]
                 >= 5 * batch_none["kernel_messages"])
    result.check("the prefix cache alone amortizes repeat walks",
                 baseline["kernel_messages"]
                 > seq_ttl["kernel_messages"])
    result.check("the hot prefix is served from cache after warm-up",
                 batch_ttl["hit_rate"] > 0.5)
    result.check("fewer messages is fewer kernel events end to end",
                 batch_ttl["kernel_events"] < baseline["kernel_events"])
    result.check("semantics preserved in every style × policy cell "
                 "with a mid-workload rebind",
                 all(cell["coherent"] for cell in cells.values()))
    result.check("TTL's incoherence stays inside its expiry window",
                 all(cell["stale_inside_window"]
                     for (style, policy), cell in cells.items()
                     if policy is CachePolicy.TTL))
    result.check("INVALIDATE pays for its coherence in messages",
                 all(cell["paid_invalidations"]
                     for (style, policy), cell in cells.items()
                     if policy is CachePolicy.INVALIDATE))
    result.notes.append(
        f"seed={seed} resolutions={resolutions} fanout={fanout} "
        f"prefix depth={len(_PREFIX)} ttl={_TTL}")
    # One instrumented replay of the headline config captures a
    # `repro.obs` snapshot for the JSON record; the timed measurements
    # above stay un-instrumented so their figures are comparable.
    obs = Instrumentation(max_spans=4096)
    instrumented = _deploy(seed, CachePolicy.TTL, fanout, obs=obs)
    _run_hot_workload(instrumented, min(resolutions, 200), True, seed)
    result.metrics = obs.metrics.snapshot()
    result.metrics["spans_recorded"] = len(obs.tracer)
    result.metrics["spans_dropped"] = obs.tracer.dropped_spans
    result.figures = {
        "seed|messages": baseline["kernel_messages"],
        "batch_ttl|messages": batch_ttl["kernel_messages"],
        "speedup": (baseline["kernel_messages"]
                    / batch_ttl["kernel_messages"]
                    if batch_ttl["kernel_messages"] else float("inf")),
    }
    return result
