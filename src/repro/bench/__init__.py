"""The experiment suite: one runnable experiment per paper figure /
analysis section (see DESIGN.md §4 for the index).

Each ``run_*`` function builds its scenario, measures it, and returns
an :class:`~repro.bench.harness.ExperimentResult` whose shape checks
encode the paper's qualitative claims.  ``ALL_EXPERIMENTS`` maps
experiment ids to runners; :func:`run_all` executes the full suite.
"""

from collections.abc import Callable

from repro.bench.harness import ExperimentResult
from repro.bench.experiments_rules import (
    run_a1_rule_ablation,
    run_e1_sources,
    run_e2_exchange_rules,
    run_e3_embedded_rules,
)
from repro.bench.experiments_schemes import (
    run_a2_scheme_grid,
    run_e4_unix,
    run_e5_newcastle,
    run_e6_shared_graph,
    run_e7_dce,
    run_e8_crosslinks,
)
from repro.bench.experiments_solutions import (
    run_e10_algol_scope,
    run_e11_perprocess,
    run_e9_pqid,
)
from repro.bench.experiments_availability import run_a8_availability
from repro.bench.experiments_batch import run_a7_batch_resolution
from repro.bench.experiments_boundary import run_a3_boundary_mapping
from repro.bench.experiments_cache import run_a5_cache_coherence
from repro.bench.experiments_cost import run_a4_resolution_cost
from repro.bench.experiments_federation import run_e12_federation
from repro.bench.experiments_leases import run_a9_leases
from repro.bench.experiments_scope_size import run_a6_scope_enlargement
from repro.bench.experiments_shard_faults import (
    run_a11_shard_faults,
    run_a11_shard_faults_suite,
)
from repro.bench.experiments_sharding import (
    run_a10_sharding,
    run_a10_sharding_suite,
)

#: Experiment id → runner, in paper order.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "E1": run_e1_sources,
    "E2": run_e2_exchange_rules,
    "E3": run_e3_embedded_rules,
    "E4": run_e4_unix,
    "E5": run_e5_newcastle,
    "E6": run_e6_shared_graph,
    "E7": run_e7_dce,
    "E8": run_e8_crosslinks,
    "E9": run_e9_pqid,
    "E10": run_e10_algol_scope,
    "E11": run_e11_perprocess,
    "E12": run_e12_federation,
    "A1": run_a1_rule_ablation,
    "A2": run_a2_scheme_grid,
    "A3": run_a3_boundary_mapping,
    "A4": run_a4_resolution_cost,
    "A5": run_a5_cache_coherence,
    "A6": run_a6_scope_enlargement,
    "A7": run_a7_batch_resolution,
    "A8": run_a8_availability,
    "A9": run_a9_leases,
    "A10": run_a10_sharding_suite,
    "A11": run_a11_shard_faults_suite,
}


def run_all(seed: int = 0) -> dict[str, ExperimentResult]:
    """Run every experiment; returns id → result, in paper order."""
    return {exp_id: runner(seed=seed)
            for exp_id, runner in ALL_EXPERIMENTS.items()}


__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "run_a1_rule_ablation",
    "run_a2_scheme_grid",
    "run_a3_boundary_mapping",
    "run_a4_resolution_cost",
    "run_a5_cache_coherence",
    "run_a6_scope_enlargement",
    "run_a7_batch_resolution",
    "run_a8_availability",
    "run_a9_leases",
    "run_a10_sharding",
    "run_a10_sharding_suite",
    "run_a11_shard_faults",
    "run_a11_shard_faults_suite",
    "run_all",
    "run_e10_algol_scope",
    "run_e11_perprocess",
    "run_e12_federation",
    "run_e1_sources",
    "run_e2_exchange_rules",
    "run_e3_embedded_rules",
    "run_e4_unix",
    "run_e5_newcastle",
    "run_e6_shared_graph",
    "run_e7_dce",
    "run_e8_crosslinks",
    "run_e9_pqid",
]
