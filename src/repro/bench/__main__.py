"""Command-line experiment runner.

Usage::

    python -m repro.bench                 # run everything, print tables
    python -m repro.bench E2 E9 A1        # a subset
    python -m repro.bench --seed 7 --list

Exit status is nonzero if any shape check fails, so the module doubles
as a reproduction smoke test in CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the paper-reproduction experiment suite.")
    parser.add_argument("experiments", nargs="*", metavar="ID",
                        help="experiment ids (default: all); see --list")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, runner in ALL_EXPERIMENTS.items():
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:4} {doc}")
        return 0

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [e for e in selected if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)} "
                     f"(use --list)")

    failures = []
    for exp_id in selected:
        result = ALL_EXPERIMENTS[exp_id](seed=args.seed)
        print(result.render())
        print()
        if not result.all_checks_pass():
            failures.append(exp_id)

    if failures:
        print(f"SHAPE MISMATCH in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"all {len(selected)} experiments reproduced "
          f"(seed={args.seed})")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # output piped into head/less and closed

