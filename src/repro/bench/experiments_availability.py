"""Ablation A8 (robustness): name-service availability under faults.

The paper's weak-coherence notion (§3) and the renumbering example
(§6 Example 1) both presume a name service that keeps answering while
the environment misbehaves.  A8 measures exactly that: a fixed
workload of resolutions runs across a scripted fault timeline —
primary crash + restart, a flaky-link window with seeded drops and
latency spikes, and a full client/server partition — and three
resolver configurations are compared:

* **fail-fast baseline** — the seed resolver: single placement, no
  retries; any lost leg fails the resolution;
* **replicated + retry** — the directory is placed on a replica set,
  the walk retries with exponential backoff + seeded jitter, keeps a
  per-server circuit breaker, and fails over to the secondary;
* **replicated + serve-stale** — additionally answers from the
  client's possibly-stale prefix cache when *no* replica is reachable,
  tagging those answers weakly coherent (``cost.weak``).

Expected shape: replication+retry strictly beats the baseline's
success rate (the crash window alone guarantees it — the baseline
fails every resolution while the primary is down; failover serves
them all); serve-stale additionally answers during the partition, and
*every* degraded answer is tagged weak (never silently coherent);
results are deterministic per seed; retries, failovers, circuit
transitions and stale serves are all visible in the `repro.obs`
metrics snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bench.harness import ExperimentResult
from repro.model.context import Context
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionCost,
)
from repro.nameservice.retry import RetryPolicy
from repro.obs.instrument import Instrumentation
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator

__all__ = ["run_a8_availability"]

_FANOUT = 5
_TTL = 40.0
#: Round start times (virtual); one small batch of lookups per round.
_ROUNDS = tuple(float(t) for t in range(2, 240, 10))
#: Fault windows (virtual time), chosen between rounds so every
#: configuration sees identical deterministic disruption phases.
_CRASH_AT, _RESTART_AT = 30.0, 78.0
_FLAKY_AT, _STEADY_AT = 95.0, 118.0
_PARTITION_AT, _HEAL_AT = 130.0, 185.0
_DROP_PROB, _SPIKE = 0.25, 1.5


def _phase(time: float) -> str:
    if _CRASH_AT <= time < _RESTART_AT:
        return "crash"
    if _FLAKY_AT <= time < _STEADY_AT:
        return "flaky"
    if _PARTITION_AT <= time < _HEAL_AT:
        return "partition"
    return "healthy"


@dataclass
class _Outcome:
    time: float      #: actual virtual time the resolution started
    phase: str       #: fault phase in effect at that time
    ok: bool
    weak: bool
    stale_steps: int
    latency: float


def _run_schedule(seed: int, replicated: bool, retry: bool,
                  serve_stale: bool,
                  obs: Optional[Instrumentation] = None) -> dict:
    """One configuration through the full fault timeline."""
    simulator = Simulator(seed=seed, obs=obs)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    for index in range(_FANOUT):
        tree.mkfile(f"svc/f{index}")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    svc = tree.directory("svc")
    if replicated:
        placement.place_replicated(svc, primary, secondary)
    else:
        placement.place(svc, primary)
    client = simulator.spawn(client_machine, "client")
    context: Context = ProcessContext(tree.root)
    resolver = DistributedResolver(
        simulator, placement,
        cache_policy=CachePolicy.TTL, cache_ttl=_TTL,
        retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.3,
                                 max_backoff=2.0) if retry else None,
        serve_stale=serve_stale,
        breaker_threshold=3, breaker_cooldown=10.0)
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    injector.schedule_timeline([
        (_CRASH_AT, "crash", primary),
        (_RESTART_AT, "restart", primary),
        (_FLAKY_AT, "flaky_link", lan, srv, _DROP_PROB, _SPIKE),
        (_STEADY_AT, "steady_link", lan, srv),
        (_PARTITION_AT, "partition", lan, srv),
        (_HEAL_AT, "heal", lan, srv),
    ])
    outcomes: list[_Outcome] = []
    costs: list[ResolutionCost] = []
    for start in _ROUNDS:
        simulator.run(until=start)
        names = [f"/svc/f{(index + int(start)) % _FANOUT}"
                 for index in range(3)]
        for name_ in names:
            # Backoff waits advance the clock, so a round may start
            # later than scheduled — classify each resolution by the
            # fault phase actually in effect when it began.
            began = simulator.clock.now
            entity, cost = resolver.resolve(client, context, name_)
            costs.append(cost)
            outcomes.append(_Outcome(
                time=began, phase=_phase(began),
                ok=entity.is_defined() and not cost.failed,
                weak=cost.weak, stale_steps=cost.stale_steps,
                latency=cost.latency))
    simulator.run()
    total = ResolutionCost.merge(costs)
    latencies = sorted(outcome.latency for outcome in outcomes)
    p99 = latencies[min(len(latencies) - 1,
                        int(0.99 * (len(latencies) - 1)))]
    successes = [outcome for outcome in outcomes if outcome.ok]
    weak_successes = [outcome for outcome in successes if outcome.weak]
    return {
        "outcomes": outcomes,
        "attempted": len(outcomes),
        "succeeded": len(successes),
        "success_rate": len(successes) / len(outcomes),
        "weak_successes": len(weak_successes),
        "weak_fraction": (len(weak_successes) / len(successes)
                          if successes else 0.0),
        "p99_latency": p99,
        "total": total,
        "breaker_transitions": sum(
            breaker.transitions
            for breaker in resolver._breakers.values()),
        "stale_marks_left": placement.stale_count(),
        "signature": tuple((outcome.phase, outcome.ok, outcome.weak)
                           for outcome in outcomes),
    }


def run_a8_availability(seed: int = 0) -> ExperimentResult:
    """A8: availability under crash/flaky-link/partition schedules."""
    configs = [
        ("fail-fast baseline (seed path)",
         dict(replicated=False, retry=False, serve_stale=False)),
        ("replicated + retry/failover",
         dict(replicated=True, retry=True, serve_stale=False)),
        ("replicated + retry + serve-stale",
         dict(replicated=True, retry=True, serve_stale=True)),
    ]
    measurements = {label: _run_schedule(seed, **kwargs)
                    for label, kwargs in configs}
    baseline = measurements[configs[0][0]]
    failover = measurements[configs[1][0]]
    degraded = measurements[configs[2][0]]

    result = ExperimentResult(
        exp_id="A8",
        title="Name-service availability under a fault schedule",
        headers=["configuration", "success rate", "weak fraction",
                 "p99 latency", "retries", "failovers", "messages"])
    for label, _kwargs in configs:
        m = measurements[label]
        result.rows.append([
            label, m["success_rate"], m["weak_fraction"],
            m["p99_latency"], m["total"].retries, m["total"].failovers,
            m["total"].messages])

    def rate(measurement, phase):
        hits = [o for o in measurement["outcomes"] if o.phase == phase]
        return (sum(o.ok for o in hits) / len(hits)) if hits else 0.0

    settled = [o for o in degraded["outcomes"]
               if o.time >= _HEAL_AT + 25.0]
    result.check("replication+retry success rate strictly beats the "
                 "fail-fast baseline",
                 failover["success_rate"] > baseline["success_rate"])
    result.check("baseline fails every crash-window resolution; "
                 "failover serves them all",
                 rate(baseline, "crash") == 0.0
                 and rate(failover, "crash") == 1.0)
    result.check("serve-stale additionally answers during the "
                 "partition",
                 rate(degraded, "partition") > rate(failover, "partition")
                 and degraded["success_rate"]
                 >= failover["success_rate"])
    result.check("degraded answers exist and are tagged weakly "
                 "coherent iff a step was stale-served — never "
                 "silently coherent",
                 degraded["weak_successes"] > 0
                 and all(o.weak == (o.stale_steps > 0)
                         for o in degraded["outcomes"]))
    result.check("no weak answers before the first fault",
                 all(not o.weak for o in degraded["outcomes"]
                     if o.time < _CRASH_AT))
    result.check("coherent configurations never report weak answers",
                 baseline["weak_successes"] == 0
                 and failover["weak_successes"] == 0)
    result.check("failover path exercised retries, failovers and the "
                 "circuit breaker",
                 failover["total"].retries > 0
                 and failover["total"].failovers > 0
                 and failover["breaker_transitions"] > 0)
    result.check("service fully recovers after heal (no lingering "
                 "stale marks; settled post-heal resolutions all "
                 "succeed coherently)",
                 degraded["stale_marks_left"] == 0
                 and len(settled) > 0
                 and all(o.ok and not o.weak for o in settled))
    rerun = _run_schedule(seed, replicated=True, retry=True,
                          serve_stale=True)
    result.check("results are deterministic for a fixed seed",
                 rerun["signature"] == degraded["signature"]
                 and rerun["p99_latency"] == degraded["p99_latency"])

    result.notes.append(
        f"seed={seed} rounds={len(_ROUNDS)}×3 lookups, crash "
        f"[{_CRASH_AT:g},{_RESTART_AT:g}), flaky p={_DROP_PROB} "
        f"[{_FLAKY_AT:g},{_STEADY_AT:g}), partition "
        f"[{_PARTITION_AT:g},{_HEAL_AT:g})")

    # Instrumented replay of the serve-stale config: the metrics
    # snapshot shows the fault-tolerance layer working (retries,
    # failovers, circuit transitions, stale serves, injected faults).
    obs = Instrumentation(max_spans=8192)
    _run_schedule(seed, replicated=True, retry=True, serve_stale=True,
                  obs=obs)
    result.metrics = obs.metrics.snapshot()
    result.metrics["spans_recorded"] = len(obs.tracer)
    result.metrics["spans_dropped"] = obs.tracer.dropped_spans
    result.figures = {
        "baseline|success_rate": baseline["success_rate"],
        "failover|success_rate": failover["success_rate"],
        "serve_stale|success_rate": degraded["success_rate"],
        "serve_stale|weak_fraction": degraded["weak_fraction"],
        "baseline|p99_latency": baseline["p99_latency"],
        "serve_stale|p99_latency": degraded["p99_latency"],
    }
    return result
