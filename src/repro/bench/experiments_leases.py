"""Ablation A9 (coherence): lease callbacks bound cache staleness.

The paper's §3 coherence discussion separates *strong* schemes (every
answer reflects the latest binding) from *weak* ones (answers may lag,
but the service says so).  Invalidation callbacks look strong — until
a callback is lost in a partition, after which the stale copy lives
forever.  A9 measures the lease subsystem's central claim: a lease is
a *promise with an expiry*, so even a lost callback leaves the holder
stale for at most one lease term plus one delivery delay.

Two instruments, three cache policies (TTL / INVALIDATE / LEASE):

* **Blip** — a short, surgical partition.  A binding is rebound while
  the only caching client is unreachable, so the coherence message
  (invalidation or lease-break callback) is provably lost; the client
  then heals quickly, while its cached state is still live, and keeps
  resolving.  The window during which it *claims coherent* answers
  that are in fact stale is the staleness bound made operational:
  TTL's window ends when the entry times out, INVALIDATE's never ends
  (the loss is silent), LEASE's ends by ``rebind + term + delay``.
* **Fault schedule** — the A8 crash / flaky-link / partition timeline
  with the rebind issued mid-partition.  This exercises the lease
  grace mode: the partition outlives the lease term, so the client
  serves from *expired* leases — every such answer tagged weakly
  coherent, never memoized as fresh — and revalidates its cached
  epochs against the servers once the partition heals.

Both instruments run on virtual time only and are deterministic per
seed (the rerun check pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bench.harness import ExperimentResult
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.retry import RetryPolicy
from repro.obs.audit import CoherenceAuditor, CoherenceContract
from repro.obs.instrument import Instrumentation
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Machine, Simulator

__all__ = ["run_a9_leases"]

_TERM = 30.0           #: lease term (LEASE policy)
_TTL = 60.0            #: prefix/binding TTL (TTL policy)
#: TTL given to the policies whose coherence does not come from entry
#: expiry — large enough that any staleness bound they exhibit is
#: their own doing, not the cache timing out underneath them.
_UNBOUNDED_TTL = 10_000.0
#: Staleness-bound slack: one callback delivery plus the virtual time
#: a healing walk can burn in retry backoffs before its answer lands.
_SLACK = 6.0
_RETRY = dict(max_attempts=2, base_backoff=0.5, max_backoff=1.0)
_BREAKER_THRESHOLD, _BREAKER_COOLDOWN = 5, 5.0

# Blip timeline: the partition opens, the binding is rebound inside
# it (coherence message lost), and the heal lands *before* the
# client's leases expire — the claimed-coherent stale window this
# leaves is exactly what each policy's bound must contain.
_BLIP_PARTITION_AT, _BLIP_HEAL_AT = 10.0, 18.0
_BLIP_REBIND_AT = 11.0
_BLIP_PRE = (2.0, 6.0)
_BLIP_POST = tuple(float(t) for t in range(12, 92, 6))

# Fault-schedule timeline (the A8 windows, §robustness), plus a
# rebind mid-partition; the partition outlives the lease term so the
# grace mode is exercised.
_ROUNDS = tuple(float(t) for t in range(2, 240, 10))
_CRASH_AT, _RESTART_AT = 30.0, 78.0
_FLAKY_AT, _STEADY_AT = 95.0, 118.0
_PARTITION_AT, _HEAL_AT = 130.0, 185.0
_SCHED_REBIND_AT = 140.0
_SETTLED = (250.0, 258.0, 266.0)
_DROP_PROB, _SPIKE = 0.25, 1.5

_POLICIES = (CachePolicy.TTL, CachePolicy.INVALIDATE, CachePolicy.LEASE)


def _phase(time: float) -> str:
    if _CRASH_AT <= time < _RESTART_AT:
        return "crash"
    if _FLAKY_AT <= time < _STEADY_AT:
        return "flaky"
    if _PARTITION_AT <= time < _HEAL_AT:
        return "partition"
    return "healthy"


@dataclass
class _Probe:
    time: float        #: virtual time the resolution actually began
    phase: str
    ok: bool
    weak: bool
    stale_steps: int
    stale: bool        #: answered the pre-rebind entity post-rebind
    claimed: bool      #: stale, yet presented as coherent


@dataclass
class _Scenario:
    """One client machine, one replica pair, one rebindable binding."""

    simulator: Simulator
    client: object
    context: Context
    resolver: DistributedResolver
    injector: FailureInjector
    svc: ObjectEntity
    new_dir: ObjectEntity
    old_leaf: Entity
    new_leaf: Entity
    client_machine: Machine
    auditor: CoherenceAuditor
    rebound_at: Optional[float] = None

    def rebind(self) -> None:
        self.rebound_at = self.simulator.clock.now
        self.resolver.rebind(self.svc, "app", self.new_dir)

    def probe(self, start: float) -> _Probe:
        self.simulator.run(until=start)
        began = self.simulator.clock.now
        entity, cost = self.resolver.resolve(
            self.client, self.context, "/svc/app/cfg")
        stale = (self.rebound_at is not None
                 and began >= self.rebound_at
                 and entity is self.old_leaf)
        return _Probe(
            time=began, phase=_phase(began),
            ok=entity.is_defined() and not cost.failed,
            weak=cost.weak, stale_steps=cost.stale_steps,
            stale=stale,
            claimed=stale and not cost.weak and not cost.failed)


def _build(seed: int, policy: CachePolicy, schedule: str,
           obs: Optional[Instrumentation]) -> _Scenario:
    # Every run is audited: ground-truth staleness measurement rides
    # on a disabled Instrumentation (pure-python tallies, no metric
    # emission) so the timed runs pay near-zero overhead; the
    # instrumented replay swaps in a fresh auditor that also feeds
    # the metrics registry.
    auditor = CoherenceAuditor(
        contract=CoherenceContract(slack=_SLACK))
    if obs is None:
        obs = Instrumentation(enabled=False, auditor=auditor)
    else:
        obs.auditor = auditor
        auditor.bind_obs(obs)
    simulator = Simulator(seed=seed, obs=obs)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    old_dir = tree.mkdir("svc/app")
    old_leaf = tree.mkfile("svc/app/cfg")
    new_dir = tree.mkdir("spare")
    new_leaf = tree.mkfile("spare/cfg")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    svc = tree.directory("svc")
    for directory in (svc, old_dir, new_dir):
        placement.place_replicated(directory, primary, secondary)
    client = simulator.spawn(client_machine, "client")
    context: Context = ProcessContext(tree.root)
    ttl = _TTL if policy is CachePolicy.TTL else _UNBOUNDED_TTL
    resolver = DistributedResolver(
        simulator, placement,
        cache_policy=policy, cache_ttl=ttl,
        retry_policy=RetryPolicy(**_RETRY),
        # LEASE availability under partition comes from the grace
        # mode alone; the other policies get the explicit stale gate
        # so the comparison is about *coherence*, not availability.
        serve_stale=policy is not CachePolicy.LEASE,
        breaker_threshold=_BREAKER_THRESHOLD,
        breaker_cooldown=_BREAKER_COOLDOWN,
        lease_term=_TERM)
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    if schedule == "blip":
        injector.schedule_timeline([
            (_BLIP_PARTITION_AT, "partition", lan, srv),
            (_BLIP_HEAL_AT, "heal", lan, srv),
        ])
    else:
        injector.schedule_timeline([
            (_CRASH_AT, "crash", primary),
            (_RESTART_AT, "restart", primary),
            (_FLAKY_AT, "flaky_link", lan, srv, _DROP_PROB, _SPIKE),
            (_STEADY_AT, "steady_link", lan, srv),
            (_PARTITION_AT, "partition", lan, srv),
            (_HEAL_AT, "heal", lan, srv),
        ])
    return _Scenario(
        simulator=simulator, client=client, context=context,
        resolver=resolver, injector=injector, svc=svc,
        new_dir=new_dir, old_leaf=old_leaf, new_leaf=new_leaf,
        client_machine=client_machine, auditor=auditor)


def _stats(scenario: _Scenario, probes: list[_Probe]) -> dict:
    resolver = scenario.resolver
    cache = resolver.cache_stats()
    lookups = cache["hits"] + cache["misses"]
    successes = [probe for probe in probes if probe.ok]
    claimed = [probe.time for probe in probes if probe.claimed]
    return {
        "probes": probes,
        "success_rate": (len(successes) / len(probes)) if probes else 0.0,
        "weak_fraction": (sum(probe.weak for probe in successes)
                          / len(successes)) if successes else 0.0,
        "claimed_times": claimed,
        "max_claimed": max(claimed) if claimed else None,
        "weak_stale_times": [probe.time for probe in probes
                             if probe.stale and probe.weak],
        "losses": resolver.invalidation_losses,
        "coherence_messages": resolver.invalidation_messages,
        "hit_rate": (cache["hits"] / lookups) if lookups else 0.0,
        "lease": (resolver.lease_stats()
                  if resolver.leases is not None else {}),
        "rebound_at": scenario.rebound_at,
        "audit": scenario.auditor.summary(),
        "signature": tuple((probe.phase, probe.ok, probe.weak,
                            probe.stale) for probe in probes),
    }


def _run_blip(seed: int, policy: CachePolicy,
              obs: Optional[Instrumentation] = None) -> dict:
    scenario = _build(seed, policy, "blip", obs)
    probes = [scenario.probe(start) for start in _BLIP_PRE]
    scenario.simulator.run(until=_BLIP_REBIND_AT)
    scenario.rebind()
    probes += [scenario.probe(start) for start in _BLIP_POST]
    scenario.simulator.run()
    return _stats(scenario, probes)


def _run_schedule(seed: int, policy: CachePolicy,
                  obs: Optional[Instrumentation] = None) -> dict:
    scenario = _build(seed, policy, "faults", obs)
    probes: list[_Probe] = []
    for start in _ROUNDS:
        if (scenario.rebound_at is None
                and start >= _SCHED_REBIND_AT):
            scenario.simulator.run(until=_SCHED_REBIND_AT)
            scenario.rebind()
        probes.append(scenario.probe(start))
    scenario.simulator.run()
    settled = [scenario.probe(start) for start in _SETTLED]
    stats = _stats(scenario, probes + settled)
    stats["settled"] = settled
    return stats


def run_a9_leases(seed: int = 0) -> ExperimentResult:
    """A9: lease callbacks bound staleness; lost invalidations don't."""
    blip = {policy: _run_blip(seed, policy) for policy in _POLICIES}
    sched = {policy: _run_schedule(seed, policy) for policy in _POLICIES}
    ttl_b, inv_b, lease_b = (blip[policy] for policy in _POLICIES)
    ttl_s, inv_s, lease_s = (sched[policy] for policy in _POLICIES)

    result = ExperimentResult(
        exp_id="A9",
        title="Lease callbacks: bounded staleness under partitions",
        headers=["policy", "blip stale window end", "schedule success",
                 "weak fraction", "hit rate", "coherence msgs",
                 "lost msgs"])
    for policy in _POLICIES:
        b, s = blip[policy], sched[policy]
        result.rows.append([
            policy.value,
            "unbounded" if b["max_claimed"] is not None
            and b["max_claimed"] >= _BLIP_POST[-1]
            else (f"{b['max_claimed']:.1f}" if b["max_claimed"]
                  else "none"),
            s["success_rate"], s["weak_fraction"], s["hit_rate"],
            b["coherence_messages"] + s["coherence_messages"],
            b["losses"] + s["losses"]])

    # -- blip: the staleness bound, operational -----------------------
    result.check(
        "the blip rebind loses the coherence message under both "
        "INVALIDATE and LEASE (and TTL sends none)",
        inv_b["losses"] == 1 and lease_b["losses"] == 1
        and ttl_b["losses"] == 0 and ttl_b["coherence_messages"] == 0)
    result.check(
        "INVALIDATE staleness is unbounded: the client still claims "
        "the stale binding coherently at the final probe",
        inv_b["probes"][-1].claimed)
    result.check(
        "LEASE staleness is positive but bounded by rebind + term + "
        "one delivery delay",
        len(lease_b["claimed_times"]) > 0
        and lease_b["max_claimed"]
        <= _BLIP_REBIND_AT + _TERM + _SLACK)
    result.check(
        "TTL staleness is bounded only by the (longer) entry TTL",
        len(ttl_b["claimed_times"]) > 0
        and lease_b["max_claimed"] < ttl_b["max_claimed"]
        <= _BLIP_REBIND_AT + _TTL + _SLACK
        and not ttl_b["probes"][-1].claimed)
    result.check(
        "after its lease lapses the client re-walks and answers the "
        "new binding coherently",
        all(probe.ok and not probe.weak and not probe.stale
            for probe in lease_b["probes"][-3:]))
    result.check(
        "the lost lease callback is escalated to a server-side break",
        lease_b["lease"].get("server_breaks", 0) == 1
        and lease_b["lease"].get("server_acks", 0) == 0)

    # -- schedule: grace mode, weak tagging, recovery -----------------
    result.check(
        "grace mode keeps the lease client answering through every "
        "fault phase, never worse than the TTL baseline (whose "
        "entries may expire mid-partition, unrefillable)",
        lease_s["success_rate"] == 1.0
        and inv_s["success_rate"] == 1.0
        and ttl_s["success_rate"] <= lease_s["success_rate"])
    result.check(
        "an answer is tagged weakly coherent iff a step was served "
        "stale — grace answers are never memoized as fresh",
        all(probe.weak == (probe.stale_steps > 0)
            for policy in _POLICIES
            for probe in sched[policy]["probes"]))
    result.check(
        "the partition outlives the lease term: expired leases serve "
        "in grace mode (weak), and every lease-fresh claim stays "
        "inside the staleness bound",
        lease_s["lease"]["grace_hits"] > 0
        and lease_s["lease"]["expirations"] > 0
        and (lease_s["max_claimed"] is None
             or lease_s["max_claimed"]
             <= _SCHED_REBIND_AT + _TERM + _SLACK))
    result.check(
        "after the heal the lease client revalidates cached epochs "
        "and answers the new binding coherently",
        lease_s["lease"]["revalidations"] > 0
        and all(probe.ok and not probe.weak and not probe.stale
                for probe in lease_s["settled"]))
    result.check(
        "INVALIDATE never recovers in the schedule either: its "
        "settled post-heal answers are still claimed-coherent stale",
        inv_s["losses"] >= 1
        and all(probe.claimed for probe in inv_s["settled"]))

    # -- measured: the auditor's ground truth beside the claims -------
    result.check(
        "measured: LEASE claimed-coherent staleness never exceeds "
        "term + slack and its contract is never violated",
        lease_b["audit"]["violations"] == 0
        and lease_s["audit"]["violations"] == 0
        and max(lease_b["audit"]["max_claimed_staleness"],
                lease_s["audit"]["max_claimed_staleness"])
        <= _TERM + _SLACK)
    result.check(
        "measured: TTL claimed-coherent staleness stays within "
        "ttl + slack with no violations",
        ttl_b["audit"]["violations"] == 0
        and ttl_s["audit"]["violations"] == 0
        and max(ttl_b["audit"]["max_claimed_staleness"],
                ttl_s["audit"]["max_claimed_staleness"])
        <= _TTL + _SLACK)
    result.check(
        "measured: the lost INVALIDATE is detected — claimed-coherent "
        "staleness beyond the delivery slack is flagged as a "
        "contract violation in both instruments",
        inv_b["audit"]["violations"] >= 1
        and inv_s["audit"]["violations"] >= 1
        and inv_b["audit"]["max_claimed_staleness"] > _SLACK)
    result.check(
        "measured: the auditor saw every probe and exactly the one "
        "rebind write per run",
        all(run["audit"]["observed"] >= len(run["probes"])
            and run["audit"]["writes"] == 1
            for policy in _POLICIES
            for run in (blip[policy], sched[policy])))
    rerun = _run_schedule(seed, CachePolicy.LEASE)
    result.check(
        "results are deterministic for a fixed seed",
        rerun["signature"] == lease_s["signature"]
        and rerun["lease"] == lease_s["lease"]
        and rerun["audit"] == lease_s["audit"])

    result.notes.append(
        f"seed={seed} blip: partition [{_BLIP_PARTITION_AT:g},"
        f"{_BLIP_HEAL_AT:g}) rebind@{_BLIP_REBIND_AT:g}, term={_TERM:g} "
        f"ttl={_TTL:g}; schedule: crash [{_CRASH_AT:g},{_RESTART_AT:g}) "
        f"flaky p={_DROP_PROB} [{_FLAKY_AT:g},{_STEADY_AT:g}) partition "
        f"[{_PARTITION_AT:g},{_HEAL_AT:g}) rebind@{_SCHED_REBIND_AT:g}")
    result.notes.append(
        "blip claimed-stale windows — "
        + "; ".join(
            f"{policy.value}: "
            + (f"[{min(blip[policy]['claimed_times']):.1f}.."
               f"{max(blip[policy]['claimed_times']):.1f}]"
               if blip[policy]["claimed_times"] else "[]")
            for policy in _POLICIES))
    result.notes.append(
        "lease schedule stats: "
        + " ".join(f"{key}={value}"
                   for key, value in sorted(lease_s["lease"].items())))

    # Instrumented replay of the LEASE runs: grants, renewals,
    # callbacks, breaks, grace serves and revalidations all land in
    # the metrics snapshot.
    obs = Instrumentation(max_spans=16384)
    _run_blip(seed, CachePolicy.LEASE, obs=obs)
    _run_schedule(seed, CachePolicy.LEASE, obs=obs)
    result.metrics = obs.metrics.snapshot()
    result.metrics["spans_recorded"] = len(obs.tracer)
    result.metrics["spans_dropped"] = obs.tracer.dropped_spans
    result.audit = {
        "contract": {"slack": _SLACK, "ttl": _TTL,
                     "lease_term": _TERM},
        "blip": {policy.value: blip[policy]["audit"]
                 for policy in _POLICIES},
        "schedule": {policy.value: sched[policy]["audit"]
                     for policy in _POLICIES},
    }
    result.notes.append(
        "measured max claimed staleness (blip/schedule) — "
        + "; ".join(
            f"{policy.value}: "
            f"{blip[policy]['audit']['max_claimed_staleness']:.1f}/"
            f"{sched[policy]['audit']['max_claimed_staleness']:.1f}"
            f" ({blip[policy]['audit']['violations']}"
            f"+{sched[policy]['audit']['violations']} violations)"
            for policy in _POLICIES))
    result.figures = {
        "lease|blip_stale_window_end": lease_b["max_claimed"] or 0.0,
        "ttl|blip_stale_window_end": ttl_b["max_claimed"] or 0.0,
        "invalidate|blip_stale_at_end": float(
            inv_b["probes"][-1].claimed),
        "lease|schedule_weak_fraction": lease_s["weak_fraction"],
        "lease|schedule_hit_rate": lease_s["hit_rate"],
        "lease|grace_hits": float(lease_s["lease"]["grace_hits"]),
        "lease|measured_max_claimed_staleness": max(
            lease_b["audit"]["max_claimed_staleness"],
            lease_s["audit"]["max_claimed_staleness"]),
        "ttl|measured_max_claimed_staleness": max(
            ttl_b["audit"]["max_claimed_staleness"],
            ttl_s["audit"]["max_claimed_staleness"]),
        "invalidate|measured_max_staleness": max(
            inv_b["audit"]["max_staleness"],
            inv_s["audit"]["max_staleness"]),
        "invalidate|measured_violations": float(
            inv_b["audit"]["violations"]
            + inv_s["audit"]["violations"]),
    }
    return result
