"""Ablation A11: replicated shards under a crash/restart timeline.

A10 showed live splitting spreads a hot directory over a pool; this
ablation asks what happens when one of those shard servers *crashes*.
With single-owner shards (``replicas=1``, the PR 6 shape) the crashed
machine's hash range simply goes dark: every lookup landing in it
fails until the machine returns — and a write missed during the
outage leaves the sole copy stale forever, because there is no fellow
replica to anti-entropy from.  With replicated shards
(:meth:`~repro.nameservice.placement.DirectoryPlacement.place_sharded`
with ``replicas=2``) every shard carries a replica set, so the
resolver's failover path serves the range from a surviving replica,
rebinds during the outage mark the dead copy stale, and the restart
hook's anti-entropy resyncs it — no range goes dark.

Two configurations resolve the *same* seeded Zipf sample sequence
under the *same* scripted :class:`~repro.sim.failures.FailureInjector`
timeline (two crash/restart cycles hitting two different shard
servers, with one rebind into an affected range during each outage):

* ``single-owner shards`` — four shards, one machine each;
* ``replicated shards`` — the same four ranges, each with a two-deep
  replica set assigned round-robin over the same pool.

The timeline is booked on the simulator clock and each probe
iteration drains due events first, so crashes and restarts land
*between* resolutions exactly where the script says.
Each configuration runs fully instrumented: the PR 8 coherence
auditor scores every read (failed lookups are ``failed`` verdicts,
never coherence violations), the SLO tracker burns objectives on
violations, and the summary is embedded as the experiment's audit
record.

Expected shape: replicated availability stays ≈1.0 (every dead-range
lookup fails over, at failover cost), single-owner availability drops
by roughly the dead ranges' traffic share, and only the replicated
deployment heals its stale mark — the single-owner copy has no sync
source and its range stays dark even after restart.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.bench.harness import ExperimentResult
from repro.model.context import Context
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.retry import RetryPolicy
from repro.obs.audit import CoherenceAuditor
from repro.obs.instrument import Instrumentation
from repro.obs.slo import SLObjective, SLOTracker
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.workloads.zipf import ZipfSampler, build_zipf_namespace

__all__ = ["run_a11_shard_faults", "run_a11_shard_faults_suite"]

_SKEW = 1.0    #: Zipf exponent of the name popularity law
_POOL = 4      #: shard-server machines (= initial shard count)
_WALK = 2.0    #: clock units one healthy resolution advances (one
               #: forward hop + one answer hop at latency 1.0)

#: The scripted disruption, as fractions of the run's clock horizon
#: (``resolutions × _WALK``): (crash_at, restart_at, pool_index).
#: Two outages, two machines.  One write lands inside each outage,
#: into a range whose replica set includes the crashed machine (the
#: rebind fires when the probe loop first observes the crash).
_FAULTS = ((0.20, 0.40, 0), (0.55, 0.75, 2))


@dataclass
class _Deployment:
    simulator: Simulator
    resolver: DistributedResolver
    placement: DirectoryPlacement
    injector: FailureInjector
    client: object
    context: Context
    namespace: object
    shard_map: object
    pool: list
    obs: Instrumentation
    auditor: CoherenceAuditor
    slo: SLOTracker


def _deploy(seed: int, names: int, replicas: int) -> _Deployment:
    obs = Instrumentation(max_spans=4096)
    slo = SLOTracker([
        SLObjective("violation-free", violation_free=True),
    ], metrics=obs.metrics)
    auditor = CoherenceAuditor(slo=slo)
    obs.auditor = auditor
    auditor.bind_obs(obs)
    simulator = Simulator(seed=seed, obs=obs)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"shard{i}")
            for i in range(_POOL)]
    client_machine = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=names)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    shard_map = placement.place_sharded(namespace.directory, *pool,
                                        replicas=replicas)
    client = simulator.spawn(client_machine, "client")
    resolver = DistributedResolver(
        simulator, placement,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.1,
                                 jitter=0.0))
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    context = ProcessContext(tree.root)
    return _Deployment(simulator, resolver, placement, injector,
                       client, context, namespace, shard_map, pool,
                       obs, auditor, slo)


def _name_in_shard(shard_map, shard_index: int) -> str:
    """A deterministic fresh component hashing into shard
    *shard_index* (shard bounds depend only on the pool size, so the
    pick is seed-independent)."""
    target = shard_map.shards[shard_index]
    index = 0
    while True:
        candidate = f"spare{index}"
        if shard_map.owner_of(candidate) is target:
            return candidate
        index += 1


def _run_config(deployment: _Deployment, ranks: list[int],
                ) -> dict[str, float]:
    """Drive *ranks* across the scripted fault timeline.

    The timeline is booked on the simulator clock (each healthy walk
    advances it by ≈``_WALK``), and each iteration first drains
    already-due events, so crashes and restarts land *between*
    resolutions exactly where the script says.  The outage write —
    one rebind into a range replicated on the crashed machine — fires
    the first time the loop observes each crash, so it is always
    inside the window regardless of clock drift from failovers.
    """
    resolver = deployment.resolver
    simulator = deployment.simulator
    namespace = deployment.namespace
    horizon = len(ranks) * _WALK
    timeline = []
    pending_rebinds = []
    for crash_frac, restart_frac, pool_index in _FAULTS:
        machine = deployment.pool[pool_index]
        timeline.append((crash_frac * horizon, "crash", machine))
        timeline.append((restart_frac * horizon, "restart", machine))
        pending_rebinds.append(
            (machine, _name_in_shard(deployment.shard_map,
                                     pool_index)))
    deployment.injector.schedule_timeline(timeline)
    down_windows = [(c * horizon, r * horizon) for c, r, _ in _FAULTS]

    ok = failed = failovers = 0
    first_failure: Optional[float] = None
    failed_in_window = 0
    for rank in ranks:
        simulator.run(until=simulator.clock.now)  # due faults land
        for entry in list(pending_rebinds):
            machine, spare = entry
            if not machine.alive:
                resolver.rebind(namespace.directory, spare,
                                namespace.shared_leaf)
                pending_rebinds.remove(entry)
        before = simulator.clock.now
        entity, cost = resolver.resolve(
            deployment.client, deployment.context,
            "/hot/" + namespace.names[rank])
        failovers += cost.failovers
        if entity.is_defined() and not cost.failed:
            ok += 1
        else:
            failed += 1
            if first_failure is None:
                first_failure = simulator.clock.now
            if any(lo <= before < hi for lo, hi in down_windows):
                failed_in_window += 1
    simulator.run()

    total = ok + failed
    audit = deployment.auditor.summary()
    return {
        "ok": ok,
        "failed": failed,
        "availability": ok / total if total else 0.0,
        "failovers": failovers,
        "first_failure": (-1.0 if first_failure is None
                          else first_failure),
        "failed_in_window": failed_in_window,
        "first_crash": down_windows[0][0],
        "anti_entropy": resolver.anti_entropy_messages,
        "stale_remaining": deployment.placement.stale_count(),
        "partitioned": deployment.shard_map.is_partition(),
        "replication": deployment.shard_map.replication,
        "audit": audit,
        "slo_burns": sum(deployment.slo.burns.values()),
        "kernel_messages": float(deployment.simulator.messages_sent),
    }


def run_a11_shard_faults(seed: int = 0, names: int = 200_000,
                         resolutions: int = 20_000,
                         replicas: int = 2) -> ExperimentResult:
    """A11: shard-server crashes — replicated shards vs single-owner.

    The same Zipf sample sequence and the same two-outage fault
    timeline run against both configurations; only the replication
    degree differs.  Tests and smoke runs pass reduced sizes — the
    contrast is scale-invariant as long as each outage window spans
    many arrivals.
    """
    sampler = ZipfSampler(names, skew=_SKEW, rng=random.Random(seed))
    ranks = sampler.sample_many(resolutions)

    configs = {}
    for label, degree in (("single-owner shards", 1),
                          ("replicated shards", replicas)):
        deployment = _deploy(seed, names, degree)
        configs[label] = _run_config(deployment, ranks)
        del deployment  # free the namespace promptly

    single = configs["single-owner shards"]
    repl = configs["replicated shards"]
    result = ExperimentResult(
        exp_id="A11",
        title="Replicated shards under a crash/restart timeline",
        headers=["configuration", "availability", "ok", "failed",
                 "failovers", "anti-entropy", "stale left",
                 "violations"])
    for label, m in configs.items():
        result.rows.append([
            label, round(m["availability"], 4), int(m["ok"]),
            int(m["failed"]), int(m["failovers"]),
            int(m["anti_entropy"]), int(m["stale_remaining"]),
            int(m["audit"]["violations"])])

    result.check(
        "replicated shards hold availability ≈1.0 through both "
        "outages (≥0.999)",
        repl["availability"] >= 0.999)
    result.check(
        "single-owner shards drop the dead range's lookups "
        "(availability strictly below the replicated run, with "
        "failures during the outage windows)",
        single["availability"] < repl["availability"]
        and single["failed_in_window"] > 0)
    result.check(
        "single-owner failures start only once the first crash "
        "lands — the healthy prefix is clean",
        single["failed"] > 0
        and single["first_failure"] >= single["first_crash"])
    result.check(
        "the replicated run actually failed over to surviving "
        "replicas (failovers > 0) instead of never touching the "
        "dead ranges",
        repl["failovers"] > 0)
    result.check(
        "anti-entropy healed the replicated outage writes: syncs "
        "flowed on restart and no stale mark survives the run",
        repl["anti_entropy"] > 0 and repl["stale_remaining"] == 0)
    result.check(
        "the single-owner missed write has no sync source: its "
        "stale mark survives restart (the range stays dark)",
        single["stale_remaining"] > 0)
    result.check(
        "measured: both audited runs are violation-free — failed "
        "lookups are failures, never stale reads served as fresh",
        repl["audit"]["observed"] > 0
        and repl["audit"]["violations"] == 0
        and single["audit"]["violations"] == 0
        and repl["slo_burns"] == 0)
    result.check(
        "both shard maps remain exact partitions of the hash space",
        bool(single["partitioned"]) and bool(repl["partitioned"]))
    result.notes.append(
        f"seed={seed} names={names} resolutions={resolutions} "
        f"zipf_s={_SKEW} walk={_WALK} pool={_POOL} "
        f"replicas={replicas} "
        f"faults={[(c, r, i) for c, r, i in _FAULTS]} "
        f"head_share(100)={sampler.head_share(100):.3f}")
    result.figures = {
        "single|availability": single["availability"],
        "replicated|availability": repl["availability"],
        "single|failed": float(single["failed"]),
        "replicated|failovers": float(repl["failovers"]),
        "replicated|anti_entropy": float(repl["anti_entropy"]),
        "single|stale_remaining": float(single["stale_remaining"]),
    }
    result.audit = {"single": single["audit"],
                    "replicated": repl["audit"]}
    return result


def run_a11_shard_faults_suite(seed: int = 0) -> ExperimentResult:
    """A11 (suite scale): replicated shards keep every range served
    through two shard-server outages where single-owner shards drop
    the dead ranges' lookups.

    Runs at 5·10^4 names / 6·10^3 resolutions so the full experiment
    suite stays quick; ``benchmarks/bench_a11_shard_faults.py`` runs
    the full default scale.
    """
    return run_a11_shard_faults(seed=seed, names=50_000,
                                resolutions=6_000)
