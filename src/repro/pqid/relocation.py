"""Pid validity under relocation and reconfiguration.

The paper's motivating property: "when the address of a machine or a
network is changed as part of relocation or reconfiguration, pids of
local processes within the renamed machine or network remain valid and
therefore the subsystem maintains its internal connections and does
not have to be shut down."

A :class:`ReferenceTable` holds long-lived pid references ("open
connections"), each recorded with the process the holder intends the
pid to denote.  After reconfigurations, :meth:`ReferenceTable.survival`
reports how many references still resolve to their intended targets —
the measurement behind experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pqid.mapping import resolve_pid
from repro.pqid.pid import Pid
from repro.sim.process import SimProcess

__all__ = ["PidReference", "ReferenceTable"]


@dataclass(frozen=True)
class PidReference:
    """A stored pid: *holder* refers to *intended* by *pid*."""

    holder: SimProcess
    pid: Pid
    intended: SimProcess
    note: str = ""

    def is_valid(self) -> bool:
        """True if the pid still resolves to the intended process."""
        return resolve_pid(self.pid, self.holder) is self.intended

    def is_dangling(self) -> bool:
        """True if the pid resolves to nothing at all."""
        return resolve_pid(self.pid, self.holder) is None

    def is_misdirected(self) -> bool:
        """True if the pid now resolves to a *different* process —
        the dangerous post-renumbering failure mode."""
        resolved = resolve_pid(self.pid, self.holder)
        return resolved is not None and resolved is not self.intended


@dataclass
class ReferenceTable:
    """A population of long-lived pid references."""

    references: list[PidReference] = field(default_factory=list)

    def add(self, holder: SimProcess, pid: Pid, intended: SimProcess,
            note: str = "") -> PidReference:
        reference = PidReference(holder, pid, intended, note)
        self.references.append(reference)
        return reference

    def survival(self) -> float:
        """Fraction of references that still resolve correctly."""
        if not self.references:
            return 1.0
        valid = sum(1 for r in self.references if r.is_valid())
        return valid / len(self.references)

    def counts(self) -> dict[str, int]:
        """Breakdown: valid / dangling / misdirected."""
        out = {"valid": 0, "dangling": 0, "misdirected": 0}
        for reference in self.references:
            if reference.is_valid():
                out["valid"] += 1
            elif reference.is_dangling():
                out["dangling"] += 1
            else:
                out["misdirected"] += 1
        return out

    def subset(self, note: str) -> "ReferenceTable":
        """References whose note equals *note* (e.g. "intra-machine")."""
        return ReferenceTable(
            [r for r in self.references if r.note == note])

    def __len__(self) -> int:
        return len(self.references)
