"""Pid exchange over the simulator — mapped vs unmapped transports.

The experiments compare three pid-exchange policies:

* ``MAPPED`` — partially qualified pids, mapped at the hop
  (``R(sender)``, the paper's solution);
* ``RAW`` — partially qualified pids sent verbatim and resolved in the
  receiver's context (``R(receiver)`` — the broken default the paper
  analyses);
* ``FULL`` — conventional fully qualified pids sent verbatim (no
  mapping needed while addresses are stable, brittle under
  renumbering).

:func:`send_pid` performs one exchange under a policy and returns a
:class:`PidExchange` record; :func:`exchange_outcome` scores it the
way the coherence auditor scores name resolutions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.pqid.mapping import fully_qualify, map_pid, qualify, resolve_pid
from repro.pqid.pid import Pid
from repro.sim.messages import Message
from repro.sim.process import SimProcess

__all__ = ["PidPolicy", "PidExchange", "send_pid", "exchange_outcome"]


class PidPolicy(enum.Enum):
    """How a pid is prepared for the wire."""

    MAPPED = "mapped"
    RAW = "raw"
    FULL = "full"

    def __str__(self) -> str:
        return self.value


@dataclass
class PidExchange:
    """One pid handed from *sender* to *receiver*.

    Attributes:
        intended: The process the sender meant the pid to denote.
        sent: The pid as the sender wrote it (minimal qualification
            for MAPPED/RAW, fully qualified for FULL).
        wire: The pid as delivered (rewritten for MAPPED).
        message: The carrying simulator message.
    """

    sender: SimProcess
    receiver: SimProcess
    intended: SimProcess
    policy: PidPolicy
    sent: Pid
    wire: Optional[Pid]
    message: Message


def send_pid(sender: SimProcess, receiver: SimProcess,
             target: SimProcess, policy: PidPolicy = PidPolicy.MAPPED,
             latency: Optional[float] = None) -> PidExchange:
    """Send a pid denoting *target* from *sender* to *receiver*."""
    if policy is PidPolicy.FULL:
        sent = fully_qualify(target)
        wire: Optional[Pid] = sent
    else:
        sent = qualify(target, sender)
        wire = (map_pid(sent, sender, receiver)
                if policy is PidPolicy.MAPPED else sent)
    message = sender.send(receiver, payload={"pid": wire}, latency=latency)
    return PidExchange(sender=sender, receiver=receiver, intended=target,
                       policy=policy, sent=sent, wire=wire, message=message)


def exchange_outcome(exchange: PidExchange) -> str:
    """Score a delivered exchange: ``"coherent"``, ``"incoherent"``
    (resolved to a *different* process), or ``"unresolved"``.

    The receiver resolves the wire pid in its *own* context — which is
    correct for MAPPED (the mapping moved the sender's meaning into
    the receiver's context) and is exactly the R(receiver) failure
    mode for RAW.
    """
    if exchange.wire is None:
        return "unresolved"
    resolved = resolve_pid(exchange.wire, exchange.receiver)
    if resolved is None:
        return "unresolved"
    if resolved is exchange.intended:
        return "coherent"
    return "incoherent"
