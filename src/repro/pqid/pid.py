"""Partially qualified process identifiers (§6, Example 1; [10, 11]).

"Pids have the form p = (p.naddr, p.maddr, p.laddr).  A process with
local address l on machine m and network n has the following pids
depending on the context of reference: (0,0,0), (0,0,l), (0,m,l), and
(n,m,l).  The pid (0,0,0) can be used by any process to refer to
itself."

A zero component means *unqualified at that level*: the referent is
found relative to the holder's own position.  The advantage over fully
qualified pids: when a machine or network is renumbered, pids of local
processes within it remain valid, so the subsystem keeps its internal
connections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AddressError

__all__ = ["Pid", "Qualification", "SELF_PID"]


class Qualification(enum.IntEnum):
    """How far a pid is qualified.  Higher = more absolute."""

    SELF = 0      #: (0,0,0) — the referring process itself
    MACHINE = 1   #: (0,0,l) — within the holder's machine
    NETWORK = 2   #: (0,m,l) — within the holder's network
    FULL = 3      #: (n,m,l) — absolute in the internetwork


@dataclass(frozen=True, order=True)
class Pid:
    """An immutable (naddr, maddr, laddr) process identifier.

    Valid shapes are exactly the paper's four: all-zero, laddr only,
    maddr+laddr, or all three.  (A pid like ``(n, 0, l)`` — network
    qualified but machine unqualified — is malformed.)
    """

    naddr: int
    maddr: int
    laddr: int

    def __post_init__(self) -> None:
        if min(self.naddr, self.maddr, self.laddr) < 0:
            raise AddressError(f"pid components must be >= 0: {self}")
        if self.naddr and not self.maddr:
            raise AddressError(
                f"network-qualified pid must also be machine-qualified: "
                f"{self}")
        if self.maddr and not self.laddr:
            raise AddressError(
                f"machine-qualified pid must also be locally qualified: "
                f"{self}")

    @property
    def qualification(self) -> Qualification:
        """The qualification level of this pid."""
        if self.naddr:
            return Qualification.FULL
        if self.maddr:
            return Qualification.NETWORK
        if self.laddr:
            return Qualification.MACHINE
        return Qualification.SELF

    def is_self(self) -> bool:
        """True for the self pid (0,0,0)."""
        return self.qualification is Qualification.SELF

    def is_fully_qualified(self) -> bool:
        """True for an (n,m,l) pid."""
        return self.qualification is Qualification.FULL

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.naddr, self.maddr, self.laddr)

    @classmethod
    def parse(cls, text: str) -> "Pid":
        """Parse the textual form ``(n,m,l)`` (whitespace tolerated).

        >>> Pid.parse("(0, 3, 5)")
        Pid(naddr=0, maddr=3, laddr=5)

        Raises:
            AddressError: on malformed text or an invalid shape.
        """
        if not isinstance(text, str):
            raise AddressError(f"expected str, got {type(text).__name__}")
        stripped = text.strip()
        if stripped.startswith("(") and stripped.endswith(")"):
            stripped = stripped[1:-1]
        parts = [p.strip() for p in stripped.split(",")]
        if len(parts) != 3 or not all(
                p.lstrip("-").isdigit() for p in parts):
            raise AddressError(f"not a pid: {text!r}")
        naddr, maddr, laddr = (int(p) for p in parts)
        return cls(naddr, maddr, laddr)

    def __str__(self) -> str:
        return f"({self.naddr},{self.maddr},{self.laddr})"


#: The pid any process may use to refer to itself.
SELF_PID = Pid(0, 0, 0)
