"""Pid resolution, qualification, and the ``R(sender)`` mapping.

A pid is resolved *relative to a holder*: unqualified components are
filled in from the holder's current position (its machine and
network).  This makes the holder's position the pid's implicit
context, and the resolution rule for pids embedded in messages is
``R(sender)`` — "use the context of the sender process that sent the
embedded pid.  The resolution rule is implemented by **mapping** the
embedded pid" (§6, Example 1).

:func:`map_pid` is that mapping: resolve the pid in the sender's
context, then re-qualify the result minimally relative to the
receiver.  The key invariant (property-tested in the suite)::

    resolve_pid(map_pid(p, s, r), r)  is  resolve_pid(p, s)

whenever the pid resolves for the sender.
"""

from __future__ import annotations

from typing import Optional

from repro.pqid.pid import Pid, Qualification, SELF_PID
from repro.sim.process import SimProcess

__all__ = ["resolve_pid", "qualify", "fully_qualify", "map_pid"]


def resolve_pid(pid: Pid, holder: SimProcess) -> Optional[SimProcess]:
    """Resolve *pid* relative to *holder*'s current position.

    Returns the denoted live process, or ``None`` when the pid does
    not currently resolve (dangling address — e.g. after a renumbering
    made a stale qualified component point nowhere).  Resolution uses
    *current* addresses only, exactly like a real transport would.
    """
    level = pid.qualification
    if level is Qualification.SELF:
        return holder if holder.alive else None
    if level is Qualification.MACHINE:
        machine = holder.machine
    elif level is Qualification.NETWORK:
        machine_ = holder.machine.network.by_maddr(pid.maddr)
        if machine_ is None:
            return None
        machine = machine_
    else:  # FULL
        network = holder.machine.network.internet.by_naddr(pid.naddr)
        if network is None:
            return None
        machine_ = network.by_maddr(pid.maddr)
        if machine_ is None:
            return None
        machine = machine_
    process = machine.by_laddr(pid.laddr)
    if process is None or not process.alive:
        return None
    return process


def qualify(target: SimProcess, holder: SimProcess) -> Pid:
    """The minimal pid by which *holder* can refer to *target*.

    "Pids are qualified only as far as necessary": self → (0,0,0),
    same machine → (0,0,l), same network → (0,m,l), else (n,m,l).
    """
    if target is holder:
        return SELF_PID
    if target.machine is holder.machine:
        return Pid(0, 0, target.laddr)
    if target.machine.network is holder.machine.network:
        return Pid(0, target.machine.maddr, target.laddr)
    return fully_qualify(target)


def fully_qualify(target: SimProcess) -> Pid:
    """The conventional fully qualified pid (n,m,l) — the baseline the
    paper argues against.  Captures *current* addresses, so it goes
    stale under renumbering."""
    naddr, maddr, laddr = target.full_address
    return Pid(naddr, maddr, laddr)


def map_pid(pid: Pid, sender: SimProcess,
            receiver: SimProcess) -> Optional[Pid]:
    """Map an embedded pid across a sender→receiver hop (R(sender)).

    The pid is resolved in the sender's context and re-qualified
    minimally relative to the receiver, so the receiver's later
    resolutions denote the entity the *sender* meant.  Returns ``None``
    when the pid does not resolve for the sender (nothing meaningful
    can be mapped — the transport would reject the message).
    """
    target = resolve_pid(pid, sender)
    if target is None:
        return None
    return qualify(target, receiver)
