"""Partially qualified identifiers (§6 Example 1): pids, resolution,
the R(sender) mapping, wire policies, and relocation survival."""

from repro.pqid.mapping import fully_qualify, map_pid, qualify, resolve_pid
from repro.pqid.pid import Pid, Qualification, SELF_PID
from repro.pqid.relocation import PidReference, ReferenceTable
from repro.pqid.transport import (
    PidExchange,
    PidPolicy,
    exchange_outcome,
    send_pid,
)

__all__ = [
    "Pid",
    "PidExchange",
    "PidPolicy",
    "PidReference",
    "Qualification",
    "ReferenceTable",
    "SELF_PID",
    "exchange_outcome",
    "fully_qualify",
    "map_pid",
    "qualify",
    "resolve_pid",
    "send_pid",
]
