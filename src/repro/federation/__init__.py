"""The §7 architecture: shared name spaces in nested scopes, with
human prefix-mapping at scope boundaries."""

from repro.federation.mapping import PrefixMapping, mapping_burden
from repro.federation.scopes import FederationEnvironment, Scope

__all__ = [
    "FederationEnvironment",
    "PrefixMapping",
    "Scope",
    "mapping_burden",
]
