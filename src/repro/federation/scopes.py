"""Shared name spaces in limited scopes (§7).

"It is sufficient to share name spaces in a limited scope among
activities that have a high degree of interaction. ... Such a shared
name space should be attached by a common name to the contexts of
activities in the scope.  There may be several shared name spaces.
For example, the name space of home directories of different users in
an organization may be attached under the name /users, and the name
space of services may be attached under /services.  Some name spaces
may be shared under a common name within a group in an organization,
some in the entire organization itself, and some may be shared in even
larger scopes that cross organization boundaries."

:class:`Scope` models one scope (group ⊂ division ⊂ organization ⊂
inter-org): each publishes shared name spaces under common names.  An
activity spawned in a scope gets a private root with every shared
space of its scope *chain* attached under the space's common name —
inner scopes shadow outer ones on a name clash.

Crossing scope boundaries requires attaching a foreign name space
under a *different* name (``/org2/users``) — the human prefix-mapping
closure of :mod:`repro.federation.mapping`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FederationError
from repro.model.context import context_object
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName, check_atomic_name
from repro.model.state import GlobalState
from repro.namespaces.base import NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree

__all__ = ["Scope", "FederationEnvironment"]


class Scope:
    """One naming scope: a label, an optional parent, shared spaces."""

    def __init__(self, environment: "FederationEnvironment", label: str,
                 parent: Optional["Scope"] = None):
        self.environment = environment
        self.label = label
        self.parent = parent
        self.shared: dict[str, NamingTree] = {}

    def publish(self, common_name: str,
                tree: Optional[NamingTree] = None) -> NamingTree:
        """Publish a shared name space under *common_name* in this
        scope: every activity in scope sees it as ``/<common_name>``.
        """
        check_atomic_name(common_name)
        if common_name in self.shared:
            raise FederationError(
                f"scope {self.label!r} already shares {common_name!r}")
        if tree is None:
            tree = NamingTree(label=f"{self.label}:{common_name}",
                              sigma=self.environment.sigma,
                              parent_links=True)
        self.shared[common_name] = tree
        return tree

    def space(self, common_name: str) -> NamingTree:
        """The shared space published here under *common_name*."""
        try:
            return self.shared[common_name]
        except KeyError:
            raise FederationError(
                f"scope {self.label!r} shares no {common_name!r}") from None

    def chain(self) -> list["Scope"]:
        """This scope and its ancestors, innermost first."""
        out: list[Scope] = []
        scope: Optional[Scope] = self
        while scope is not None:
            out.append(scope)
            scope = scope.parent
        return out

    def visible_spaces(self) -> dict[str, NamingTree]:
        """Common name → space, over the whole chain (inner shadows
        outer)."""
        spaces: dict[str, NamingTree] = {}
        for scope in reversed(self.chain()):  # outermost first
            spaces.update(scope.shared)
        return spaces

    def __repr__(self) -> str:
        lineage = "/".join(s.label for s in reversed(self.chain()))
        return f"<Scope {lineage}>"


class FederationEnvironment(NamingScheme):
    """A federated environment of nested scopes (§7 architecture).

    >>> env = FederationEnvironment()
    >>> org = env.add_scope("org1")
    >>> _ = org.publish("users").mkfile("alice/plan")
    >>> p = env.spawn(org, "shell")
    >>> env.resolve_for(p, "/users/alice/plan").label
    'plan'
    """

    scheme_name = "federation"

    def __init__(self, sigma: Optional[GlobalState] = None):
        super().__init__(sigma)
        self._scopes: dict[str, Scope] = {}
        self._scope_of: dict[int, Scope] = {}
        self._roots: dict[int, ObjectEntity] = {}
        # Foreign imports replayed into future spawns of a scope:
        # scope label -> list of (alias prefix, foreign scope).
        self._imports: dict[str, list[tuple[str, Scope]]] = {}

    # -- scopes -----------------------------------------------------------

    def add_scope(self, label: str,
                  parent: Optional[Scope] = None) -> Scope:
        """Create a scope (a group, division, organization, ...)."""
        if label in self._scopes:
            raise FederationError(f"scope {label!r} already exists")
        scope = Scope(self, label, parent)
        self._scopes[label] = scope
        return scope

    def scope(self, label: str) -> Scope:
        try:
            return self._scopes[label]
        except KeyError:
            raise FederationError(f"unknown scope {label!r}") from None

    def scopes(self) -> list[Scope]:
        return [self._scopes[k] for k in sorted(self._scopes)]

    # -- activities -----------------------------------------------------------

    def spawn(self, scope: Scope, label: str,
              activity: Optional[Activity] = None) -> Activity:
        """Create an activity in *scope*: its context root has every
        in-scope shared space attached under its common name, plus any
        foreign imports registered for the scope."""
        root = context_object(f"ns:{label}")
        self.sigma.add(root)
        for common_name, tree in sorted(scope.visible_spaces().items()):
            root.state.bind(common_name, tree.root)
        for chain_scope in reversed(scope.chain()):  # outermost first
            for alias, foreign in self._imports.get(chain_scope.label, []):
                self._attach_foreign(root, alias, foreign)
        context = ProcessContext(root, label=f"ctx:{label}")
        target = activity if activity is not None else Activity(label)
        adopted = self.adopt_activity(target, context, group=scope.label)
        self._scope_of[adopted.uid] = scope
        self._roots[adopted.uid] = root
        return adopted

    def scope_of(self, activity: Activity) -> Scope:
        try:
            return self._scope_of[activity.uid]
        except KeyError:
            raise FederationError(
                f"{activity.label} was not spawned in a scope") from None

    # -- crossing scope boundaries ----------------------------------------------

    def import_foreign(self, scope: Scope, foreign: Scope,
                       alias: str) -> None:
        """Make *foreign*'s shared spaces visible in *scope* under
        ``/<alias>/<common_name>`` — §7's ``/org2/users`` attachment.

        Applies to existing and future activities of *scope* and of
        every scope nested inside it.
        """
        check_atomic_name(alias)
        if alias in scope.visible_spaces():
            raise FederationError(
                f"alias {alias!r} collides with a shared space in "
                f"{scope.label!r}")
        self._imports.setdefault(scope.label, []).append((alias, foreign))
        for activity in self._activities:
            activity_scope = self._scope_of.get(activity.uid)
            if activity_scope is not None and scope in activity_scope.chain():
                self._attach_foreign(self._roots[activity.uid],
                                     alias, foreign)

    def _attach_foreign(self, root: ObjectEntity, alias: str,
                        foreign: Scope) -> None:
        alias_dir = root.state(alias)
        if not alias_dir.is_defined():
            alias_dir = context_object(alias)
            self.sigma.add(alias_dir)
            root.state.bind(alias, alias_dir)
        for common_name, tree in sorted(foreign.visible_spaces().items()):
            alias_dir.state.bind(common_name, tree.root)

    # -- boundary mapping ---------------------------------------------------------

    def boundary_mapper(self):
        """A :class:`~repro.closure.boundary.NameMapper` automating the
        §7 human prefix mapping for names exchanged across top-level
        scopes.

        For a name whose first component is a shared space of the
        sender's top-level scope, the mapper prepends the alias under
        which the receiver's scope imported that foreign scope (the
        ``/org2`` of §7).  Same-top-scope traffic, non-shared names,
        and missing imports pass through (``None`` — untranslatable).
        """

        def mapper(sender: Activity, receiver: Activity,
                   name_: CompoundName) -> Optional[CompoundName]:
            try:
                sender_top = self.scope_of(sender).chain()[-1]
                receiver_scope = self.scope_of(receiver)
            except FederationError:
                return None
            if sender_top is receiver_scope.chain()[-1]:
                return name_
            if len(name_) == 0 or \
                    name_.parts[0] not in sender_top.visible_spaces():
                return None
            for chain_scope in receiver_scope.chain():
                for alias, foreign in self._imports.get(
                        chain_scope.label, []):
                    if foreign.chain()[-1] is sender_top:
                        return CompoundName((alias,) + name_.parts,
                                            rooted=name_.rooted)
            return None

        return mapper

    # -- probes --------------------------------------------------------------------

    def probe_names(self) -> list[CompoundName]:
        """``/<common>/…`` names over every scope's own shared spaces
        (textual dedup — two orgs' ``/users/…`` are the same *name*)."""
        unique: dict[CompoundName, None] = {}
        for scope in self.scopes():
            for common_name, tree in sorted(scope.shared.items()):
                unique.setdefault(CompoundName([common_name], rooted=True))
                for path in tree.all_paths():
                    unique.setdefault(
                        CompoundName((common_name,) + path.parts,
                                     rooted=True))
        return list(unique)
