"""Human prefix-mapping across scope boundaries (§7).

"When the first organization needs to refer to the home directories of
users in the second organization, it may have to attach the home
directories under the name /org2/users.  In such situations, one has
to rely on humans to map names by adding the prefix /org2.  ... The
mapping 'solution' can be viewed as a closure mechanism used by humans
to address incoherence."

:class:`PrefixMapping` is that human closure made explicit: a rule
that rewrites a foreign scope's names by adding an alias prefix.
:func:`mapping_burden` quantifies when the solution stops being
acceptable — "if the interaction across scope boundaries is high, then
mapping names can become a hindrance".
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.model.names import CompoundName, NameLike

__all__ = ["PrefixMapping", "mapping_burden"]


@dataclass(frozen=True)
class PrefixMapping:
    """A human mapping rule: names from *from_scope* are valid in
    *to_scope* after prefixing with *alias* (e.g. ``org2``)."""

    from_scope: str
    to_scope: str
    alias: str

    def apply(self, name_: NameLike) -> CompoundName:
        """``/users/alice`` → ``/org2/users/alice``."""
        name_ = CompoundName.coerce(name_)
        return CompoundName((self.alias,) + name_.parts,
                            rooted=name_.rooted)

    def unapply(self, name_: NameLike) -> CompoundName:
        """Strip the alias prefix (the inverse direction)."""
        name_ = CompoundName.coerce(name_)
        if not name_.parts or name_.parts[0] != self.alias:
            return name_
        return CompoundName(name_.parts[1:], rooted=name_.rooted)

    def __str__(self) -> str:
        return (f"{self.from_scope}→{self.to_scope}: "
                f"add prefix /{self.alias}")


def mapping_burden(names_crossing: Iterable[NameLike],
                   total_uses: int) -> dict[str, float]:
    """Quantify the §7 trade-off for a workload.

    Args:
        names_crossing: Name uses that crossed a scope boundary (and
            therefore needed a human mapping).
        total_uses: All name uses in the workload.

    Returns:
        ``{"crossing": n, "total": N, "burden": n/N}`` — the fraction
        of uses a human had to rewrite.  When the burden is high the
        paper's advice is to enlarge the scope.
    """
    crossing = sum(1 for _ in names_crossing)
    burden = (crossing / total_uses) if total_uses else 0.0
    return {"crossing": float(crossing), "total": float(total_uses),
            "burden": burden}
