"""The transport subsystem: one protocol, two substrates.

The naming protocol's coherence behaviour is defined over messages
and timeouts, so this package pins down the seam
(:mod:`~repro.transport.base`) and provides two implementations:

* :class:`SimTransport` — a thin adapter over the deterministic
  simulator kernel (virtual time, seeded RNG, pinned event order);
* :class:`AsyncioTransport` — real asyncio TCP over localhost with
  length-prefixed JSON framing (:mod:`~repro.transport.framing`),
  entity/lease wire codecs (:mod:`~repro.transport.wire`) and
  wall-clock timers.

``tests/transport/test_parity.py`` runs the same seeded
lookup/rebind/invalidate script on both and asserts identical
resolution outcomes and coherence-audit verdicts; see
``docs/transport.md`` for the design.
"""

from repro.transport.base import (Endpoint, Envelope, Timer, Transport,
                                  as_transport)
from repro.transport.framing import (MAX_FRAME, FrameDecoder, FrameError,
                                     encode_frame, iter_frames)
from repro.transport.leases import AckWaiter, callback_fanout_async
from repro.transport.sim import SimEndpoint, SimTransport
from repro.transport.wire import (DirectoryRegistry, EntityProxyCache,
                                  RemoteContext, RemoteDirectory,
                                  RemoteEntity, WireCodec, describe_entity,
                                  remote_uid_of)

__all__ = [
    "Endpoint", "Envelope", "Timer", "Transport", "as_transport",
    "SimEndpoint", "SimTransport",
    "AsyncioTransport", "AsyncioEndpoint", "Address",
    "MAX_FRAME", "FrameDecoder", "FrameError", "encode_frame",
    "iter_frames",
    "DirectoryRegistry", "EntityProxyCache", "RemoteContext",
    "RemoteDirectory", "RemoteEntity", "WireCodec", "describe_entity",
    "remote_uid_of",
    "AckWaiter", "callback_fanout_async",
]


def __getattr__(name):  # lazy: keep sim-only imports asyncio-free
    if name in ("AsyncioTransport", "AsyncioEndpoint", "Address"):
        from repro.transport import aio
        return getattr(aio, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
