"""AsyncioTransport: the naming protocol on real TCP sockets.

The second implementation of the seam (:mod:`repro.transport.base`):
endpoints are named mailboxes multiplexed over real asyncio TCP
connections, frames are length-prefixed JSON
(:mod:`repro.transport.framing`), payloads cross through a
:class:`~repro.transport.wire.WireCodec`, and timers run on the wall
clock — so the *identical* lookup/retry/lease client code backs off
in real seconds.

Topology model:

* A **serving** transport calls :meth:`AsyncioTransport.listen`; each
  accepted connection gets a reader task that reassembles frames and
  dispatches them to the addressed endpoint.
* A **connecting** transport sends to ``(host, port, label)``
  addresses; connections are pooled per ``(host, port)`` and opened
  lazily on first send (frames queue while the dial is in flight).
* Replies travel back over the *same* connection: a received
  envelope's ``sender`` is a :class:`ConnAddress` bound to the live
  connection, so clients never need to listen.

Failure semantics mirror the simulator's: a frame toward a dead or
unreachable peer is *dropped* (counted in ``frames_dropped``), and
the protocol's timeout/retry machinery — unchanged — turns the loss
into a backoff and resend.  ``send`` never blocks and never raises
for network reasons.

Like the simulator, ``send`` returns the envelope before the bytes
leave (serialization happens on the next loop tick), so callers
attach trace context exactly as they do on the kernel.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs.instrument import NO_OBS, Instrumentation
from repro.transport.base import Endpoint, Handler, Timer, Transport
from repro.transport.framing import FrameDecoder, FrameError, encode_frame
from repro.transport.wire import WireCodec

__all__ = ["Address", "ConnAddress", "AsyncioEnvelope",
           "AsyncioEndpoint", "AsyncioTransport"]


class Address(tuple):
    """A dialable endpoint address: ``(host, port, label)``."""

    __slots__ = ()

    def __new__(cls, host: str, port: int, label: str):
        return super().__new__(cls, (host, int(port), label))

    @property
    def host(self) -> str:
        return self[0]

    @property
    def port(self) -> int:
        return self[1]

    @property
    def label(self) -> str:
        return self[2]

    def __repr__(self) -> str:
        return f"{self[0]}:{self[1]}/{self[2]}"


class ConnAddress:
    """A reply address: an endpoint label reachable over a live
    connection (how a server answers a non-listening client)."""

    __slots__ = ("conn", "label")

    def __init__(self, conn: "_Connection", label: str):
        self.conn = conn
        self.label = label

    @property
    def session_id(self) -> int:
        """The connection's transport-unique id — a stable stand-in
        for "which client machine" (e.g. lease holder identity)."""
        return self.conn.session_id

    def __repr__(self) -> str:
        return f"<ConnAddress {self.label!r} via conn#{self.conn.session_id}>"


class AsyncioEnvelope:
    """One in-flight payload (see :class:`repro.transport.base.Envelope`)."""

    __slots__ = ("payload", "sender", "trace_id", "parent_span_id")

    def __init__(self, payload: Any, sender: Any = None):
        self.payload = payload
        self.sender = sender
        self.trace_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None


class _Connection:
    """One TCP connection: reader task + framed writes."""

    _ids = itertools.count(1)

    def __init__(self, transport: "AsyncioTransport",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 peer_key: Optional[tuple[str, int]] = None):
        self.transport = transport
        self.reader = reader
        self.writer = writer
        self.peer_key = peer_key
        self.session_id = next(_Connection._ids)
        self.closed = False
        self.decoder = FrameDecoder()
        self.reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                for frame in self.decoder.feed(data):
                    self.transport._dispatch(frame, self)
        except (ConnectionError, FrameError, asyncio.CancelledError):
            pass
        finally:
            self._mark_closed()

    def send_frame(self, frame: dict) -> bool:
        if self.closed or self.writer.is_closing():
            return False
        try:
            self.writer.write(encode_frame(frame))
        except (ConnectionError, RuntimeError):
            self._mark_closed()
            return False
        return True

    def _mark_closed(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.transport._forget_connection(self)
        try:
            self.writer.close()
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    async def aclose(self) -> None:
        self._mark_closed()
        self.reader_task.cancel()
        try:
            await self.reader_task
        except asyncio.CancelledError:  # pragma: no cover
            pass


class _Peer:
    """Outbound state toward one (host, port): a connection or a dial
    in flight with frames queued behind it."""

    __slots__ = ("conn", "queue", "dialing")

    def __init__(self) -> None:
        self.conn: Optional[_Connection] = None
        self.queue: list[dict] = []
        self.dialing = False


class AsyncioEndpoint(Endpoint):
    """A named mailbox on an :class:`AsyncioTransport`."""

    def __init__(self, transport: "AsyncioTransport", label: str):
        self.transport = transport
        self.label = label
        self._handler: Optional[Handler] = None

    def on_message(self, handler: Handler) -> None:
        self._handler = handler

    def send(self, target: Any, payload: Any = None,
             latency: Optional[float] = None) -> AsyncioEnvelope:
        # latency is a simulator hint; the real network sets its own.
        envelope = AsyncioEnvelope(payload)
        self.transport._post(self, target, envelope)
        return envelope

    @property
    def node(self) -> Any:
        return (self.transport.host, self.transport.port)

    @property
    def address(self) -> Address:
        """This endpoint's dialable address (listening transports)."""
        if self.transport.port is None:
            raise SimulationError(
                f"endpoint {self.label!r}: transport is not listening")
        return Address(self.transport.host, self.transport.port,
                       self.label)

    def _deliver(self, envelope: AsyncioEnvelope) -> None:
        if self._handler is not None:
            self._handler(self, envelope)

    def __repr__(self) -> str:
        return f"<AsyncioEndpoint {self.label!r}>"


class AsyncioTransport(Transport):
    """The real-socket substrate behind the transport seam.

    Args:
        seed: Seeds :attr:`rng` (backoff jitter) — schedules are
            reproducible per seed even though delivery timing is not.
        obs: Instrumentation; spans/metrics get wall-clock times.
        codec: The :class:`~repro.transport.wire.WireCodec` applied to
            every payload (default: pass-through for JSON-framable
            payloads; servers pass one wired to their registry,
            clients one wired to their proxy cache).

    Counters (plain ints, mirroring the kernel's message totals):
    ``frames_sent``, ``frames_delivered``, ``frames_dropped``.
    """

    kind = "asyncio"

    def __init__(self, *, seed: int = 0,
                 obs: Optional[Instrumentation] = None,
                 codec: Optional[WireCodec] = None):
        self.rng = random.Random(seed)
        self.obs = obs if obs is not None else NO_OBS
        self.codec = codec if codec is not None else WireCodec()
        self.host: str = "127.0.0.1"
        self.port: Optional[int] = None
        self._endpoints: dict[str, AsyncioEndpoint] = {}
        self._peers: dict[tuple[str, int], _Peer] = {}
        self._accepted: list[_Connection] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0

    # -- Transport contract ------------------------------------------------

    def now(self) -> float:
        """Wall-clock seconds (monotonic — same clock asyncio timers
        fire on, so deadlines and ``now()`` agree)."""
        return time.monotonic()

    def schedule(self, delay: float, action: Callable[[], None],
                 note: str = "") -> Timer:
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        return asyncio.get_running_loop().call_later(delay, action)

    def endpoint(self, node: Any = None,
                 label: str = "") -> AsyncioEndpoint:
        if not label:
            label = f"endpoint-{len(self._endpoints) + 1}"
        existing = self._endpoints.get(label)
        if existing is not None:
            return existing
        endpoint = AsyncioEndpoint(self, label)
        self._endpoints[label] = endpoint
        return endpoint

    # -- lifecycle ---------------------------------------------------------

    async def listen(self, host: str = "127.0.0.1",
                     port: int = 0) -> Address:
        """Start accepting connections; returns the bound address
        (with the endpoint label left empty)."""
        self._server = await asyncio.start_server(
            self._on_accept, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return Address(self.host, self.port, "")

    async def aclose(self) -> None:
        """Close the listener and every connection (both directions)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        conns = [peer.conn for peer in self._peers.values()
                 if peer.conn is not None]
        conns.extend(self._accepted)
        self._peers.clear()
        self._accepted = []
        for conn in conns:
            await conn.aclose()

    async def _on_accept(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        self._accepted.append(_Connection(self, reader, writer))

    # -- outbound ----------------------------------------------------------

    def _post(self, sender: AsyncioEndpoint, target: Any,
              envelope: AsyncioEnvelope) -> None:
        """Schedule the write for the next loop tick, so the caller
        may attach trace context after ``send`` returns — the same
        contract the simulator's ``send`` gives its callers."""
        self.frames_sent += 1
        asyncio.get_running_loop().call_soon(
            self._write, sender, target, envelope)

    def _write(self, sender: AsyncioEndpoint, target: Any,
               envelope: AsyncioEnvelope) -> None:
        frame = {"to": None, "frm": sender.label,
                 "p": self.codec.encode(envelope.payload),
                 "t": [envelope.trace_id, envelope.parent_span_id]}
        if isinstance(target, AsyncioEndpoint):
            # Loopback: still round-trip the codec, so in-process
            # endpoints see exactly the wire's visible payloads.
            frame["to"] = target.label
            self._deliver_local(frame, conn=None)
            return
        if isinstance(target, ConnAddress):
            frame["to"] = target.label
            if not target.conn.send_frame(frame):
                self.frames_dropped += 1
            return
        if isinstance(target, tuple) and len(target) == 3:
            host, port, label = target
            frame["to"] = label
            self._send_dialed((host, int(port)), frame)
            return
        raise SimulationError(
            f"AsyncioEndpoint cannot address {target!r}")

    def _send_dialed(self, key: tuple[str, int], frame: dict) -> None:
        peer = self._peers.get(key)
        if peer is None:
            peer = self._peers[key] = _Peer()
        if peer.conn is not None:
            if not peer.conn.send_frame(frame):
                self.frames_dropped += 1
            return
        peer.queue.append(frame)
        if not peer.dialing:
            peer.dialing = True
            asyncio.get_running_loop().create_task(self._dial(key, peer))

    async def _dial(self, key: tuple[str, int], peer: _Peer) -> None:
        try:
            reader, writer = await asyncio.open_connection(*key)
        except OSError:
            # Unreachable peer: the queued frames are lost exactly as
            # a partitioned simulator message would be — the caller's
            # timeout/retry machinery owns recovery.
            self.frames_dropped += len(peer.queue)
            peer.queue = []
            peer.dialing = False
            return
        peer.conn = _Connection(self, reader, writer, peer_key=key)
        peer.dialing = False
        queued, peer.queue = peer.queue, []
        for frame in queued:
            if not peer.conn.send_frame(frame):
                self.frames_dropped += 1

    def _forget_connection(self, conn: _Connection) -> None:
        if conn.peer_key is not None:
            peer = self._peers.get(conn.peer_key)
            if peer is not None and peer.conn is conn:
                peer.conn = None
        if conn in self._accepted:
            self._accepted.remove(conn)

    # -- inbound -----------------------------------------------------------

    def _dispatch(self, frame: dict, conn: _Connection) -> None:
        endpoint = self._endpoints.get(frame.get("to"))
        if endpoint is None:
            self.frames_dropped += 1
            return
        envelope = AsyncioEnvelope(
            self.codec.decode(frame.get("p")),
            sender=ConnAddress(conn, frame.get("frm", "")))
        trace = frame.get("t") or (None, None)
        envelope.trace_id, envelope.parent_span_id = trace[0], trace[1]
        self.frames_delivered += 1
        endpoint._deliver(envelope)

    def _deliver_local(self, frame: dict, conn: Optional[_Connection],
                       ) -> None:
        endpoint = self._endpoints.get(frame.get("to"))
        if endpoint is None:
            self.frames_dropped += 1
            return
        # Decode through the codec like any inbound frame; the sender
        # address is the local endpoint itself.
        envelope = AsyncioEnvelope(
            self.codec.decode(frame.get("p")),
            sender=self._endpoints.get(frame.get("frm")))
        trace = frame.get("t") or (None, None)
        envelope.trace_id, envelope.parent_span_id = trace[0], trace[1]
        self.frames_delivered += 1
        endpoint._deliver(envelope)

    def __repr__(self) -> str:
        where = (f"{self.host}:{self.port}" if self.port is not None
                 else "not listening")
        return (f"<AsyncioTransport {where} sent={self.frames_sent} "
                f"delivered={self.frames_delivered} "
                f"dropped={self.frames_dropped}>")
