"""Wire codec: protocol payloads ⇄ JSON-framable values.

On the simulator, protocol payloads carry live Python objects — a
lookup request holds the actual :class:`~repro.model.entities.
ObjectEntity` directory, a reply holds the resolved
:class:`~repro.model.entities.Entity`.  Real sockets carry bytes, so
this module defines the mapping both sides agree on:

* **Server side** — a :class:`DirectoryRegistry` maps entity uids to
  the server's live entities; decoding a lookup request turns the
  wire's ``directory`` uid back into the registered context object
  (an unknown uid decodes to ``⊥E``, which the lookup server answers
  as unbound — never a crash).  Encoding a reply flattens the entity
  to a :func:`describe_entity` descriptor.
* **Client side** — an :class:`EntityProxyCache` turns descriptors
  into *proxies*: :class:`RemoteDirectory` (an object entity whose
  state is a :class:`RemoteContext`, so the client's walk steps into
  it exactly as it would a local directory) and :class:`RemoteEntity`
  leaves.  Proxies are cached by remote uid, so the same remote
  entity is the *same* proxy across lookups — entity-identity
  comparisons (and the `⊥E`-vs-defined distinction) behave exactly as
  they do locally.

Lease dependency keys (``DepKey = (kind, uid, component)`` tuples)
cross the wire as lists and are re-tupled on decode, so
:class:`~repro.nameservice.leases.LeaseTable` revocation works on
identical keys on both substrates.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY

__all__ = ["RemoteContext", "RemoteEntity", "RemoteDirectory",
           "DirectoryRegistry", "EntityProxyCache", "WireCodec",
           "describe_entity", "remote_uid_of"]


class RemoteContext(Context):
    """A directory's client-side context: binds nothing locally.

    Stepping *into* it is meaningful (the router sends the next
    component to the owning server); *calling* it locally yields
    ``⊥E`` for every name, which is exactly right — the client holds
    no local bindings for a remote directory.
    """

    __slots__ = ()


class RemoteEntity(ObjectEntity):
    """A client-side proxy for an entity living on a server.

    ``remote_uid`` is the *server's* uid — the identity the wire
    protocol (and lease dependency keys) speak; the proxy's own
    ``uid`` is minted locally and never crosses the wire.
    """

    __slots__ = ("remote_uid",)

    def __init__(self, remote_uid: int, label: str = ""):
        super().__init__(label)
        self.remote_uid = remote_uid

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.label!r} "
                f"remote#{self.remote_uid}>")


class RemoteDirectory(RemoteEntity):
    """A proxy for a remote *context object* (a directory)."""

    __slots__ = ()

    def __init__(self, remote_uid: int, label: str = ""):
        super().__init__(remote_uid, label)
        self.state = RemoteContext(label=label)


def remote_uid_of(entity: Entity) -> int:
    """The uid an entity is known by on the wire: its ``remote_uid``
    for proxies, its own uid for live entities."""
    if isinstance(entity, RemoteEntity):
        return entity.remote_uid
    return entity.uid


def describe_entity(entity: Optional[Entity]) -> Optional[dict]:
    """Flatten an entity to its wire descriptor (``None`` for ``⊥E``)."""
    if entity is None or not entity.is_defined():
        return None
    return {"uid": remote_uid_of(entity), "label": entity.label,
            "dir": bool(entity.is_context_object()
                        or isinstance(entity, RemoteDirectory))}


class DirectoryRegistry:
    """Server side: uid → live entity, for decoding wire references."""

    def __init__(self) -> None:
        self._by_uid: dict[int, Entity] = {}

    def register(self, entity: Entity) -> Entity:
        self._by_uid[entity.uid] = entity
        return entity

    def register_tree(self, root: Entity) -> int:
        """Register *root* and every entity reachable through context
        states (the whole served namespace).  Returns the count."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            entity = stack.pop()
            if entity.uid in seen or not entity.is_defined():
                continue
            seen.add(entity.uid)
            self._by_uid[entity.uid] = entity
            state = entity.state
            if isinstance(state, Context):
                stack.extend(state.bindings.values())
        return len(seen)

    def get(self, uid: int) -> Entity:
        """The registered entity, or ``⊥E`` for unknown uids."""
        return self._by_uid.get(uid, UNDEFINED_ENTITY)

    def __len__(self) -> int:
        return len(self._by_uid)


class EntityProxyCache:
    """Client side: descriptor → proxy, stable per remote uid."""

    def __init__(self) -> None:
        self._proxies: dict[int, RemoteEntity] = {}

    def proxy(self, descriptor: Optional[dict]) -> Entity:
        if descriptor is None:
            return UNDEFINED_ENTITY
        uid = descriptor["uid"]
        proxy = self._proxies.get(uid)
        if proxy is None:
            cls = RemoteDirectory if descriptor.get("dir") else RemoteEntity
            proxy = cls(uid, descriptor.get("label", ""))
            self._proxies[uid] = proxy
        return proxy

    def __len__(self) -> int:
        return len(self._proxies)


def _dep_to_wire(dep: Any) -> Any:
    return list(dep) if isinstance(dep, tuple) else dep


def _dep_from_wire(dep: Any) -> Any:
    return tuple(dep) if isinstance(dep, list) else dep


class WireCodec:
    """Encode/decode the protocol's payload dicts for framing.

    One codec instance serves one side of a connection:

    * servers pass a :class:`DirectoryRegistry` so incoming
      ``lookup.directory`` uids decode to live entities;
    * clients pass an :class:`EntityProxyCache` so incoming
      ``reply.entity`` descriptors decode to stable proxies.

    Payload kinds outside the protocol vocabulary must already be
    JSON-framable and pass through untouched, so demo/control traffic
    needs no codec support.
    """

    def __init__(self, registry: Optional[DirectoryRegistry] = None,
                 proxies: Optional[EntityProxyCache] = None):
        self.registry = registry
        self.proxies = proxies

    # -- encode (payload → JSONable) ------------------------------------

    def encode(self, payload: Any) -> Any:
        if not isinstance(payload, dict):
            return payload
        if "lookup" in payload:
            request = dict(payload["lookup"])
            request["directory"] = remote_uid_of(request["directory"])
            return {"lookup": request}
        if "reply" in payload:
            reply = dict(payload["reply"])
            reply["entity"] = describe_entity(reply.get("entity"))
            return {"reply": reply}
        if "lease" in payload:
            body = dict(payload["lease"])
            if "dep" in body:
                body["dep"] = _dep_to_wire(body["dep"])
            return {"lease": body}
        return payload

    # -- decode (JSONable → payload) ------------------------------------

    def decode(self, payload: Any) -> Any:
        if not isinstance(payload, dict):
            return payload
        if "lookup" in payload:
            request = dict(payload["lookup"])
            uid = request["directory"]
            request["directory"] = (self.registry.get(uid)
                                    if self.registry is not None
                                    else UNDEFINED_ENTITY)
            return {"lookup": request}
        if "reply" in payload:
            reply = dict(payload["reply"])
            descriptor = reply.get("entity")
            if self.proxies is not None:
                entity = self.proxies.proxy(descriptor)
            else:
                entity = (self.registry.get(descriptor["uid"])
                          if self.registry is not None
                          and descriptor is not None
                          else UNDEFINED_ENTITY)
            reply["entity"] = entity if entity.is_defined() else None
            return {"reply": reply}
        if "lease" in payload:
            body = dict(payload["lease"])
            if "dep" in body:
                body["dep"] = _dep_from_wire(body["dep"])
            return {"lease": body}
        return payload
