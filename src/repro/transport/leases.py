"""Lease break-callback fan-out over the transport seam.

:func:`repro.nameservice.leases.callback_fanout` is the simulator's
bounded-retry delivery loop: it *blocks* between attempts by spending
virtual time.  A real event loop cannot block, so
:func:`callback_fanout_async` is the same control flow — same
attempt bounds, same :class:`~repro.nameservice.retry.RetryPolicy`
backoff draws, same :class:`~repro.nameservice.retry.CircuitBreaker`
bookkeeping (skip-when-open, probe on half-open, trip mid-holder),
same :class:`~repro.nameservice.leases.FanoutReport` accounting —
with ``await`` at the two points the sim version waits.  The policy
objects are *shared*, not reimplemented: a fan-out is driven by the
identical ``RetryPolicy``/``CircuitBreaker`` instances whichever
substrate delivers the callbacks, and
``tests/transport/test_lease_fanout.py`` pins the two drivers to
identical reports over scripted delivery schedules.

:class:`AckWaiter` is the small matching table a real server needs:
break callbacks are fire-and-forget frames, so the deliverer awaits
the holder's ack (matched by ``(dep, session)``) under a wall-clock
deadline — an unacked callback is a failed attempt, exactly like an
undelivered simulator message.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Optional

from repro.nameservice.leases import FanoutReport, Lease
from repro.nameservice.retry import CircuitBreaker, RetryPolicy

__all__ = ["callback_fanout_async", "AckWaiter"]


async def callback_fanout_async(
        holders: list[Lease], *,
        now: Callable[[], float],
        rng,
        deliver: Callable[[Lease, int], Awaitable[bool]],
        retry_policy: Optional[RetryPolicy],
        breaker_for: Callable[[Lease], Optional[CircuitBreaker]],
        on_broken: Callable[[Lease], None],
        wait: Optional[Callable[[float], Awaitable[None]]] = None,
) -> FanoutReport:
    """Drive callback delivery to every lease holder, with retries.

    The async twin of :func:`repro.nameservice.leases.callback_fanout`
    — see there for the full semantics.  *deliver* is awaited (send
    the callback, await its ack, return True on success); *wait*
    defaults to :func:`asyncio.sleep`, i.e. real backoff seconds.
    """
    if wait is None:
        wait = asyncio.sleep
    report = FanoutReport()
    attempts_per = 1 if retry_policy is None else retry_policy.max_attempts
    for lease in holders:
        breaker = breaker_for(lease)
        if breaker is not None and not breaker.allow(now()):
            report.skipped += 1
            report.broken += 1
            on_broken(lease)
            continue
        delivered = False
        for attempt in range(1, attempts_per + 1):
            report.attempts += 1
            if await deliver(lease, attempt):
                delivered = True
                if breaker is not None:
                    breaker.record_success(now())
                break
            if breaker is not None:
                breaker.record_failure(now())
            if attempt < attempts_per and retry_policy is not None:
                await wait(retry_policy.backoff(attempt, rng))
            if breaker is not None and not breaker.allow(now()):
                break  # tripped mid-holder: stop burning attempts
        if delivered:
            report.notified += 1
        else:
            report.broken += 1
            on_broken(lease)
    return report


class AckWaiter:
    """Matches awaited acks to ``(key)`` under wall-clock deadlines.

    The deliverer calls :meth:`expect` before sending, then awaits
    :meth:`wait`; the receive path calls :meth:`resolve` when the ack
    frame lands.  Unmatched acks (late, duplicate) are counted, never
    raised — mirroring the protocol's late-reply discipline.
    """

    def __init__(self) -> None:
        self._pending: dict[Any, asyncio.Future] = {}
        self.late_acks = 0

    def expect(self, key: Any) -> None:
        loop = asyncio.get_running_loop()
        self._pending[key] = loop.create_future()

    async def wait(self, key: Any, timeout: float) -> bool:
        """True if the ack for *key* arrives within *timeout* seconds."""
        future = self._pending.get(key)
        if future is None:  # pragma: no cover - defensive
            return False
        try:
            await asyncio.wait_for(asyncio.shield(future), timeout)
            return True
        except asyncio.TimeoutError:
            return False
        finally:
            self._pending.pop(key, None)

    def resolve(self, key: Any) -> bool:
        """Mark *key*'s ack as arrived; False (and counted) if nobody
        is waiting for it."""
        future = self._pending.get(key)
        if future is None or future.done():
            self.late_acks += 1
            return False
        future.set_result(True)
        return True

    def __len__(self) -> int:
        return len(self._pending)
