"""Naming over real sockets: server host + remote client glue.

:class:`NamingService` serves a namespace over an
:class:`~repro.transport.aio.AsyncioTransport`: the *unchanged*
:class:`~repro.nameservice.protocol.NameLookupServer` answers lookup
steps, a small control endpoint (``ctl``) answers hello/lease/rebind
requests, and rebinds fan break callbacks out to lease holders with
:func:`~repro.transport.leases.callback_fanout_async` — driven by the
same :class:`~repro.nameservice.leases.LeaseManager`,
:class:`~repro.nameservice.retry.RetryPolicy` and wall-clock-bound
:class:`~repro.nameservice.retry.CircuitBreaker` objects the
simulator uses.

:class:`RemoteNameClient` is the other half: it wraps the *unchanged*
:class:`~repro.nameservice.protocol.AsyncNameClient` with a
:class:`RemoteRouter` (every remote-directory step goes to a server
address; resends fail over to the next replica), a proxy-cache codec,
and awaitable conveniences (:meth:`RemoteNameClient.resolve` turns
the completion-callback API into a coroutine).  Lease holders are
identified by connection session, so a multi-process demo
(``tools/serve_names.py``) gets real grant → rebind → break → ack
round trips over localhost.

The control vocabulary is plain JSON (the wire codec passes ``ctl``
payloads through untouched):

* ``{"ctl": {"op": "hello"}}`` → ``welcome`` with the root entity
  descriptor and the lookup endpoint's label;
* ``{"ctl": {"op": "lease-grant", "dep": [...]}}`` →
  ``lease-granted`` with the term (holder = the sending connection);
* ``{"ctl": {"op": "rebind", "path": [...], "label": ..,
  "dir": bool}}`` → break callbacks fan out to holders, then
  ``rebound`` reports the :class:`~repro.nameservice.leases.
  FanoutReport` counts;
* ``{"ctl": {"op": "stats"}}`` → server counters (requests served,
  frames, leases) for smoke checks.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Optional

from repro.errors import SchemeError
from repro.model.context import Context, context_object
from repro.model.entities import Entity, ObjectEntity
from repro.model.names import ROOT_NAME
from repro.nameservice.leases import LeaseManager, LeaseTable
from repro.nameservice.protocol import AsyncNameClient, NameLookupServer
from repro.nameservice.retry import CircuitBreaker, RetryPolicy
from repro.obs.instrument import Instrumentation
from repro.transport.aio import Address, AsyncioTransport
from repro.transport.base import Endpoint
from repro.transport.leases import AckWaiter, callback_fanout_async
from repro.transport.wire import (DirectoryRegistry, EntityProxyCache,
                                  RemoteEntity, WireCodec, describe_entity,
                                  remote_uid_of)

__all__ = ["RemoteRouter", "NamingService", "RemoteNameClient"]

CTL_LABEL = "ctl"


class RemoteRouter:
    """Client-side routing: remote-directory steps go to a server.

    Every step whose directory is a :class:`~repro.transport.wire.
    RemoteEntity` proxy is sent to the current server address; steps
    through local contexts stay local (so a client may mix local
    bindings with the remote namespace).  :meth:`retarget` — the
    resend path — fails over to the next address in the list, making
    a replicated deployment survive a crashed replica exactly like
    the simulator's placement failover.
    """

    def __init__(self, addresses: Optional[list[Address]] = None):
        self.addresses: list[Address] = list(addresses or [])
        self.cursor = 0
        self.failovers = 0

    def _current(self) -> Address:
        if not self.addresses:
            raise SchemeError("RemoteRouter has no server addresses")
        return self.addresses[self.cursor % len(self.addresses)]

    def target_for(self, directory: Optional[ObjectEntity],
                   component: str) -> Any:
        if isinstance(directory, RemoteEntity):
            return self._current()
        return None

    def retarget(self, directory: ObjectEntity, component: str) -> Any:
        if len(self.addresses) > 1:
            self.cursor = (self.cursor + 1) % len(self.addresses)
            self.failovers += 1
        return self._current()


class NamingService:
    """Serve a namespace root over asyncio TCP.

    Args:
        root: The namespace root (a context object); the whole
            reachable tree is registered for wire decoding.
        seed: Seeds the transport RNG (fan-out backoff jitter).
        obs: Instrumentation (spans/metrics on the wall clock).
        lease_term: Server-side lease term, wall seconds.
        retry_policy: Break-callback retry discipline (``None`` = one
            attempt, no backoff).
        ack_timeout: Wall seconds to await each break callback's ack.
        label: The lookup endpoint's label.
        auditor: Optional :class:`~repro.obs.audit.CoherenceAuditor`;
            wired onto the lookup server (every served step audited)
            and fed ``record_write`` on every control-plane rebind.
    """

    def __init__(self, root: Entity, *, seed: int = 0,
                 obs: Optional[Instrumentation] = None,
                 lease_term: float = 30.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 ack_timeout: float = 1.0,
                 label: str = "lookupd",
                 auditor: Any = None):
        self.root = root
        self.registry = DirectoryRegistry()
        self.registry.register_tree(root)
        self.transport = AsyncioTransport(
            seed=seed, obs=obs, codec=WireCodec(registry=self.registry))
        self.server = NameLookupServer(self.transport, None, label)
        if auditor is not None:
            self.server.auditor = auditor
        self.auditor = auditor
        self.leases = LeaseManager(term=lease_term,
                                   retry_policy=retry_policy,
                                   obs=obs)
        self.retry_policy = retry_policy
        self.ack_timeout = ack_timeout
        self.acks = AckWaiter()
        self.epoch = 0
        self.rebinds = 0
        self._holders: dict[int, Any] = {}  # session id → reply address
        self.ctl = self.transport.endpoint(label=CTL_LABEL)
        self.ctl.on_message(self._on_ctl)
        self.address: Optional[Address] = None

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Address:
        """Bind and listen; returns the lookup endpoint's address."""
        bound = await self.transport.listen(host, port)
        self.address = Address(bound.host, bound.port,
                               self.server.endpoint.label)
        return self.address

    async def aclose(self) -> None:
        await self.transport.aclose()

    # -- control plane -----------------------------------------------------

    def _on_ctl(self, endpoint: Endpoint, message: Any) -> None:
        payload = message.payload
        if not isinstance(payload, dict):
            return
        if "lease" in payload:  # ack riding back on the ctl label
            body = payload["lease"]
            if body.get("op") == "ack":
                self._on_ack(message.sender, body)
            return
        body = payload.get("ctl")
        if not isinstance(body, dict):
            return
        op = body.get("op")
        if op == "hello":
            endpoint.send(message.sender, payload={"ctl": {
                "op": "welcome",
                "root": describe_entity(self.root),
                "lookup": self.server.endpoint.label,
            }})
        elif op == "lease-grant":
            self._grant(message.sender, body)
        elif op == "rebind":
            asyncio.get_running_loop().create_task(
                self._rebind(message.sender, body))
        elif op == "stats":
            endpoint.send(message.sender, payload={"ctl": {
                "op": "stats-reply",
                "requests_served": self.server.requests_served,
                "rebinds": self.rebinds,
                "leases": self.leases.stats(),
                "frames_delivered": self.transport.frames_delivered,
                "frames_dropped": self.transport.frames_dropped,
            }})

    def _grant(self, sender: Any, body: dict) -> None:
        dep = tuple(body["dep"])
        session = sender.session_id
        self._holders[session] = sender
        now = self.transport.now()
        lease = self.leases.grant(session, dep, now, self.epoch,
                                  machine_label=f"conn#{session}")
        self.ctl.send(sender, payload={"ctl": {
            "op": "lease-granted", "dep": list(dep),
            "term": self.leases.term, "epoch": lease.epoch,
        }})

    def _breaker_for(self, lease: Any) -> CircuitBreaker:
        # Wall-clock-bound breakers (retry.CircuitBreaker clock=):
        # the manager's cache keeps them per holder, we bind the
        # transport clock on first creation.
        breaker = self.leases.breaker_for_machine(
            lease.machine_id, label=lease.machine_label)
        if breaker.clock is None:
            breaker.clock = self.transport.now
        return breaker

    async def _rebind(self, reply_to: Any, body: dict) -> None:
        """Rebind a path server-side, then break holders' leases."""
        path = list(body["path"])
        now = self.transport.now()
        parent: Entity = self.root
        for component in path[:-1]:
            parent = parent.state(component)
            if not parent.is_context_object():
                self.ctl.send(reply_to, payload={"ctl": {
                    "op": "rebound", "path": path,
                    "error": f"not a directory at {component!r}"}})
                return
        component = path[-1]
        context: Context = parent.state
        old = context(component)
        if body.get("dir"):
            new: Entity = context_object(body.get("label", component))
        else:
            new = ObjectEntity(body.get("label", component))
        context.bind(component, new)
        self.registry.register(new)
        self.rebinds += 1
        if self.auditor is not None:
            self.auditor.record_write(parent, component, old, new,
                                      now, self.epoch)
        dep = ("binding", remote_uid_of(parent), component)
        holders = self.leases.holders_of(dep, now)
        report = await callback_fanout_async(
            holders, now=self.transport.now, rng=self.transport.rng,
            deliver=self._deliver_break,
            retry_policy=self.retry_policy,
            breaker_for=self._breaker_for,
            on_broken=lambda lease: self.leases.break_lease(
                lease, self.transport.now()))
        self.ctl.send(reply_to, payload={"ctl": {
            "op": "rebound", "path": path,
            "notified": report.notified, "broken": report.broken,
            "attempts": report.attempts, "skipped": report.skipped,
        }})

    async def _deliver_break(self, lease: Any, attempt: int) -> bool:
        holder = self._holders.get(lease.machine_id)
        if holder is None or holder.conn.closed:
            return False
        key = (lease.dep, lease.machine_id)
        self.acks.expect(key)
        self.ctl.send(holder, payload={"lease": {
            "op": "break", "dep": lease.dep,
        }})
        return await self.acks.wait(key, self.ack_timeout)

    def _on_ack(self, sender: Any, body: dict) -> None:
        dep = body.get("dep")
        dep = tuple(dep) if isinstance(dep, list) else dep
        session = sender.session_id
        if self.acks.resolve((dep, session)):
            self.leases.record_ack(session, dep, self.transport.now())


class RemoteNameClient:
    """A socket-speaking name client around the unchanged protocol.

    Args:
        addresses: Server ``(host, port)`` pairs (or
            :class:`~repro.transport.aio.Address`), primary first;
            resends fail over down the list.
        seed: Seeds the transport RNG (retry backoff jitter).
        obs: Instrumentation.
        timeout: Per-step reply timeout, wall seconds.
        max_retries: Re-sends per step before a lookup fails.
        retry_policy: Backoff discipline between resends.
        label: This client's endpoint label.
    """

    def __init__(self, addresses: list, *, seed: int = 0,
                 obs: Optional[Instrumentation] = None,
                 timeout: float = 2.0, max_retries: int = 2,
                 retry_policy: Optional[RetryPolicy] = None,
                 label: str = "client"):
        self._server_hosts = [(address[0], int(address[1]))
                              for address in addresses]
        self.proxies = EntityProxyCache()
        self.transport = AsyncioTransport(
            seed=seed, obs=obs, codec=WireCodec(proxies=self.proxies))
        self.endpoint = self.transport.endpoint(label=label)
        self.lease_table = LeaseTable(label, obs=obs)
        self.start = Context(label=f"{label}-start")
        self.router = RemoteRouter()
        self.client = AsyncNameClient.over(
            self.transport, self.router, self.endpoint,
            timeout=timeout, max_retries=max_retries,
            retry_policy=retry_policy, lease_table=self.lease_table)
        self.root: Optional[Entity] = None
        self._ctl_waiters: dict[str, deque] = {}
        # Route ctl replies to our futures; everything else to the
        # protocol client's handler (installed by its constructor).
        protocol_handler = self.endpoint._handler

        def dispatch(endpoint: Endpoint, envelope: Any) -> None:
            payload = envelope.payload
            if isinstance(payload, dict) and "ctl" in payload:
                self._on_ctl_reply(payload["ctl"])
                return
            protocol_handler(endpoint, envelope)

        self.endpoint.on_message(dispatch)

    # -- control-plane round trips ----------------------------------------

    def _ctl_address(self, index: int = 0) -> Address:
        host, port = self._server_hosts[index]
        return Address(host, port, CTL_LABEL)

    def _on_ctl_reply(self, body: dict) -> None:
        waiters = self._ctl_waiters.get(body.get("op"))
        if waiters:
            future = waiters.popleft()
            if not future.done():
                future.set_result(body)

    async def _ctl_call(self, request: dict, reply_op: str,
                        timeout: float = 5.0, index: int = 0) -> dict:
        future = asyncio.get_running_loop().create_future()
        self._ctl_waiters.setdefault(reply_op, deque()).append(future)
        self.endpoint.send(self._ctl_address(index),
                           payload={"ctl": request})
        return await asyncio.wait_for(future, timeout)

    async def connect(self, timeout: float = 5.0) -> Entity:
        """Hello every server; install the root proxy; returns it."""
        addresses = []
        for index in range(len(self._server_hosts)):
            welcome = await self._ctl_call({"op": "hello"}, "welcome",
                                           timeout, index=index)
            host, port = self._server_hosts[index]
            addresses.append(Address(host, port, welcome["lookup"]))
            if self.root is None:
                self.root = self.proxies.proxy(welcome["root"])
        self.router.addresses = addresses
        self.start.bind(ROOT_NAME, self.root)
        return self.root

    async def resolve(self, name: Any, timeout: float = 30.0):
        """Awaitable resolution: returns the final
        :class:`~repro.nameservice.protocol.LookupOutcome`."""
        future = asyncio.get_running_loop().create_future()
        self.client.resolve(
            self.start, name,
            lambda outcome: future.done() or future.set_result(outcome))
        return await asyncio.wait_for(future, timeout)

    async def lease(self, dep: tuple, timeout: float = 5.0) -> dict:
        """Take a lease on *dep*; installs the client-side grant."""
        granted = await self._ctl_call(
            {"op": "lease-grant", "dep": list(dep)}, "lease-granted",
            timeout)
        self.lease_table.grant(tuple(granted["dep"]),
                               self.transport.now(), granted["term"],
                               granted["epoch"])
        return granted

    async def rebind(self, path: list, label: str = "",
                     directory: bool = False,
                     timeout: float = 30.0) -> dict:
        """Ask the server to rebind *path*; returns the fan-out
        counts after break callbacks settle."""
        return await self._ctl_call(
            {"op": "rebind", "path": list(path), "label": label,
             "dir": directory}, "rebound", timeout)

    async def stats(self, timeout: float = 5.0) -> dict:
        return await self._ctl_call({"op": "stats"}, "stats-reply",
                                    timeout)

    async def aclose(self) -> None:
        await self.transport.aclose()

    def dep_for(self, directory: Entity, component: str) -> tuple:
        """The lease dependency key for one binding, wire-identical
        on both sides (uses the server's uid for proxies)."""
        return ("binding", remote_uid_of(directory), component)
