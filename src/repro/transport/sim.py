"""SimTransport: the deterministic substrate behind the seam.

A thin adapter over the existing :class:`~repro.sim.kernel.Simulator`
kernel.  Nothing is re-implemented: endpoints wrap
:class:`~repro.sim.process.SimProcess`, envelopes *are* the kernel's
:class:`~repro.sim.messages.Message` objects (which already carry
``payload``/``sender``/``trace_id``/``parent_span_id``), timers are
:class:`~repro.sim.events.ScheduledEvent` handles, and the clock/RNG
are the kernel's own.  Every existing test therefore keeps pinning
semantics unchanged — same event order, same seeded draws, same
traces — while the protocol above speaks only the transport
vocabulary.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.network import Machine
from repro.sim.process import SimProcess
from repro.transport.base import Endpoint, Handler, Timer, Transport

__all__ = ["SimEndpoint", "SimTransport"]


class SimEndpoint(Endpoint):
    """An endpoint backed by one simulator process."""

    def __init__(self, transport: "SimTransport", process: SimProcess):
        self.transport = transport
        self.process = process
        self.label = process.label

    def on_message(self, handler: Handler) -> None:
        # The kernel hands (process, message); the seam hands
        # (endpoint, envelope).  The Message is the envelope.
        self.process.on_message(
            lambda _process, message: handler(self, message))

    def send(self, target: Any, payload: Any = None,
             latency: Optional[float] = None) -> Message:
        receiver = target.process if isinstance(target, SimEndpoint) \
            else target
        if not isinstance(receiver, SimProcess):
            raise SimulationError(
                f"SimEndpoint cannot address {target!r}")
        return self.process.send(receiver, payload=payload,
                                 latency=latency)

    @property
    def node(self) -> Machine:
        return self.process.machine

    def __repr__(self) -> str:
        return f"<SimEndpoint {self.label!r}>"


class SimTransport(Transport):
    """The simulator kernel seen through the transport seam.

    Args:
        simulator: The kernel to adapt.  The adapter never *runs* the
            kernel — exactly like the async protocol before the seam,
            the caller pumps :meth:`~repro.sim.kernel.Simulator.run`.
    """

    kind = "sim"

    def __init__(self, simulator: Simulator):
        self.simulator = simulator
        self.rng = simulator.rng
        self.obs = simulator.obs

    def now(self) -> float:
        return self.simulator.clock.now

    def schedule(self, delay: float, action: Callable[[], None],
                 note: str = "") -> Timer:
        return self.simulator.schedule(delay, action, note=note)

    def endpoint(self, node: Any = None, label: str = "") -> SimEndpoint:
        """Spawn a fresh process on *node* (a
        :class:`~repro.sim.network.Machine`) — or adopt an existing
        :class:`~repro.sim.process.SimProcess` passed as *node*."""
        if isinstance(node, SimProcess):
            return SimEndpoint(self, node)
        if not isinstance(node, Machine):
            raise SimulationError(
                f"SimTransport endpoints live on machines, got {node!r}")
        process = self.simulator.spawn(node, label)
        return SimEndpoint(self, process)

    def adopt(self, process: SimProcess) -> SimEndpoint:
        """Wrap an already-spawned process as an endpoint."""
        return SimEndpoint(self, process)

    def __repr__(self) -> str:
        return f"<SimTransport over {self.simulator!r}>"
