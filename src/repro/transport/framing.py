"""Length-prefixed JSON framing for the asyncio transport.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON.  The decoder is incremental: bytes may
arrive split at *any* boundary (TCP guarantees order, not framing)
and frames re-assemble identically — pinned by the hypothesis
round-trip suite in ``tests/transport/test_framing.py``, which splits
encoded streams at every byte offset.

The frame body is produced by :func:`dumps` with sorted keys and
compact separators, so identical payloads yield identical bytes —
useful for digests and for keeping the parity test's wire traffic
reproducible.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, Optional

__all__ = ["MAX_FRAME", "FrameError", "encode_frame", "FrameDecoder",
           "dumps", "loads"]

#: Frames above this size are rejected on both encode and decode — a
#: corrupted length prefix must not make the reader buffer gigabytes.
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """Raised on oversized or malformed frames."""


def dumps(obj: Any) -> bytes:
    """Canonical JSON bytes (sorted keys, compact separators)."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def loads(data: bytes) -> Any:
    return json.loads(data.decode("utf-8"))


def encode_frame(obj: Any) -> bytes:
    """One wire frame: ``>I`` length header + canonical JSON body."""
    body = dumps(obj)
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds "
                         f"MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    >>> decoder = FrameDecoder()
    >>> stream = encode_frame({"a": 1}) + encode_frame([2, 3])
    >>> [obj for i in range(len(stream))
    ...  for obj in decoder.feed(stream[i:i + 1])]
    [{'a': 1}, [2, 3]]
    """

    def __init__(self, max_frame: int = MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> list[Any]:
        """Consume *data*; return every frame it completes (possibly
        none, possibly several), in arrival order."""
        self.bytes_fed += len(data)
        self._buffer.extend(data)
        frames: list[Any] = []
        while True:
            obj = self._next()
            if obj is _NOTHING:
                return frames
            frames.append(obj)

    def _next(self) -> Any:
        buffer = self._buffer
        if len(buffer) < _HEADER.size:
            return _NOTHING
        (length,) = _HEADER.unpack_from(buffer)
        if length > self.max_frame:
            raise FrameError(f"frame length {length} exceeds "
                             f"max_frame={self.max_frame}")
        end = _HEADER.size + length
        if len(buffer) < end:
            return _NOTHING
        body = bytes(buffer[_HEADER.size:end])
        del buffer[:end]
        self.frames_decoded += 1
        try:
            return loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"malformed frame body: {exc}") from exc

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def __repr__(self) -> str:
        return (f"<FrameDecoder decoded={self.frames_decoded} "
                f"pending={self.pending_bytes}B>")


def iter_frames(stream: bytes) -> Iterator[Any]:
    """Decode a complete byte string of concatenated frames."""
    decoder = FrameDecoder()
    yield from decoder.feed(stream)
    if decoder.pending_bytes:
        raise FrameError(
            f"{decoder.pending_bytes} trailing bytes after last frame")


__all__.append("iter_frames")

#: Internal "no complete frame yet" sentinel (never a JSON value).
_NOTHING: Optional[object] = object()
