"""The transport seam: the protocol's view of "a network".

The paper's coherence machinery — invalidations, TTLs, leases — is
defined over *messages and timeouts*, not over the simulator we happen
to exercise it on.  This module pins down exactly what the name-lookup
protocol (:mod:`repro.nameservice.protocol`) and the lease
break-callback fan-out consume from their environment, so the same
resolver/retry/lease code runs unchanged on two substrates:

* :class:`~repro.transport.sim.SimTransport` — a thin adapter over the
  deterministic :class:`~repro.sim.kernel.Simulator` kernel (virtual
  time, seeded RNG, pinned event order: the test substrate);
* :class:`~repro.transport.aio.AsyncioTransport` — real asyncio TCP
  sockets over localhost with length-prefixed JSON framing and
  wall-clock timers (the "fast as the hardware allows" substrate).

The seam is four small contracts:

* :class:`Transport` — a clock (``now()``, virtual *or* wall seconds),
  a cancellable timer facility (``schedule``), a seeded RNG for
  backoff jitter, an :class:`~repro.obs.Instrumentation` handle, and
  an endpoint factory.
* :class:`Endpoint` — a named mailbox on a node.  ``send`` is
  non-blocking and returns an :class:`Envelope` immediately so the
  caller can attach trace context before the bytes leave (exactly the
  discipline :meth:`repro.sim.kernel.Simulator.send` established).
* :class:`Envelope` — one in-flight payload.  Its ``sender`` is always
  a valid send target, so request/reply protocols never care what an
  address *is*.
* :class:`Timer` — anything with ``cancel()``.

Deadline semantics: ``schedule(delay, action)`` fires *action* no
earlier than ``now() + delay`` on the transport's own clock.  On the
simulator that is exact virtual time; on asyncio it is the event
loop's monotonic clock, so the same timeout/retry code backs off in
real seconds.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.obs.instrument import Instrumentation

__all__ = ["Timer", "Envelope", "Endpoint", "Transport", "as_transport"]

#: Handler signature installed with :meth:`Endpoint.on_message`.
Handler = Callable[["Endpoint", "Envelope"], None]


@runtime_checkable
class Timer(Protocol):
    """A scheduled action that can be cancelled before it fires."""

    def cancel(self) -> None:  # pragma: no cover - protocol stub
        ...


class Envelope(Protocol):
    """One in-flight payload with reply and trace-context affordances.

    Attributes:
        payload: The message body (arbitrary Python objects on the
            simulator; wire-codable values on a real transport).
        sender: An opaque address the receiving endpoint may pass back
            to :meth:`Endpoint.send` to reply.
        trace_id: Optional trace context, settable by the sender
            *after* ``send`` returns but before delivery.
        parent_span_id: Companion to ``trace_id``.
    """

    payload: Any
    sender: Any
    trace_id: Optional[str]
    parent_span_id: Optional[str]


class Endpoint:
    """A named mailbox on a node; the protocol's send/recv handle.

    Concrete endpoints are created by :meth:`Transport.endpoint`.
    """

    label: str

    def on_message(self, handler: Handler) -> None:
        """Install *handler*; it runs once per delivered envelope,
        from the transport's event loop (kernel pump or asyncio)."""
        raise NotImplementedError

    def send(self, target: Any, payload: Any = None,
             latency: Optional[float] = None) -> Envelope:
        """Enqueue *payload* toward *target*; never blocks.

        *target* is either another endpoint of the same transport, or
        the ``sender`` address of a received envelope.  *latency* is a
        simulator hint (virtual delivery delay); real transports
        ignore it — the network sets the latency.

        Returns the envelope immediately so trace context can be
        attached before the transport serializes it.
        """
        raise NotImplementedError

    @property
    def node(self) -> Any:
        """The node identity this endpoint lives on (a simulator
        :class:`~repro.sim.network.Machine`, or a host/port)."""
        raise NotImplementedError


class Transport:
    """The environment contract shared by both substrates.

    Attributes:
        kind: ``"sim"`` or ``"asyncio"`` — surfaced as the
            ``transport`` label on lookup spans and metrics.
        rng: A seeded :class:`random.Random`; backoff jitter draws
            come from here, so simulator runs stay deterministic per
            seed and real runs are reproducible per configured seed.
        obs: The :class:`~repro.obs.Instrumentation` the protocol
            publishes spans/metrics into (may be the inert ``NO_OBS``).
    """

    kind: str = "abstract"
    rng: random.Random
    obs: Instrumentation

    def now(self) -> float:
        """The transport's clock: virtual time on the simulator,
        monotonic wall seconds on asyncio."""
        raise NotImplementedError

    def schedule(self, delay: float, action: Callable[[], None],
                 note: str = "") -> Timer:
        """Run *action* after *delay* seconds of this clock; returns a
        cancellable :class:`Timer`."""
        raise NotImplementedError

    def endpoint(self, node: Any = None, label: str = "") -> Endpoint:
        """Create (or adopt) an endpoint on *node* named *label*."""
        raise NotImplementedError


def as_transport(substrate: Any) -> Transport:
    """Coerce *substrate* to a :class:`Transport`.

    A :class:`Transport` passes through; a
    :class:`~repro.sim.kernel.Simulator` is wrapped in a
    :class:`~repro.transport.sim.SimTransport` (cached on the
    simulator, so every wrap of the same kernel shares one adapter).
    """
    if isinstance(substrate, Transport):
        return substrate
    from repro.sim.kernel import Simulator
    if isinstance(substrate, Simulator):
        from repro.transport.sim import SimTransport
        cached = getattr(substrate, "_transport_adapter", None)
        if cached is None:
            cached = SimTransport(substrate)
            substrate._transport_adapter = cached
        return cached
    raise TypeError(f"not a transport or simulator: {substrate!r}")
