"""Replicated objects and weak coherence (§5)."""

from repro.replication.replica import ReplicaRegistry
from repro.replication.weak import (
    classify_names,
    replica_equivalence,
    weakly_coherent_name,
)

__all__ = [
    "ReplicaRegistry",
    "classify_names",
    "replica_equivalence",
    "weakly_coherent_name",
]
