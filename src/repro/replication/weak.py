"""Weak coherence (§5).

"Weak coherence for a name ``n`` means that ``n`` denotes replicas of
the same replicated object in different activities in the system" —
sufficient whenever the denoted objects are state-equal replicas, as
with the executable code of commands (``/bin``, ``/usr/bin``, ...).

The checkers here combine the generic definitions of
:mod:`repro.coherence.definitions` with a
:class:`~repro.replication.replica.ReplicaRegistry`'s equivalence.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.closure.meta import ContextRegistry
from repro.coherence.definitions import (
    EntityEquivalence,
    coherent,
    weakly_coherent,
)
from repro.model.entities import Activity
from repro.model.names import CompoundName, NameLike
from repro.replication.replica import ReplicaRegistry

__all__ = [
    "replica_equivalence",
    "weakly_coherent_name",
    "classify_names",
]


def replica_equivalence(registry: ReplicaRegistry) -> EntityEquivalence:
    """An :data:`~repro.coherence.definitions.EntityEquivalence` that
    treats replicas of the same replicated object as "the same"."""
    return registry.equivalent


def weakly_coherent_name(name_: NameLike, activities: Sequence[Activity],
                         contexts: ContextRegistry,
                         replicas: ReplicaRegistry) -> bool:
    """True if *name_* is weakly coherent across *activities*."""
    return weakly_coherent(name_, activities, contexts,
                           replica_equivalence(replicas))


def classify_names(candidates: Iterable[NameLike],
                   activities: Sequence[Activity],
                   contexts: ContextRegistry,
                   replicas: ReplicaRegistry,
                   ) -> dict[str, set[CompoundName]]:
    """Partition *candidates* into strong / weak-only / incoherent.

    Returns a dict with keys ``"strong"`` (coherent with identity),
    ``"weak"`` (weakly but not strongly coherent — the §5 replicated
    commands), and ``"incoherent"``.
    """
    strong: set[CompoundName] = set()
    weak: set[CompoundName] = set()
    incoherent: set[CompoundName] = set()
    equivalence = replica_equivalence(replicas)
    for candidate in candidates:
        candidate = CompoundName.coerce(candidate)
        if coherent(candidate, activities, contexts):
            strong.add(candidate)
        elif coherent(candidate, activities, contexts,
                      equivalence=equivalence):
            weak.add(candidate)
        else:
            incoherent.add(candidate)
    return {"strong": strong, "weak": weak, "incoherent": incoherent}
