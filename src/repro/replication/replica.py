"""Replicated objects (§5).

"Some important objects in distributed systems (for example,
executable code for commands) are replicated.  In terms of our naming
model this means that several objects ``o1 ... og`` ('replicas of a
replicated object') satisfy ``σ(o1) = ... = σ(og)`` for every legal
state σ of the system."

:class:`ReplicaRegistry` groups objects into replica sets and enforces
the state-equality invariant: replica states are written through the
registry, which propagates to the whole set.  The registry's
equivalence predicate is what :func:`repro.coherence.definitions
.weakly_coherent` is parameterised by.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from typing import Any, Optional

from repro.errors import EntityError
from repro.model.entities import Entity, ObjectEntity

__all__ = ["ReplicaRegistry"]


class ReplicaRegistry:
    """Groups objects into replica sets with write-through state.

    >>> registry = ReplicaRegistry()
    >>> a, b = ObjectEntity("ls@m1"), ObjectEntity("ls@m2")
    >>> rid = registry.create_set([a, b], content="ls-binary-v1")
    >>> registry.equivalent(a, b)
    True
    >>> registry.write(a, "ls-binary-v2")
    >>> b.state
    'ls-binary-v2'
    """

    def __init__(self) -> None:
        self._set_of: dict[int, int] = {}          # object uid -> set id
        self._members: dict[int, list[ObjectEntity]] = {}
        self._ids = itertools.count(1)

    def create_set(self, replicas: Iterable[ObjectEntity],
                   content: Any = None) -> int:
        """Create a replica set; all members get the same state.

        Raises:
            EntityError: if a member is a directory (context objects
                hold live bindings and are not replicated this way) or
                is already in another set.
        """
        members = list(replicas)
        if not members:
            raise EntityError("a replica set needs at least one member")
        for obj in members:
            if not isinstance(obj, ObjectEntity):
                raise EntityError(f"replicas must be objects: {obj!r}")
            if obj.is_context_object():
                raise EntityError(
                    f"directories cannot be replica members: {obj!r}")
            if obj.uid in self._set_of:
                raise EntityError(f"{obj!r} is already in a replica set")
        set_id = next(self._ids)
        for obj in members:
            self._set_of[obj.uid] = set_id
            obj.state = content
        self._members[set_id] = members
        return set_id

    def add_replica(self, set_id: int, obj: ObjectEntity) -> None:
        """Add a new replica to an existing set (state synchronised)."""
        members = self._members.get(set_id)
        if members is None:
            raise EntityError(f"no replica set {set_id}")
        if obj.uid in self._set_of:
            raise EntityError(f"{obj!r} is already in a replica set")
        obj.state = members[0].state
        self._set_of[obj.uid] = set_id
        members.append(obj)

    def set_of(self, obj: Entity) -> Optional[int]:
        """The replica-set id of *obj*, or None."""
        return self._set_of.get(obj.uid)

    def members(self, set_id: int) -> list[ObjectEntity]:
        """The members of a replica set, in insertion order."""
        try:
            return list(self._members[set_id])
        except KeyError:
            raise EntityError(f"no replica set {set_id}") from None

    def write(self, obj: ObjectEntity, content: Any) -> None:
        """Write through a replica: every member of its set gets the
        state, preserving ``σ(o1) = ... = σ(og)``."""
        set_id = self._set_of.get(obj.uid)
        if set_id is None:
            obj.state = content
            return
        for member in self._members[set_id]:
            member.state = content

    def equivalent(self, first: Entity, second: Entity) -> bool:
        """The weak-coherence equivalence: the same entity, or replicas
        of the same replicated object."""
        if first is second:
            return True
        set_a = self._set_of.get(first.uid)
        return set_a is not None and set_a == self._set_of.get(second.uid)

    def check_invariant(self) -> bool:
        """True if every replica set currently has equal member states."""
        for members in self._members.values():
            states = [m.state for m in members]
            if any(s != states[0] for s in states[1:]):
                return False
        return True

    def __len__(self) -> int:
        return len(self._members)
