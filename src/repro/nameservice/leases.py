"""Lease-based cache coherence: promises with expiry (extension).

The paper's shared-naming-graph systems (Andrew ``/vice``, DCE cells)
keep client caches coherent with server-driven callbacks; our
``CachePolicy.INVALIDATE`` reproduces that, but a callback protocol
that assumes reliable delivery degrades badly under partitions — one
dropped invalidation leaves a client weakly coherent *forever*.  A
*lease* (Gray & Cheriton's promise-with-expiry, Andrew-style callback
breaking) restores a provable bound: the server promises to call back
for a bounded term; if the callback cannot be delivered, the promise
simply runs out, so a partitioned client's staleness is bounded by

    lease term + one delivery delay.

Three cooperating pieces:

* :class:`LeaseManager` — server side.  Grants per-client, per-
  dependency-key leases over virtual time, remembers which machine
  holds which promise, fans callbacks out on rebind (via
  :func:`callback_fanout`, reusing :class:`~repro.nameservice.retry.
  RetryPolicy` and :class:`~repro.nameservice.retry.CircuitBreaker`
  directly), tracks acks, and *breaks* leases whose callbacks cannot
  be delivered — the broken promise expires on the client by term.
* :class:`LeaseTable` — client side.  Gates cached entries: an entry
  is fresh iff its covering lease is unexpired (replacing blind TTLs
  for leased clients).  In *grace mode* — entered when the client
  cannot renew across a partition — expired grants keep answering,
  but every answer must be tagged weakly coherent by the caller; on
  heal, :meth:`LeaseTable.exit_grace` revalidates epochs before
  entries may be promoted back to fresh.
* :func:`callback_fanout` — the generic bounded-retry delivery driver
  shared by the resolver's rebind path (and testable on its own).

Everything runs over the simulator's virtual clock and seeded RNG, so
lease schedules are deterministic per seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError
from repro.nameservice.retry import CircuitBreaker, RetryPolicy
from repro.obs.instrument import NO_OBS, Instrumentation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache.py)
    from repro.nameservice.cache import DepKey

__all__ = ["LeaseState", "Lease", "LeaseTable", "LeaseManager",
           "FanoutReport", "callback_fanout"]


class LeaseState(enum.Enum):
    """Lifecycle of one granted lease."""

    ACTIVE = "active"        #: promise holds — server will call back
    RELEASED = "released"    #: client gave it up voluntarily
    BROKEN = "broken"        #: callback undeliverable — left to expire
    EXPIRED = "expired"      #: term ran out

    def __str__(self) -> str:
        return self.value


@dataclass
class Lease:
    """One promise: *dep* stays valid on *machine* until *expires_at*
    unless the server calls back first."""

    dep: "DepKey"
    machine_id: int
    granted_at: float
    expires_at: float
    epoch: int
    state: LeaseState = LeaseState.ACTIVE
    renewals: int = 0
    machine_label: str = ""   #: holder's display label (metrics only)

    def live(self, now: float) -> bool:
        return self.state is LeaseState.ACTIVE and now < self.expires_at


@dataclass
class _Grant:
    """Client-side view of a lease (no server state is shared)."""

    expires_at: float
    epoch: int
    expiry_counted: bool = field(default=False)


class LeaseTable:
    """The client side of the lease protocol, one table per machine.

    Cached entries (both :class:`~repro.nameservice.cache.BindingCache`
    bindings and :class:`~repro.nameservice.cache.PrefixCache`
    prefixes) are gated through :meth:`fresh` / :meth:`covers_all`: an
    entry is only served as live while every dependency it consumed
    has an unexpired, unrevoked lease — blind TTLs never apply.

    *Grace mode* models disconnected operation: while the client
    cannot renew (a partition), :meth:`enter_grace` lets expired
    grants keep answering — the caller must tag each such answer
    weakly coherent — and :meth:`exit_grace` (on heal) purges every
    grant that expired or predates the current placement epoch, so
    nothing stale is ever silently promoted back to fresh.
    """

    def __init__(self, machine_label: str,
                 obs: Optional[Instrumentation] = None):
        self.machine_label = machine_label
        self._obs = obs if obs is not None else NO_OBS
        self._grants: dict["DepKey", _Grant] = {}
        self.in_grace = False
        self.grants = 0
        self.renewals = 0
        self.revocations = 0
        self.expirations = 0
        self.grace_hits = 0
        self.revalidations = 0

    # -- grant / renew ------------------------------------------------------

    def grant(self, dep: "DepKey", now: float, term: float,
              epoch: int) -> None:
        """Install (or renew) the client-side view of a lease."""
        existing = self._grants.get(dep)
        if existing is not None and now < existing.expires_at:
            self.renewals += 1
            if self._obs.enabled:
                self._obs.metrics.counter(
                    "lease_renewals_total",
                    {"machine": self.machine_label, "side": "client"}
                ).inc()
        else:
            self.grants += 1
            if self._obs.enabled:
                self._obs.metrics.counter(
                    "lease_grants_total",
                    {"machine": self.machine_label, "side": "client"}
                ).inc()
        self._grants[dep] = _Grant(expires_at=now + term, epoch=epoch)

    # -- freshness gate -----------------------------------------------------

    def fresh(self, dep: "DepKey", now: float) -> bool:
        """Is *dep* covered by an unexpired lease right now?

        Strict: an expired grant answers False even in grace mode —
        grace answers flow through the degraded stale-read path, which
        tags them weakly coherent; they are never served as fresh.
        Expiry is counted once per grant, mirroring the prefix cache's
        "expires only once" discipline
        (``src/repro/nameservice/cache.py``).
        """
        grant_ = self._grants.get(dep)
        if grant_ is None:
            return False
        if now < grant_.expires_at:
            return True
        if not grant_.expiry_counted:
            grant_.expiry_counted = True
            self.expirations += 1
            if self._obs.enabled:
                self._obs.metrics.counter(
                    "lease_expirations_total",
                    {"machine": self.machine_label, "side": "client"}
                ).inc()
                self._obs.tracer.event(
                    "lease", "lease.expire", now,
                    attrs={"machine": self.machine_label,
                           "dep": repr(dep)})
        return False

    def covers_all(self, deps: tuple["DepKey", ...], now: float) -> bool:
        """Does every dependency hold an unexpired lease?  (``all`` is
        not short-circuited, so each expired grant is still counted.)"""
        results = [self.fresh(dep, now) for dep in deps]
        return all(results)

    def has_grant(self, dep: "DepKey") -> bool:
        """Is a (possibly expired, never revoked) grant held for *dep*?"""
        return dep in self._grants

    def served_in_grace(self, now: float) -> None:
        """Account one degraded answer served from an expired lease."""
        self.grace_hits += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "lease_grace_served_total",
                {"machine": self.machine_label}).inc()
            self._obs.tracer.event(
                "lease", "lease.grace", now,
                attrs={"machine": self.machine_label})

    # -- revocation (callback delivered) ------------------------------------

    def revoke(self, dep: "DepKey", now: float) -> bool:
        """A server callback arrived: drop the grant immediately.

        Returns True if a grant was actually held (the ack should say
        so).  Revoked grants never answer again, even in grace mode —
        a delivered callback is an observed write, not staleness.
        """
        if self._grants.pop(dep, None) is None:
            return False
        self.revocations += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "lease_revocations_total",
                {"machine": self.machine_label}).inc()
            self._obs.tracer.event(
                "lease", "lease.revoke", now,
                attrs={"machine": self.machine_label,
                       "dep": repr(dep)})
        return True

    # -- grace mode ---------------------------------------------------------

    def enter_grace(self, now: float) -> None:
        """Renewals are unreachable: serve expired leases, tagged weak."""
        if self.in_grace:
            return
        self.in_grace = True
        if self._obs.enabled:
            self._obs.tracer.event(
                "lease", "lease.grace_enter", now,
                attrs={"machine": self.machine_label})

    def exit_grace(self, now: float, epoch: int) -> int:
        """The partition healed: revalidate before promoting to fresh.

        Every grant that expired during grace, or that predates the
        current placement *epoch*, is purged — the next resolution
        re-walks and re-leases it.  Returns the number purged.
        """
        if not self.in_grace:
            return 0
        self.in_grace = False
        purged = [dep for dep, grant_ in self._grants.items()
                  if now >= grant_.expires_at or grant_.epoch != epoch]
        for dep in purged:
            del self._grants[dep]
        self.revalidations += len(purged)
        if self._obs.enabled:
            if purged:
                self._obs.metrics.counter(
                    "lease_revalidations_total",
                    {"machine": self.machine_label}).inc(len(purged))
            self._obs.tracer.event(
                "lease", "lease.grace_exit", now,
                attrs={"machine": self.machine_label,
                       "purged": len(purged)})
        return len(purged)

    def __len__(self) -> int:
        return len(self._grants)

    def stats(self) -> dict[str, int]:
        return {"grants": self.grants, "renewals": self.renewals,
                "revocations": self.revocations,
                "expirations": self.expirations,
                "grace_hits": self.grace_hits,
                "revalidations": self.revalidations,
                "held": len(self._grants),
                "in_grace": int(self.in_grace)}


@dataclass
class FanoutReport:
    """What one callback fan-out accomplished."""

    notified: int = 0   #: callbacks delivered (and revoked client-side)
    broken: int = 0     #: leases broken — callback undeliverable
    attempts: int = 0   #: delivery attempts including retries
    skipped: int = 0    #: holders skipped by an open circuit breaker


def callback_fanout(holders: list[Lease], *,
                    now: Callable[[], float],
                    rng,
                    deliver: Callable[[Lease, int], bool],
                    wait: Callable[[float], None],
                    retry_policy: Optional[RetryPolicy],
                    breaker_for: Callable[[Lease],
                                          Optional[CircuitBreaker]],
                    on_broken: Callable[[Lease], None]) -> FanoutReport:
    """Drive callback delivery to every lease holder, with retries.

    This is the shared bounded-retry delivery loop: for each holder,
    attempt ``deliver(lease, attempt)`` up to
    ``retry_policy.max_attempts`` times, sleeping
    ``retry_policy.backoff(attempt, rng)`` between failures via
    *wait* (virtual time).  A holder whose circuit breaker (from
    *breaker_for*) is open is skipped without an attempt — its lease
    is broken outright, exactly as an exhausted retry budget would.
    Breaker bookkeeping uses the same
    :meth:`~repro.nameservice.retry.CircuitBreaker.record_success` /
    :meth:`~repro.nameservice.retry.CircuitBreaker.record_failure`
    hooks the resolver's hop path uses, so transition behaviour is
    identical for both callers.

    ``deliver`` returns True when the callback (and its ack) made it;
    *on_broken* runs for every lease left undeliverable.
    """
    report = FanoutReport()
    attempts_per = 1 if retry_policy is None else retry_policy.max_attempts
    for lease in holders:
        breaker = breaker_for(lease)
        if breaker is not None and not breaker.allow(now()):
            report.skipped += 1
            report.broken += 1
            on_broken(lease)
            continue
        delivered = False
        for attempt in range(1, attempts_per + 1):
            report.attempts += 1
            if deliver(lease, attempt):
                delivered = True
                if breaker is not None:
                    breaker.record_success(now())
                break
            if breaker is not None:
                breaker.record_failure(now())
            if attempt < attempts_per and retry_policy is not None:
                wait(retry_policy.backoff(attempt, rng))
            if breaker is not None and not breaker.allow(now()):
                break  # tripped mid-holder: stop burning attempts
        if delivered:
            report.notified += 1
        else:
            report.broken += 1
            on_broken(lease)
    return report


class LeaseManager:
    """The server side of the lease protocol.

    One manager serves a whole deployment (the resolver owns it);
    leases are keyed ``(dep, holder machine id)`` and indexed by *dep*
    in insertion order, so callback fan-out on rebind visits holders
    deterministically run-to-run.
    """

    def __init__(self, term: float,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 obs: Optional[Instrumentation] = None):
        if term <= 0:
            raise SimulationError("lease term must be positive")
        self.term = term
        self.retry_policy = retry_policy
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._obs = obs if obs is not None else NO_OBS
        self._leases: dict[tuple["DepKey", int], Lease] = {}
        # dep -> {machine_id: Lease}, insertion-ordered for determinism.
        self._holders: dict["DepKey", dict[int, Lease]] = {}
        # Per-client-machine callback breakers, shared across deps.
        self._breakers: dict[int, CircuitBreaker] = {}
        self.grants = 0
        self.renewals = 0
        self.breaks = 0
        self.releases = 0
        self.expirations = 0
        self.acks = 0

    # -- breakers -----------------------------------------------------------

    def breaker_for_machine(self, machine_id: int,
                            label: str = "") -> CircuitBreaker:
        breaker = self._breakers.get(machine_id)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
                label=label or f"lease-cb:{machine_id}", obs=self._obs)
            self._breakers[machine_id] = breaker
        return breaker

    # -- grant / renew ------------------------------------------------------

    def grant(self, machine_id: int, dep: "DepKey", now: float,
              epoch: int, machine_label: str = "") -> Lease:
        """Grant (or renew) *machine*'s lease on *dep*."""
        key = (dep, machine_id)
        lease = self._leases.get(key)
        if lease is not None and lease.live(now):
            lease.expires_at = now + self.term
            lease.epoch = epoch
            lease.renewals += 1
            self.renewals += 1
            if self._obs.enabled:
                self._obs.metrics.counter(
                    "lease_renewals_total",
                    {"machine": machine_label or str(machine_id),
                     "side": "server"}).inc()
                self._obs.tracer.event(
                    "lease", "lease.renew", now,
                    attrs={"machine": machine_label,
                           "dep": repr(dep)})
            return lease
        lease = Lease(dep=dep, machine_id=machine_id, granted_at=now,
                      expires_at=now + self.term, epoch=epoch,
                      machine_label=machine_label or str(machine_id))
        self._leases[key] = lease
        self._holders.setdefault(dep, {})[machine_id] = lease
        self.grants += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "lease_grants_total",
                {"machine": machine_label or str(machine_id),
                 "side": "server"}).inc()
            self._obs.tracer.event(
                "lease", "lease.grant", now,
                attrs={"machine": machine_label, "dep": repr(dep),
                       "expires_at": lease.expires_at})
        return lease

    # -- queries ------------------------------------------------------------

    def holders_of(self, dep: "DepKey", now: float) -> list[Lease]:
        """Active leases on *dep*, pruning any that have expired."""
        index = self._holders.get(dep)
        if not index:
            return []
        live, dead = [], []
        for machine_id, lease in index.items():
            if lease.live(now):
                live.append(lease)
            else:
                dead.append(machine_id)
        for machine_id in dead:
            lease = index.pop(machine_id)
            self._leases.pop((dep, machine_id), None)
            if lease.state is LeaseState.ACTIVE:
                lease.state = LeaseState.EXPIRED
                self.expirations += 1
                if self._obs.enabled:
                    self._obs.metrics.counter(
                        "lease_expirations_total",
                        {"machine": lease.machine_label,
                         "side": "server"}).inc()
        if not index:
            self._holders.pop(dep, None)
        return live

    def held(self, machine_id: int, dep: "DepKey",
             now: float) -> Optional[Lease]:
        """The live lease *machine* holds on *dep*, if any."""
        lease = self._leases.get((dep, machine_id))
        if lease is not None and lease.live(now):
            return lease
        return None

    # -- lifecycle ----------------------------------------------------------

    def record_ack(self, machine_id: int, dep: "DepKey",
                   now: float) -> None:
        """A callback ack arrived: the holder dropped its copy."""
        self.acks += 1
        lease = self._leases.get((dep, machine_id))
        label = lease.machine_label if lease else str(machine_id)
        self._forget(dep, machine_id, LeaseState.RELEASED)
        if self._obs.enabled:
            self._obs.metrics.counter(
                "lease_callback_acks_total",
                {"machine": label}).inc()
            self._obs.tracer.event(
                "lease", "lease.ack", now,
                attrs={"machine": label, "dep": repr(dep)})

    def break_lease(self, lease: Lease, now: float) -> None:
        """The callback could not be delivered: stop waiting, let the
        promise run out on the client by term (the escalation path)."""
        self.breaks += 1
        self._forget(lease.dep, lease.machine_id, LeaseState.BROKEN)
        if self._obs.enabled:
            self._obs.metrics.counter(
                "lease_breaks_total",
                {"machine": lease.machine_label}).inc()
            self._obs.tracer.event(
                "lease", "lease.break", now,
                attrs={"machine": lease.machine_label,
                       "dep": repr(lease.dep),
                       "expires_at": lease.expires_at})

    def release(self, machine_id: int, dep: "DepKey",
                now: float) -> None:
        """The client voluntarily dropped its copy."""
        self.releases += 1
        self._forget(dep, machine_id, LeaseState.RELEASED)

    def _forget(self, dep: "DepKey", machine_id: int,
                state: LeaseState) -> None:
        lease = self._leases.pop((dep, machine_id), None)
        if lease is not None:
            lease.state = state
        index = self._holders.get(dep)
        if index is not None:
            index.pop(machine_id, None)
            if not index:
                self._holders.pop(dep, None)

    def __len__(self) -> int:
        return len(self._leases)

    def stats(self) -> dict[str, int]:
        return {"grants": self.grants, "renewals": self.renewals,
                "breaks": self.breaks, "releases": self.releases,
                "expirations": self.expirations, "acks": self.acks,
                "held": len(self._leases)}
