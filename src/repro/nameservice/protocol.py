"""An asynchronous name-lookup protocol over the transport seam.

:class:`DistributedResolver` walks synchronously (it drives the kernel
itself); this module is the *protocol* version: clients and servers
exchange request/reply messages through their message handlers, with
request ids, per-step timeouts and bounded retries.  Since PR 10 the
protocol speaks through :mod:`repro.transport` instead of calling the
simulator kernel directly: constructed over a
:class:`~repro.sim.kernel.Simulator` (the historical API, unchanged)
it runs on :class:`~repro.transport.sim.SimTransport` with identical
virtual-time semantics; constructed over an
:class:`~repro.transport.aio.AsyncioTransport` (via
:meth:`AsyncNameClient.over` / a transport-backed
:class:`NameLookupServer`) the *identical* resolver/retry/lease code
serves lookups over real TCP sockets with wall-clock timeouts.
Nothing here runs the substrate — the caller pumps
:meth:`Simulator.run` (or the asyncio loop), so lookups interleave
naturally with any other traffic, and failures (crashed servers,
partitions, refused connections) surface as timeouts rather than
hangs.

Correctness property (tested): with no failures, an async lookup
completes with exactly the entity the section-2 recursion yields
locally.  Under a crashed server or a partition, the lookup fails
cleanly after its retries instead of returning a wrong entity —
incoherence is never silently introduced by the transport.

Retries follow the same :class:`~repro.nameservice.retry.RetryPolicy`
discipline as the synchronous walk: pass one and timed-out steps are
re-sent after exponential backoff with seeded jitter instead of
immediately (``retry_policy=None`` keeps the legacy immediate
re-send).  Backoff waits are spent on the *transport's* clock —
virtual time on the simulator, wall seconds on asyncio — with jitter
drawn from the transport's seeded RNG either way.  Replies that
arrive after their step already timed out are counted
(``async_late_replies_total`` / :attr:`AsyncNameClient.late_replies`)
rather than silently dropped — a reply racing its own retry is normal
under latency spikes, and the counter makes the race visible.  After
a machine restart, :meth:`NameLookupServer.respawn` re-registers the
dead server process with its handler (wire it as a
:meth:`~repro.sim.failures.FailureInjector.on_restart` hook).

On an instrumented transport (`repro.obs`), each lookup is one
``lookup`` span labelled with the transport kind (``sim`` /
``asyncio``); its request and reply messages carry the span's trace
context, so deliveries/drops land in the right trace even though many
lookups interleave.  Completions, failures and retries are counted in
``async_lookups_total{outcome=...}`` and
``async_lookup_retries_total``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, CompoundName, NameLike
from repro.nameservice.leases import LeaseTable
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.retry import RetryPolicy
from repro.sim.network import Machine
from repro.transport.base import Endpoint, Timer, Transport, as_transport

__all__ = ["LookupOutcome", "PlacementRouter", "NameLookupServer",
           "AsyncNameClient"]

#: Callback invoked at completion: (outcome).
Completion = Callable[["LookupOutcome"], None]


@dataclass
class LookupOutcome:
    """Result of one asynchronous lookup."""

    name: CompoundName
    entity: Entity = UNDEFINED_ENTITY
    failed: bool = False
    reason: str = ""
    steps: int = 0
    retries: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed and self.entity.is_defined()


class PlacementRouter:
    """Routes lookup steps via :class:`DirectoryPlacement` (sim side).

    The router seam answers two questions the client walk asks:
    :meth:`target_for` at advance time — ``None`` means "this step is
    local, read the context directly", anything else is a send target
    for the request — and :meth:`retarget` at resend time, which
    re-routes against the *live* placement (the shard owning a
    component may have split/migrated during a backoff) and always
    yields a target, exactly like the pre-seam resend path.
    """

    def __init__(self, placement: DirectoryPlacement,
                 servers: dict[int, "NameLookupServer"],
                 local_machine: Machine):
        self.placement = placement
        self.servers = servers
        self.local_machine = local_machine

    def _target_on(self, host: Machine) -> Any:
        server = self.servers.get(id(host))
        if server is None:
            raise SchemeError(f"no lookup server on {host.label}")
        return server.process

    def target_for(self, directory: Optional[ObjectEntity],
                   component: str) -> Any:
        if directory is None:
            return None
        host = self.placement.host_of_binding(directory, component)
        if host is None or host is self.local_machine:
            return None
        return self._target_on(host)

    def retarget(self, directory: ObjectEntity, component: str) -> Any:
        host = self.placement.host_of_binding(directory, component)
        return self._target_on(host)


class NameLookupServer:
    """A directory server: answers single-step lookup requests.

    One per machine; installs a message handler on a dedicated
    endpoint.  A request carries the directory object and the
    component to look up; the reply carries the resulting entity (or
    ``None``) plus whether it is a further directory.

    Args:
        simulator: A :class:`~repro.sim.kernel.Simulator` (the
            historical API — a server process is spawned on
            *machine*) or any :class:`~repro.transport.base.Transport`
            (an endpoint is created on *machine*, which a real
            transport may ignore).
        machine: The hosting node (sim: a
            :class:`~repro.sim.network.Machine`).
        label: Endpoint label; defaults to ``lookupd@<machine>``.

    Attributes:
        auditor: Optional :class:`~repro.obs.audit.CoherenceAuditor`;
            when set, every served lookup is audited binding-level
            (:meth:`~repro.obs.audit.CoherenceAuditor.observe_lookup`)
            at the transport's clock under :attr:`audit_policy` — the
            hook the transport parity suite uses to compare coherence
            verdicts across substrates.
    """

    #: See class docstring; set after construction when auditing.
    auditor: Any = None
    audit_policy: str = "invalidate"

    def __init__(self, simulator: Any, machine: Any = None,
                 label: str = ""):
        self.transport: Transport = as_transport(simulator)
        self.simulator = getattr(self.transport, "simulator", None)
        self.machine = machine
        if not label:
            node_label = getattr(machine, "label", None)
            label = (f"lookupd@{node_label}" if node_label is not None
                     else "lookupd")
        self.endpoint: Endpoint = self.transport.endpoint(machine, label)
        self.endpoint.on_message(self._handle)
        #: The backing simulator process (sim transport only).
        self.process = getattr(self.endpoint, "process", None)
        self.requests_served = 0
        self._obs = self.transport.obs
        if self._obs.enabled:
            self._m_requests = self._obs.metrics.counter(
                "lookup_server_requests_total",
                {"server": self.endpoint.label})

    def _handle(self, _endpoint: Endpoint, message: Any) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "lookup" not in payload:
            return
        request = payload["lookup"]
        directory: ObjectEntity = request["directory"]
        component: str = request["component"]
        self.requests_served += 1
        if self._obs.enabled:
            self._m_requests.inc()
        entity: Entity = UNDEFINED_ENTITY
        if directory.is_context_object():
            context: Context = directory.state
            entity = context(component)
        if self.auditor is not None and directory.is_defined():
            self.auditor.observe_lookup(
                directory, component, entity,
                now=self.transport.now(), policy=self.audit_policy)
        reply = self.endpoint.send(message.sender, payload={"reply": {
            "request_id": request["request_id"],
            "seq": request.get("seq", 0),
            "entity": entity if entity.is_defined() else None,
        }}, latency=request.get("latency", 1.0))
        # The reply continues the request's trace.
        reply.trace_id = message.trace_id
        reply.parent_span_id = message.parent_span_id

    def respawn(self) -> bool:
        """Re-register the server after its machine restarts.

        A machine crash kills the server process; a bare
        ``restart_machine`` used to leave the name service permanently
        dead on that host.  Called after the machine is back up (wire
        it as ``injector.on_restart(lambda _m: server.respawn(),
        machine=machine)``), this spawns a fresh process under the
        same label and re-installs the lookup handler, so in-flight
        clients fail over to the revived server on their next retry.
        Idempotent: a living server (or a still-down machine) is left
        alone.  Returns True if a fresh process was spawned.
        (Simulator transport only — real servers restart by
        reconnecting.)
        """
        if self.process is None or self.simulator is None:
            return False
        if self.process.alive or not self.machine.alive:
            return False
        self.process = self.simulator.spawn(self.machine,
                                            label=self.process.label)
        self.endpoint = self.transport.adopt(self.process)
        self.endpoint.on_message(self._handle)
        if self._obs.enabled:
            self._obs.metrics.counter(
                "lookup_server_respawns_total",
                {"server": self.process.label}).inc()
        return True


@dataclass
class _Pending:
    request_id: int
    name: CompoundName
    remaining: list[str]
    current: Context
    completion: Completion
    outcome: LookupOutcome
    server: Any = None
    directory: Optional[ObjectEntity] = None
    component: str = ""
    attempts: int = 0
    timer: Optional[Timer] = None
    span: Optional[object] = None  #: the lookup's repro.obs span


class AsyncNameClient:
    """The client half: non-blocking compound-name resolution.

    Args:
        simulator: The shared :class:`~repro.sim.kernel.Simulator`
            (never run by the client) — or any transport, via
            :meth:`over`.
        placement: Directory placements (who to ask for which step).
        servers: machine id → :class:`NameLookupServer` (share one
            mapping between all clients).
        process: The client's own simulator process (handler installed).
        timeout: Transport time to wait for each step's reply
            (virtual units on the simulator, wall seconds on asyncio).
        max_retries: Re-sends per step before failing the lookup.
        retry_policy: When set, each re-send waits out an exponential
            backoff with seeded jitter (drawn from the transport's
            RNG — the kernel's on the simulator, so schedules stay
            deterministic per seed) instead of going out the instant
            the timeout fires.  ``None`` keeps the legacy immediate
            re-send.  :attr:`RetryPolicy.max_attempts` is ignored
            here — *max_retries* stays the attempt bound.
        lease_table: When set, the client participates in the lease
            callback protocol (:mod:`repro.nameservice.leases`): an
            incoming ``{"lease": {"op": "break", ...}}`` message
            revokes the named dependency from the table and is acked
            back to the sender (the ack continues the callback's
            trace context), counted in
            ``async_lease_callbacks_total``.
        router: Optional routing override (defaults to a
            :class:`PlacementRouter` over *placement*/*servers*).

    Attributes:
        late_replies: Replies that arrived for an already-settled or
            already-retried step (mirrored in the
            ``async_late_replies_total`` metric).  They are discarded
            — the step's outcome is decided by timeout/retry — but
            counted, never silently dropped.
    """

    def __init__(self, simulator: Any,
                 placement: Optional[DirectoryPlacement],
                 servers: Optional[dict[int, NameLookupServer]],
                 process: Any,
                 timeout: float = 5.0, max_retries: int = 2,
                 latency: float = 1.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 lease_table: Optional[LeaseTable] = None,
                 router: Any = None):
        self.transport: Transport = as_transport(simulator)
        self.simulator = getattr(self.transport, "simulator", simulator)
        self.placement = placement
        self.servers = servers
        if isinstance(process, Endpoint):
            self.endpoint = process
        else:
            self.endpoint = self.transport.adopt(process)
        #: The backing simulator process (sim transport only).
        self.process = getattr(self.endpoint, "process", None)
        if router is None:
            if placement is None or servers is None:
                raise SchemeError(
                    "AsyncNameClient needs placement+servers or a router")
            router = PlacementRouter(placement, servers,
                                     self.endpoint.node)
        self.router = router
        self.timeout = timeout
        self.max_retries = max_retries
        self.latency = latency
        self.retry_policy = retry_policy
        self.lease_table = lease_table
        self.lease_callbacks = 0
        self.late_replies = 0
        self._pending: dict[int, _Pending] = {}
        self._ids = itertools.count(1)
        self._obs = self.transport.obs
        self.endpoint.on_message(self._on_message)

    @classmethod
    def over(cls, transport: Transport, router: Any, endpoint: Endpoint,
             *, timeout: float = 5.0, max_retries: int = 2,
             latency: float = 1.0,
             retry_policy: Optional[RetryPolicy] = None,
             lease_table: Optional[LeaseTable] = None,
             ) -> "AsyncNameClient":
        """Construct over an explicit transport/router/endpoint — the
        real-backend entry point (the positional API stays the
        simulator's)."""
        return cls(transport, None, None, endpoint, timeout=timeout,
                   max_retries=max_retries, latency=latency,
                   retry_policy=retry_policy, lease_table=lease_table,
                   router=router)

    # -- API ---------------------------------------------------------------

    def resolve(self, context: Context, name_: NameLike,
                completion: Completion) -> int:
        """Begin resolving *name_* in *context*; returns a request id.

        *completion* fires (from the transport's event loop) exactly
        once with the final :class:`LookupOutcome`.
        """
        name_ = CompoundName.coerce(name_)
        request_id = next(self._ids)
        parts = list(name_.parts)
        current = context
        outcome = LookupOutcome(name=name_)
        span = None
        if self._obs.enabled:
            # Not activated: many lookups interleave, so parenting by
            # an activation stack would cross-wire their traces.
            span = self._obs.tracer.begin(
                "lookup", str(name_) or "<empty>",
                self.transport.now(), parent=None, activate=False,
                attrs={"client": self.endpoint.label,
                       "transport": self.transport.kind})
        pending = _Pending(request_id=request_id, name=name_,
                           remaining=parts, current=current,
                           completion=completion, outcome=outcome,
                           span=span)
        self._pending[request_id] = pending
        if name_.rooted:
            root = current(ROOT_NAME)
            outcome.steps += 1
            if not root.is_defined() or not isinstance(
                    root.state, Context):
                if not parts and root.is_defined():
                    self._finish(pending, root)
                else:
                    self._fail(pending, "no root binding")
                return request_id
            if not parts:
                self._finish(pending, root)
                return request_id
            pending.current = root.state
            pending.directory = root  # type: ignore[assignment]
        self._advance(pending)
        return request_id

    def resolve_many(self, context: Context, names: list[NameLike],
                     completion: Callable[[list[LookupOutcome]], None],
                     ) -> list[int]:
        """Begin resolving a batch of names concurrently.

        All lookups are issued immediately, so their request/reply
        traffic interleaves in the transport and the batch completes
        in roughly one lookup's latency instead of the sum.
        *completion* fires exactly once, with one
        :class:`LookupOutcome` per input name in input order, after
        the last lookup settles.

        Returns the request ids, in input order.
        """
        outcomes: list[Optional[LookupOutcome]] = [None] * len(names)
        remaining = len(names)
        if remaining == 0:
            completion([])
            return []

        def finisher(index: int) -> Completion:
            def finish(outcome: LookupOutcome) -> None:
                nonlocal remaining
                outcomes[index] = outcome
                remaining -= 1
                if remaining == 0:
                    completion(outcomes)  # type: ignore[arg-type]
            return finish

        return [self.resolve(context, name_, finisher(index))
                for index, name_ in enumerate(names)]

    # -- the walk ------------------------------------------------------------

    def _advance(self, pending: _Pending) -> None:
        """Consume locally-resolvable steps; go remote when needed."""
        while pending.remaining:
            component = pending.remaining[0]
            # Per-binding routing: for a sharded directory the next
            # component decides which shard server answers.
            target = self.router.target_for(pending.directory, component)
            if target is not None:
                self._send_request(pending, pending.directory,
                                   component, target)
                return
            entity = pending.current(component)
            self._consume(pending, entity)
            if pending.request_id not in self._pending:
                return  # finished or failed inside _consume
        # remaining exhausted inside _consume paths

    def _consume(self, pending: _Pending, entity: Entity) -> None:
        """Account one resolved component and step into it."""
        pending.outcome.steps += 1
        pending.remaining.pop(0)
        if not entity.is_defined():
            self._finish(pending, UNDEFINED_ENTITY)
            return
        if not pending.remaining:
            self._finish(pending, entity)
            return
        state = entity.state
        if not isinstance(state, Context):
            self._finish(pending, UNDEFINED_ENTITY)
            return
        pending.current = state
        pending.directory = entity  # type: ignore[assignment]

    # -- remote steps -------------------------------------------------------------

    def _send_request(self, pending: _Pending,
                      directory: ObjectEntity, component: str,
                      target: Any) -> None:
        pending.server = target
        pending.component = component
        pending.attempts += 1
        request = self.endpoint.send(target, payload={"lookup": {
            "request_id": pending.request_id,
            "seq": pending.attempts,
            "directory": directory,
            "component": component,
            "latency": self.latency,
        }}, latency=self.latency)
        if pending.span is not None:
            request.trace_id = pending.span.trace_id
            request.parent_span_id = pending.span.span_id
        pending.timer = self.transport.schedule(
            self.timeout, lambda: self._on_timeout(pending.request_id),
            note=f"lookup-timeout req#{pending.request_id}")

    def _on_message(self, _endpoint: Endpoint, message: Any) -> None:
        payload = message.payload
        if isinstance(payload, dict) and "lease" in payload:
            self._on_lease_message(message, payload["lease"])
            return
        if not isinstance(payload, dict) or "reply" not in payload:
            return
        reply = payload["reply"]
        pending = self._pending.get(reply["request_id"])
        if pending is None:
            # Late reply: the lookup already settled (typically a
            # timeout-failure) before the answer made it back.
            self._count_late_reply("settled")
            return
        if reply.get("seq") != pending.attempts:
            # Late reply: a retry already superseded this attempt, so
            # this is the slow original (or a duplicate) finally
            # arriving.
            self._count_late_reply("superseded")
            return
        if pending.timer is not None:
            pending.timer.cancel()
        entity = reply["entity"]
        self._consume(pending,
                      entity if entity is not None else UNDEFINED_ENTITY)
        if pending.request_id in self._pending:
            self._advance(pending)

    def _on_lease_message(self, message: Any, body: dict) -> None:
        """Handle a server-initiated lease callback (break)."""
        if body.get("op") != "break" or self.lease_table is None:
            return
        now = self.transport.now()
        dep = body.get("dep")
        held = self.lease_table.revoke(dep, now)
        self.lease_callbacks += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "async_lease_callbacks_total",
                {"held": str(held).lower()}).inc()
        ack = self.endpoint.send(message.sender, payload={"lease": {
            "op": "ack", "dep": dep, "held": held,
        }}, latency=self.latency)
        # The ack continues the callback's trace.
        ack.trace_id = message.trace_id
        ack.parent_span_id = message.parent_span_id

    def _count_late_reply(self, kind: str) -> None:
        self.late_replies += 1
        if self._obs.enabled:
            self._obs.metrics.counter("async_late_replies_total",
                                      {"kind": kind}).inc()

    def _on_timeout(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        pending.outcome.retries += 1
        if self._obs.enabled:
            self._obs.metrics.counter("async_lookup_retries_total").inc()
        if pending.attempts > self.max_retries:
            self._fail(pending, "timeout")
            return
        if self.retry_policy is None:
            self._resend(pending)
            return
        # Backoff before the re-send; the guard lets a late reply (or
        # any other settlement) that lands during the wait win the
        # race — a stale resend must not fire for a superseded seq.
        seq = pending.attempts
        delay = self.retry_policy.backoff(pending.attempts,
                                          self.transport.rng)

        def resend() -> None:
            current = self._pending.get(request_id)
            if current is None or current.attempts != seq:
                return
            self._resend(current)

        self.transport.schedule(
            delay, resend, note=f"lookup-backoff req#{request_id}")

    def _resend(self, pending: _Pending) -> None:
        # Re-route against the *live* routing state: the shard owning
        # this component may have split/migrated during the backoff.
        target = self.router.retarget(
            pending.directory, pending.component)  # type: ignore[arg-type]
        self._send_request(pending, pending.directory,  # type: ignore
                           pending.component, target)

    # -- completion ------------------------------------------------------------------

    def _finish(self, pending: _Pending, entity: Entity) -> None:
        pending.outcome.entity = entity
        del self._pending[pending.request_id]
        self._observe_done(
            pending, "ok" if entity.is_defined() else "undefined")
        pending.completion(pending.outcome)

    def _fail(self, pending: _Pending, reason: str) -> None:
        pending.outcome.failed = True
        pending.outcome.reason = reason
        del self._pending[pending.request_id]
        if pending.span is not None:
            pending.span.fail(reason)
        self._observe_done(pending, "failed")
        pending.completion(pending.outcome)

    def _observe_done(self, pending: _Pending, outcome: str) -> None:
        if not self._obs.enabled:
            return
        if pending.span is not None:
            pending.span.attrs.update(steps=pending.outcome.steps,
                                      retries=pending.outcome.retries)
            self._obs.tracer.end(pending.span, self.transport.now())
        self._obs.metrics.counter("async_lookups_total",
                                  {"outcome": outcome}).inc()

    def outstanding(self) -> int:
        """Number of lookups still in flight."""
        return len(self._pending)
