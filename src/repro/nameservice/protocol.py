"""An asynchronous name-lookup protocol over the simulator.

:class:`DistributedResolver` walks synchronously (it drives the kernel
itself); this module is the *protocol* version: clients and servers
are plain simulator processes exchanging request/reply messages
through their ``on_message`` handlers, with request ids, per-step
timeouts and bounded retries.  Nothing here runs the kernel — the
caller pumps :meth:`Simulator.run`, so lookups interleave naturally
with any other traffic, and failures (crashed servers, partitions)
surface as timeouts rather than hangs.

Correctness property (tested): with no failures, an async lookup
completes with exactly the entity the section-2 recursion yields
locally.  Under a crashed server or a partition, the lookup fails
cleanly after its retries instead of returning a wrong entity —
incoherence is never silently introduced by the transport.

Retries follow the same :class:`~repro.nameservice.retry.RetryPolicy`
discipline as the synchronous walk: pass one and timed-out steps are
re-sent after exponential backoff with seeded jitter instead of
immediately (``retry_policy=None`` keeps the legacy immediate
re-send).  Replies that arrive after their step already timed out are
counted (``async_late_replies_total`` / :attr:`AsyncNameClient.
late_replies`) rather than silently dropped — a reply racing its own
retry is normal under latency spikes, and the counter makes the race
visible.  After a machine restart, :meth:`NameLookupServer.respawn`
re-registers the dead server process with its handler (wire it as a
:meth:`~repro.sim.failures.FailureInjector.on_restart` hook).

On an instrumented simulator (`repro.obs`), each lookup is one
``lookup`` span; its request and reply messages carry the span's
trace context, so kernel deliveries/drops land in the right trace
even though many lookups interleave.  Completions, failures and
retries are counted in ``async_lookups_total{outcome=...}`` and
``async_lookup_retries_total``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, CompoundName, NameLike
from repro.nameservice.leases import LeaseTable
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.retry import RetryPolicy
from repro.sim.events import ScheduledEvent
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.network import Machine
from repro.sim.process import SimProcess

__all__ = ["LookupOutcome", "NameLookupServer", "AsyncNameClient"]

#: Callback invoked at completion: (outcome).
Completion = Callable[["LookupOutcome"], None]


@dataclass
class LookupOutcome:
    """Result of one asynchronous lookup."""

    name: CompoundName
    entity: Entity = UNDEFINED_ENTITY
    failed: bool = False
    reason: str = ""
    steps: int = 0
    retries: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed and self.entity.is_defined()


class NameLookupServer:
    """A directory server: answers single-step lookup requests.

    One per machine; installs an ``on_message`` handler on a dedicated
    server process.  A request carries the directory object and the
    component to look up; the reply carries the resulting entity (or
    ``None``) plus whether it is a further directory.
    """

    def __init__(self, simulator: Simulator, machine: Machine,
                 label: str = ""):
        self.simulator = simulator
        self.machine = machine
        self.process = simulator.spawn(
            machine, label or f"lookupd@{machine.label}")
        self.process.on_message(self._handle)
        self.requests_served = 0
        self._obs = simulator.obs
        if self._obs.enabled:
            self._m_requests = self._obs.metrics.counter(
                "lookup_server_requests_total",
                {"server": self.process.label})

    def _handle(self, _process: SimProcess, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "lookup" not in payload:
            return
        request = payload["lookup"]
        directory: ObjectEntity = request["directory"]
        component: str = request["component"]
        self.requests_served += 1
        if self._obs.enabled:
            self._m_requests.inc()
        entity: Entity = UNDEFINED_ENTITY
        if directory.is_context_object():
            context: Context = directory.state
            entity = context(component)
        reply = self.process.send(message.sender, payload={"reply": {
            "request_id": request["request_id"],
            "seq": request.get("seq", 0),
            "entity": entity if entity.is_defined() else None,
        }}, latency=request.get("latency", 1.0))
        # The reply continues the request's trace.
        reply.trace_id = message.trace_id
        reply.parent_span_id = message.parent_span_id

    def respawn(self) -> bool:
        """Re-register the server after its machine restarts.

        A machine crash kills the server process; a bare
        ``restart_machine`` used to leave the name service permanently
        dead on that host.  Called after the machine is back up (wire
        it as ``injector.on_restart(lambda _m: server.respawn(),
        machine=machine)``), this spawns a fresh process under the
        same label and re-installs the lookup handler, so in-flight
        clients fail over to the revived server on their next retry.
        Idempotent: a living server (or a still-down machine) is left
        alone.  Returns True if a fresh process was spawned.
        """
        if self.process.alive or not self.machine.alive:
            return False
        self.process = self.simulator.spawn(self.machine,
                                            label=self.process.label)
        self.process.on_message(self._handle)
        if self._obs.enabled:
            self._obs.metrics.counter(
                "lookup_server_respawns_total",
                {"server": self.process.label}).inc()
        return True


@dataclass
class _Pending:
    request_id: int
    name: CompoundName
    remaining: list[str]
    current: Context
    completion: Completion
    outcome: LookupOutcome
    server: Optional[SimProcess] = None
    directory: Optional[ObjectEntity] = None
    component: str = ""
    attempts: int = 0
    timer: Optional[ScheduledEvent] = None
    span: Optional[object] = None  #: the lookup's repro.obs span


class AsyncNameClient:
    """The client half: non-blocking compound-name resolution.

    Args:
        simulator: The shared kernel (never run by the client).
        placement: Directory placements (who to ask for which step).
        servers: machine id → :class:`NameLookupServer` (share one
            mapping between all clients).
        process: The client's own simulator process (handler installed).
        timeout: Virtual time to wait for each step's reply.
        max_retries: Re-sends per step before failing the lookup.
        retry_policy: When set, each re-send waits out an exponential
            backoff with seeded jitter (drawn from the kernel RNG, so
            schedules are deterministic per seed) instead of going out
            the instant the timeout fires.  ``None`` keeps the legacy
            immediate re-send.  :attr:`RetryPolicy.max_attempts` is
            ignored here — *max_retries* stays the attempt bound.
        lease_table: When set, the client participates in the lease
            callback protocol (:mod:`repro.nameservice.leases`): an
            incoming ``{"lease": {"op": "break", ...}}`` message
            revokes the named dependency from the table and is acked
            back to the sender (the ack continues the callback's
            trace context), counted in
            ``async_lease_callbacks_total``.

    Attributes:
        late_replies: Replies that arrived for an already-settled or
            already-retried step (mirrored in the
            ``async_late_replies_total`` metric).  They are discarded
            — the step's outcome is decided by timeout/retry — but
            counted, never silently dropped.
    """

    def __init__(self, simulator: Simulator,
                 placement: DirectoryPlacement,
                 servers: dict[int, NameLookupServer],
                 process: SimProcess,
                 timeout: float = 5.0, max_retries: int = 2,
                 latency: float = 1.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 lease_table: Optional[LeaseTable] = None):
        self.simulator = simulator
        self.placement = placement
        self.servers = servers
        self.process = process
        self.timeout = timeout
        self.max_retries = max_retries
        self.latency = latency
        self.retry_policy = retry_policy
        self.lease_table = lease_table
        self.lease_callbacks = 0
        self.late_replies = 0
        self._pending: dict[int, _Pending] = {}
        self._ids = itertools.count(1)
        self._obs = simulator.obs
        process.on_message(self._on_message)

    # -- API ---------------------------------------------------------------

    def resolve(self, context: Context, name_: NameLike,
                completion: Completion) -> int:
        """Begin resolving *name_* in *context*; returns a request id.

        *completion* fires (from the kernel's event loop) exactly once
        with the final :class:`LookupOutcome`.
        """
        name_ = CompoundName.coerce(name_)
        request_id = next(self._ids)
        parts = list(name_.parts)
        current = context
        outcome = LookupOutcome(name=name_)
        span = None
        if self._obs.enabled:
            # Not activated: many lookups interleave, so parenting by
            # an activation stack would cross-wire their traces.
            span = self._obs.tracer.begin(
                "lookup", str(name_) or "<empty>",
                self.simulator.clock.now, parent=None, activate=False,
                attrs={"client": self.process.label})
        pending = _Pending(request_id=request_id, name=name_,
                           remaining=parts, current=current,
                           completion=completion, outcome=outcome,
                           span=span)
        self._pending[request_id] = pending
        if name_.rooted:
            root = current(ROOT_NAME)
            outcome.steps += 1
            if not root.is_defined() or not isinstance(
                    root.state, Context):
                if not parts and root.is_defined():
                    self._finish(pending, root)
                else:
                    self._fail(pending, "no root binding")
                return request_id
            if not parts:
                self._finish(pending, root)
                return request_id
            pending.current = root.state
            pending.directory = root  # type: ignore[assignment]
        self._advance(pending)
        return request_id

    def resolve_many(self, context: Context, names: list[NameLike],
                     completion: Callable[[list[LookupOutcome]], None],
                     ) -> list[int]:
        """Begin resolving a batch of names concurrently.

        All lookups are issued immediately, so their request/reply
        traffic interleaves in the kernel and the batch completes in
        roughly one lookup's latency instead of the sum.  *completion*
        fires exactly once, with one :class:`LookupOutcome` per input
        name in input order, after the last lookup settles.

        Returns the request ids, in input order.
        """
        outcomes: list[Optional[LookupOutcome]] = [None] * len(names)
        remaining = len(names)
        if remaining == 0:
            completion([])
            return []

        def finisher(index: int) -> Completion:
            def finish(outcome: LookupOutcome) -> None:
                nonlocal remaining
                outcomes[index] = outcome
                remaining -= 1
                if remaining == 0:
                    completion(outcomes)  # type: ignore[arg-type]
            return finish

        return [self.resolve(context, name_, finisher(index))
                for index, name_ in enumerate(names)]

    # -- the walk ------------------------------------------------------------

    def _advance(self, pending: _Pending) -> None:
        """Consume locally-resolvable steps; go remote when needed."""
        while pending.remaining:
            component = pending.remaining[0]
            directory = pending.directory
            # Per-binding routing: for a sharded directory the next
            # component decides which shard server answers.
            host = (self.placement.host_of_binding(directory, component)
                    if directory is not None else None)
            if host is not None and host is not self.process.machine:
                self._send_request(pending, directory, component, host)
                return
            entity = pending.current(component)
            self._consume(pending, entity)
            if pending.request_id not in self._pending:
                return  # finished or failed inside _consume
        # remaining exhausted inside _consume paths

    def _consume(self, pending: _Pending, entity: Entity) -> None:
        """Account one resolved component and step into it."""
        pending.outcome.steps += 1
        pending.remaining.pop(0)
        if not entity.is_defined():
            self._finish(pending, UNDEFINED_ENTITY)
            return
        if not pending.remaining:
            self._finish(pending, entity)
            return
        state = entity.state
        if not isinstance(state, Context):
            self._finish(pending, UNDEFINED_ENTITY)
            return
        pending.current = state
        pending.directory = entity  # type: ignore[assignment]

    # -- remote steps -------------------------------------------------------------

    def _send_request(self, pending: _Pending,
                      directory: ObjectEntity, component: str,
                      host: Machine) -> None:
        server = self.servers.get(id(host))
        if server is None:
            raise SchemeError(f"no lookup server on {host.label}")
        pending.server = server.process
        pending.component = component
        pending.attempts += 1
        request = self.process.send(server.process, payload={"lookup": {
            "request_id": pending.request_id,
            "seq": pending.attempts,
            "directory": directory,
            "component": component,
            "latency": self.latency,
        }}, latency=self.latency)
        if pending.span is not None:
            request.trace_id = pending.span.trace_id
            request.parent_span_id = pending.span.span_id
        pending.timer = self.simulator.schedule(
            self.timeout, lambda: self._on_timeout(pending.request_id),
            note=f"lookup-timeout req#{pending.request_id}")

    def _on_message(self, _process: SimProcess,
                    message: Message) -> None:
        payload = message.payload
        if isinstance(payload, dict) and "lease" in payload:
            self._on_lease_message(message, payload["lease"])
            return
        if not isinstance(payload, dict) or "reply" not in payload:
            return
        reply = payload["reply"]
        pending = self._pending.get(reply["request_id"])
        if pending is None:
            # Late reply: the lookup already settled (typically a
            # timeout-failure) before the answer made it back.
            self._count_late_reply("settled")
            return
        if reply.get("seq") != pending.attempts:
            # Late reply: a retry already superseded this attempt, so
            # this is the slow original (or a duplicate) finally
            # arriving.
            self._count_late_reply("superseded")
            return
        if pending.timer is not None:
            pending.timer.cancel()
        entity = reply["entity"]
        self._consume(pending,
                      entity if entity is not None else UNDEFINED_ENTITY)
        if pending.request_id in self._pending:
            self._advance(pending)

    def _on_lease_message(self, message: Message, body: dict) -> None:
        """Handle a server-initiated lease callback (break)."""
        if body.get("op") != "break" or self.lease_table is None:
            return
        now = self.simulator.clock.now
        dep = body.get("dep")
        held = self.lease_table.revoke(dep, now)
        self.lease_callbacks += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "async_lease_callbacks_total",
                {"held": str(held).lower()}).inc()
        ack = self.process.send(message.sender, payload={"lease": {
            "op": "ack", "dep": dep, "held": held,
        }}, latency=self.latency)
        # The ack continues the callback's trace.
        ack.trace_id = message.trace_id
        ack.parent_span_id = message.parent_span_id

    def _count_late_reply(self, kind: str) -> None:
        self.late_replies += 1
        if self._obs.enabled:
            self._obs.metrics.counter("async_late_replies_total",
                                      {"kind": kind}).inc()

    def _on_timeout(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        pending.outcome.retries += 1
        if self._obs.enabled:
            self._obs.metrics.counter("async_lookup_retries_total").inc()
        if pending.attempts > self.max_retries:
            self._fail(pending, "timeout")
            return
        if self.retry_policy is None:
            self._resend(pending)
            return
        # Backoff before the re-send; the guard lets a late reply (or
        # any other settlement) that lands during the wait win the
        # race — a stale resend must not fire for a superseded seq.
        seq = pending.attempts
        delay = self.retry_policy.backoff(pending.attempts,
                                          self.simulator.rng)

        def resend() -> None:
            current = self._pending.get(request_id)
            if current is None or current.attempts != seq:
                return
            self._resend(current)

        self.simulator.schedule(
            delay, resend, note=f"lookup-backoff req#{request_id}")

    def _resend(self, pending: _Pending) -> None:
        # Re-route against the *live* placement: the shard owning this
        # component may have split/migrated during the backoff.
        host = self.placement.host_of_binding(
            pending.directory, pending.component)  # type: ignore[arg-type]
        self._send_request(pending, pending.directory,  # type: ignore
                           pending.component, host)     # type: ignore

    # -- completion ------------------------------------------------------------------

    def _finish(self, pending: _Pending, entity: Entity) -> None:
        pending.outcome.entity = entity
        del self._pending[pending.request_id]
        self._observe_done(
            pending, "ok" if entity.is_defined() else "undefined")
        pending.completion(pending.outcome)

    def _fail(self, pending: _Pending, reason: str) -> None:
        pending.outcome.failed = True
        pending.outcome.reason = reason
        del self._pending[pending.request_id]
        if pending.span is not None:
            pending.span.fail(reason)
        self._observe_done(pending, "failed")
        pending.completion(pending.outcome)

    def _observe_done(self, pending: _Pending, outcome: str) -> None:
        if not self._obs.enabled:
            return
        if pending.span is not None:
            pending.span.attrs.update(steps=pending.outcome.steps,
                                      retries=pending.outcome.retries)
            self._obs.tracer.end(pending.span, self.simulator.clock.now)
        self._obs.metrics.counter("async_lookups_total",
                                  {"outcome": outcome}).inc()

    def outstanding(self) -> int:
        """Number of lookups still in flight."""
        return len(self._pending)
