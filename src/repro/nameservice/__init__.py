"""Distributed name service: placed directories, measured resolution.

Extends the formal model with the operational layer a distributed
environment adds — directories hosted on machines, resolution traffic
through the simulator — so the *cost* of each section-5 design is
measurable alongside its coherence (experiment A4).  A fault-tolerance
layer (replicated placement, retry/backoff with circuit breakers,
failover, policy-gated weak-coherence stale reads) keeps names
resolving across crashes and partitions (experiment A8), and a lease
subsystem (server-granted promises with expiry, callback breaking,
grace mode) bounds cache staleness even when callbacks are lost
(experiment A9).  Hot directories can be *sharded* — bindings split
across shard servers by consistent hashing, with live load-driven
splits migrating bindings as simulated messages (experiment A10).
"""

from repro.nameservice.cache import (
    BindingCache,
    CacheEntry,
    CachePolicy,
    CachingDirectoryService,
    PrefixCache,
    PrefixEntry,
)
from repro.nameservice.leases import (
    FanoutReport,
    Lease,
    LeaseManager,
    LeaseState,
    LeaseTable,
    callback_fanout,
)
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.protocol import (
    AsyncNameClient,
    LookupOutcome,
    NameLookupServer,
)
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionCost,
    ResolutionStyle,
    check_semantics_preserved,
)
from repro.nameservice.retry import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)
from repro.nameservice.sharding import (
    Shard,
    ShardManager,
    ShardMap,
    SplitPlan,
    binding_hash,
)

__all__ = [
    "AsyncNameClient",
    "BindingCache",
    "BreakerState",
    "CacheEntry",
    "CachePolicy",
    "CachingDirectoryService",
    "CircuitBreaker",
    "DirectoryPlacement",
    "DistributedResolver",
    "FanoutReport",
    "Lease",
    "LeaseManager",
    "LeaseState",
    "LeaseTable",
    "LookupOutcome",
    "NameLookupServer",
    "PrefixCache",
    "PrefixEntry",
    "ResolutionCost",
    "ResolutionStyle",
    "RetryPolicy",
    "Shard",
    "ShardManager",
    "ShardMap",
    "SplitPlan",
    "binding_hash",
    "callback_fanout",
    "check_semantics_preserved",
]
