"""Consistent-hash sharding of directory bindings (extension).

At production scale a hot directory stops fitting on one machine — not
in bytes but in *load*: §6's cost analysis charges every resolution
step to the directory's hosting server, so a directory of a million
names under a Zipf workload saturates whichever single server hosts
it.  This module splits a directory's **bindings** (not the directory
object — σ stays one context, the paper's semantics are untouched)
across shard servers by consistent hashing of the binding name:

* a :class:`ShardMap` partitions the 32-bit hash space into contiguous
  ranges, one :class:`Shard` per range, each owned by one machine —
  every binding name hashes into *exactly one* range, so exactly one
  shard owns it (property-tested);
* :meth:`ShardMap.plan_split` / :meth:`~repro.nameservice.placement.
  DirectoryPlacement.apply_split` split a hot shard's range in two,
  handing the upper half to a new machine — the migration itself is
  driven by :meth:`~repro.nameservice.resolver.DistributedResolver.
  split_shard` as *simulated messages*, so traces, failure injection
  and the retry/breaker machinery all apply to rebalancing traffic;
* a :class:`ShardManager` watches the per-shard routing load the
  resolver records (:meth:`ShardMap.note_load`) and splits any shard
  whose share of a check window crosses the split threshold — the
  live feedback loop experiment A10 measures.

Shard membership changes ride the existing placement-*epoch* protocol
(:attr:`~repro.nameservice.placement.DirectoryPlacement.epoch`): a
split bumps the epoch exactly once, so prefix-cache entries memoized
under the pre-split map die instead of routing to the old owner.
Splits move *placement*, never binding values, so leases stay valid
across a migration (their cached entries die with the epoch and are
re-leased on the next walk).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Iterable, Optional
from zlib import crc32

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import ObjectEntity
from repro.sim.network import Machine

__all__ = ["HASH_SPACE", "binding_hash", "Shard", "ShardMap",
           "SplitPlan", "ShardManager"]

#: The hash ring: binding names map into ``[0, HASH_SPACE)``.
HASH_SPACE = 1 << 32


def binding_hash(component: str) -> int:
    """Deterministic 32-bit hash of a binding name.

    ``zlib.crc32`` rather than :func:`hash`: python string hashing is
    salted per process, which would make shard ownership — and with it
    every trace and experiment row — nondeterministic across runs.
    """
    return crc32(component.encode("utf-8"))


class Shard:
    """One contiguous hash range ``[lo, hi)`` owned by one machine."""

    __slots__ = ("lo", "hi", "machine", "load", "members")

    def __init__(self, lo: int, hi: int, machine: Machine):
        self.lo = lo
        self.hi = hi
        self.machine = machine
        #: Routing hits recorded since the last manager check window.
        self.load = 0
        #: Binding names whose hash falls in this range (maintained so
        #: a split knows how many bindings migrate without rescanning
        #: the whole directory).
        self.members: set[str] = set()

    def owns(self, component: str) -> bool:
        return self.lo <= binding_hash(component) < self.hi

    @property
    def span(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:
        return (f"<Shard [{self.lo:#010x},{self.hi:#010x}) "
                f"@{self.machine.label} load={self.load} "
                f"members={len(self.members)}>")


@dataclass(frozen=True)
class SplitPlan:
    """A pure description of one shard split, computed before any
    migration message is sent and applied only if migration succeeds."""

    shard: Shard
    split_at: int
    machine: Machine                 #: owner of the new upper range
    moved: tuple[str, ...]           #: bindings migrating to *machine*


class ShardMap:
    """The sharded placement of one directory's bindings.

    Ranges are kept sorted and contiguous over ``[0, HASH_SPACE)`` —
    the representation *cannot* express an unowned or doubly-owned
    hash, which is what makes the every-binding-has-exactly-one-owner
    property structural rather than aspirational (still
    property-tested over random split sequences).
    """

    def __init__(self, directory: ObjectEntity,
                 machines: Iterable[Machine]):
        machines = list(machines)
        if not machines:
            raise SchemeError("a shard map needs at least one machine")
        self.directory = directory
        count = len(machines)
        bounds = [HASH_SPACE * index // count for index in range(count)]
        bounds.append(HASH_SPACE)
        self._shards = [Shard(bounds[i], bounds[i + 1], machines[i])
                        for i in range(count)]
        context: Context = directory.state
        for name_ in context.names():
            self._shard_for_hash(binding_hash(name_)).members.add(name_)

    # -- routing ------------------------------------------------------------

    def _shard_for_hash(self, value: int) -> Shard:
        index = bisect_right(self._los(), value) - 1
        return self._shards[index]

    def _los(self) -> list[int]:
        return [shard.lo for shard in self._shards]

    def owner_of(self, component: str) -> Shard:
        """The unique shard owning *component*."""
        return self._shard_for_hash(binding_hash(component))

    def machine_of(self, component: str) -> Machine:
        return self.owner_of(component).machine

    def note_load(self, component: str) -> None:
        """Record one routing hit against the owning shard (the
        signal :class:`ShardManager` splits on — counted per shard,
        never aggregated by machine label)."""
        self.owner_of(component).load += 1

    def add_member(self, component: str) -> None:
        """Track a binding created after the map was built (all writes
        come through the resolver/service rebind discipline)."""
        self.owner_of(component).members.add(component)

    # -- splitting ----------------------------------------------------------

    def plan_split(self, shard: Shard, machine: Machine,
                   at: Optional[int] = None) -> SplitPlan:
        """Describe splitting *shard* at *at* (default: range midpoint),
        handing ``[at, hi)`` to *machine*.  Pure — nothing changes
        until :meth:`apply_split`."""
        if shard not in self._shards:
            raise SchemeError(f"{shard!r} is not a shard of this map")
        if shard.span < 2:
            raise SchemeError(f"{shard!r} cannot split further")
        split_at = shard.lo + shard.span // 2 if at is None else at
        if not shard.lo < split_at < shard.hi:
            raise SchemeError(
                f"split point {split_at:#x} outside ({shard.lo:#x}, "
                f"{shard.hi:#x})")
        moved = tuple(sorted(
            name_ for name_ in shard.members
            if binding_hash(name_) >= split_at))
        return SplitPlan(shard=shard, split_at=split_at,
                         machine=machine, moved=moved)

    def apply_split(self, plan: SplitPlan) -> Shard:
        """Commit a planned split; returns the new shard.

        Window loads of both halves reset — the post-split window
        re-measures the true distribution instead of guessing how the
        old count divides.
        """
        shard = plan.shard
        index = self._shards.index(shard)
        new = Shard(plan.split_at, shard.hi, plan.machine)
        new.members.update(plan.moved)
        shard.members.difference_update(plan.moved)
        shard.hi = plan.split_at
        shard.load = 0
        self._shards.insert(index + 1, new)
        return new

    # -- introspection ------------------------------------------------------

    @property
    def shards(self) -> tuple[Shard, ...]:
        return tuple(self._shards)

    def machines(self) -> list[Machine]:
        """Owning machines, deduped, in ring order."""
        seen: dict[int, Machine] = {}
        for shard in self._shards:
            seen.setdefault(id(shard.machine), shard.machine)
        return list(seen.values())

    def reset_window(self) -> None:
        """Zero the per-shard load counters (end of a check window)."""
        for shard in self._shards:
            shard.load = 0

    def is_partition(self) -> bool:
        """True iff the ranges exactly tile ``[0, HASH_SPACE)`` — the
        exactly-one-owner invariant, checked structurally."""
        if not self._shards:
            return False
        if self._shards[0].lo != 0 or self._shards[-1].hi != HASH_SPACE:
            return False
        return all(self._shards[i].hi == self._shards[i + 1].lo
                   and self._shards[i].span >= 1
                   for i in range(len(self._shards) - 1))

    def owners_of(self, component: str) -> list[Shard]:
        """Every shard whose range contains *component*'s hash (the
        property tests assert this is always exactly one, without
        trusting the bisect fast path)."""
        value = binding_hash(component)
        return [shard for shard in self._shards
                if shard.lo <= value < shard.hi]

    def __len__(self) -> int:
        return len(self._shards)

    def stats(self) -> dict[str, object]:
        return {
            "shards": len(self._shards),
            "machines": len(self.machines()),
            "members": sum(len(s.members) for s in self._shards),
            "window_load": sum(s.load for s in self._shards),
        }

    def __repr__(self) -> str:
        return (f"<ShardMap {self.directory.label!r} "
                f"{len(self._shards)} shards over "
                f"{len(self.machines())} machines>")


class ShardManager:
    """The split policy: watch per-shard window load, split hot shards.

    Wired as ``resolver.shard_manager = ShardManager(resolver, pool=…)``
    the resolver pings :meth:`on_resolution` after every completed
    walk (including each walk *inside* a batch — a split can land
    mid-``resolve_many``, which is exactly the case the epoch protocol
    has to survive).  Every *check_every* resolutions the manager
    scans each sharded directory and splits any shard whose share of
    the window's routing hits exceeds *split_fraction*, handing the
    upper half-range to the least-burdened machine of *pool* (pool
    machines may already host shards; counts are kept per machine
    identity, never by label).  Splits are executed by
    :meth:`~repro.nameservice.resolver.DistributedResolver.
    split_shard`, i.e. migration runs as simulated messages and an
    unreachable target aborts the split (retried next window).
    """

    def __init__(self, resolver, *, pool: Iterable[Machine],
                 split_fraction: float = 0.25,
                 check_every: int = 1000,
                 min_window: int = 100,
                 max_shards: int = 64,
                 on_split: Optional[Callable[..., None]] = None):
        self.resolver = resolver
        self.placement = resolver.placement
        self.pool = list(pool)
        self.split_fraction = split_fraction
        self.check_every = check_every
        self.min_window = min_window
        self.max_shards = max_shards
        self.on_split = on_split
        self.resolutions = 0
        self.splits = 0
        self.aborted_splits = 0

    # -- the feedback loop --------------------------------------------------

    def on_resolution(self) -> None:
        """One walk finished; maybe run a check window."""
        self.resolutions += 1
        if self.resolutions % self.check_every == 0:
            self.check()

    def check(self) -> int:
        """Scan every sharded directory once; returns splits done."""
        done = 0
        for shard_map in self.placement.shard_maps():
            done += self._check_map(shard_map)
            shard_map.reset_window()
        return done

    def _check_map(self, shard_map: ShardMap) -> int:
        done = 0
        while len(shard_map) < self.max_shards:
            window = sum(s.load for s in shard_map.shards)
            if window < self.min_window:
                break
            hot = max(shard_map.shards,
                      key=lambda s: (s.load, -s.lo))
            if hot.load <= self.split_fraction * window:
                break
            if hot.span < 2:
                break  # a single hash value cannot split further
            target = self._pick_target(shard_map, hot)
            if target is None:
                break
            if self.resolver.split_shard(shard_map.directory, hot,
                                         target):
                self.splits += 1
                done += 1
                if self.on_split is not None:
                    self.on_split(shard_map, hot, target)
            else:
                self.aborted_splits += 1
                break  # unreachable target — retry next window
        return done

    def _pick_target(self, shard_map: ShardMap,
                     hot: Shard) -> Optional[Machine]:
        """The live pool machine owning the fewest shards of this map
        (ties broken by pool order — deterministic per seed).  The hot
        shard's own machine is excluded unless it is the only live
        candidate: splitting onto the same machine narrows the range
        but sheds no load."""
        best: Optional[Machine] = None
        best_count = None
        for machine in self.pool:
            if not machine.alive or machine is hot.machine:
                continue
            count = sum(1 for s in shard_map.shards
                        if s.machine is machine)
            if best_count is None or count < best_count:
                best, best_count = machine, count
        if best is None and hot.machine.alive \
                and hot.machine in self.pool:
            return hot.machine
        return best

    def stats(self) -> dict[str, int]:
        return {"resolutions": self.resolutions, "splits": self.splits,
                "aborted_splits": self.aborted_splits}
