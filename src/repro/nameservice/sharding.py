"""Consistent-hash sharding of directory bindings (extension).

At production scale a hot directory stops fitting on one machine — not
in bytes but in *load*: §6's cost analysis charges every resolution
step to the directory's hosting server, so a directory of a million
names under a Zipf workload saturates whichever single server hosts
it.  This module splits a directory's **bindings** (not the directory
object — σ stays one context, the paper's semantics are untouched)
across shard servers by consistent hashing of the binding name:

* a :class:`ShardMap` partitions the 32-bit hash space into contiguous
  ranges, one :class:`Shard` per range, each carrying a **replica set**
  (``Shard.replicas`` — primary first; degree set by
  ``place_sharded(..., replicas=N)``) — every binding name hashes into
  *exactly one* range, so exactly one shard owns it (property-tested),
  while the resolver's replica failover path can hop to a shard
  secondary when the primary is down;
* :meth:`ShardMap.plan_split` / :meth:`~repro.nameservice.placement.
  DirectoryPlacement.apply_split` split a hot shard's range in two,
  handing the upper half to a new machine — the migration itself is
  driven by :meth:`~repro.nameservice.resolver.DistributedResolver.
  split_shard` as *simulated messages*, so traces, failure injection
  and the retry/breaker machinery all apply to rebalancing traffic;
* :meth:`ShardMap.plan_merge` / :meth:`~repro.nameservice.placement.
  DirectoryPlacement.apply_merge` are the inverse: two *adjacent* cold
  ranges collapse into one, so maps stop growing monotonically to
  ``max_shards`` once load cools;
* a :class:`ShardManager` watches the per-shard routing load the
  resolver records (:meth:`ShardMap.note_load`), splits any shard
  whose share of a check window crosses the split threshold — the
  live feedback loop experiment A10 measures — and (when
  ``merge_fraction`` is set) merges the coldest adjacent pair back
  together when its combined share falls below it.

Shard membership changes ride the existing placement-*epoch* protocol
(:attr:`~repro.nameservice.placement.DirectoryPlacement.epoch`): a
split bumps the epoch exactly once, so prefix-cache entries memoized
under the pre-split map die instead of routing to the old owner.
Splits move *placement*, never binding values, so leases stay valid
across a migration (their cached entries die with the epoch and are
re-leased on the next walk).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Iterable, Optional
from zlib import crc32

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import ObjectEntity
from repro.sim.network import Machine

__all__ = ["HASH_SPACE", "binding_hash", "Shard", "ShardMap",
           "SplitPlan", "MergePlan", "ShardManager"]

#: The hash ring: binding names map into ``[0, HASH_SPACE)``.
HASH_SPACE = 1 << 32


def binding_hash(component: str) -> int:
    """Deterministic 32-bit hash of a binding name.

    ``zlib.crc32`` rather than :func:`hash`: python string hashing is
    salted per process, which would make shard ownership — and with it
    every trace and experiment row — nondeterministic across runs.
    """
    return crc32(component.encode("utf-8"))


class Shard:
    """One contiguous hash range ``[lo, hi)`` held by a replica set.

    ``replicas`` is (primary, *secondaries) — the primary serves
    routing and hosts migrations; secondaries exist so the resolver's
    failover path has somewhere to hop when the primary crashes.  The
    degree-1 case (``replicas == (machine,)``) is byte-identical to
    the historical single-owner shard.
    """

    __slots__ = ("lo", "hi", "replicas", "load", "members")

    def __init__(self, lo: int, hi: int, machine: Machine,
                 *secondaries: Machine):
        self.lo = lo
        self.hi = hi
        deduped: list[Machine] = []
        seen: set[int] = set()
        for candidate in (machine, *secondaries):
            if id(candidate) not in seen:
                seen.add(id(candidate))
                deduped.append(candidate)
        #: Replica set, primary first (deduped by machine identity).
        self.replicas: tuple[Machine, ...] = tuple(deduped)
        #: Routing hits recorded since the last manager check window.
        self.load = 0
        #: Binding names whose hash falls in this range (maintained so
        #: a split knows how many bindings migrate without rescanning
        #: the whole directory).
        self.members: set[str] = set()

    @property
    def machine(self) -> Machine:
        """The shard's primary (kept as a property so every historical
        single-owner call site reads the head of the replica set)."""
        return self.replicas[0]

    def owns(self, component: str) -> bool:
        return self.lo <= binding_hash(component) < self.hi

    @property
    def span(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:
        return (f"<Shard [{self.lo:#010x},{self.hi:#010x}) "
                f"@{self.machine.label} load={self.load} "
                f"members={len(self.members)}>")


@dataclass(frozen=True)
class SplitPlan:
    """A pure description of one shard split, computed before any
    migration message is sent and applied only if migration succeeds."""

    shard: Shard
    split_at: int
    machine: Machine                 #: primary of the new upper range
    moved: tuple[str, ...]           #: bindings migrating to *machine*
    #: Full replica set of the new shard (primary first).  Beyond the
    #: new primary these are drawn from the source shard's own
    #: replicas — machines that already hold the range's data — so a
    #: split keeps the map's replication degree without extra copies.
    targets: tuple[Machine, ...] = ()


@dataclass(frozen=True)
class MergePlan:
    """A pure description of one merge of two adjacent shards; the
    right shard's range folds into the left, computed before any
    migration message is sent and applied only if migration succeeds."""

    left: Shard
    right: Shard
    moved: tuple[str, ...]           #: bindings migrating to the left


class ShardMap:
    """The sharded placement of one directory's bindings.

    Ranges are kept sorted and contiguous over ``[0, HASH_SPACE)`` —
    the representation *cannot* express an unowned or doubly-owned
    hash, which is what makes the every-binding-has-exactly-one-owner
    property structural rather than aspirational (still
    property-tested over random split sequences).
    """

    def __init__(self, directory: ObjectEntity,
                 machines: Iterable[Machine], *, replicas: int = 1):
        machines = list(machines)
        if not machines:
            raise SchemeError("a shard map needs at least one machine")
        self.directory = directory
        count = len(machines)
        #: Replication degree: each shard's replica set is the next
        #: *replication* machines in ring order (clamped to the pool
        #: size — replicating onto the same machine twice is not
        #: replication).
        self.replication = max(1, min(int(replicas), count))
        bounds = [HASH_SPACE * index // count for index in range(count)]
        bounds.append(HASH_SPACE)
        self._shards = [
            Shard(bounds[i], bounds[i + 1],
                  *(machines[(i + k) % count]
                    for k in range(self.replication)))
            for i in range(count)]
        context: Context = directory.state
        for name_ in context.names():
            self._shard_for_hash(binding_hash(name_)).members.add(name_)

    # -- routing ------------------------------------------------------------

    def _shard_for_hash(self, value: int) -> Shard:
        index = bisect_right(self._los(), value) - 1
        return self._shards[index]

    def _los(self) -> list[int]:
        return [shard.lo for shard in self._shards]

    def owner_of(self, component: str) -> Shard:
        """The unique shard owning *component*."""
        return self._shard_for_hash(binding_hash(component))

    def machine_of(self, component: str) -> Machine:
        return self.owner_of(component).machine

    def note_load(self, component: str) -> None:
        """Record one routing hit against the owning shard (the
        signal :class:`ShardManager` splits on — counted per shard,
        never aggregated by machine label)."""
        self.owner_of(component).load += 1

    def add_member(self, component: str) -> None:
        """Track a binding created after the map was built (all writes
        come through the resolver/service rebind discipline)."""
        self.owner_of(component).members.add(component)

    # -- splitting ----------------------------------------------------------

    def plan_split(self, shard: Shard, machine: Machine,
                   at: Optional[int] = None) -> SplitPlan:
        """Describe splitting *shard* at *at* (default: range midpoint),
        handing ``[at, hi)`` to *machine*.  Pure — nothing changes
        until :meth:`apply_split`."""
        if shard not in self._shards:
            raise SchemeError(f"{shard!r} is not a shard of this map")
        if shard.span < 2:
            raise SchemeError(f"{shard!r} cannot split further")
        split_at = shard.lo + shard.span // 2 if at is None else at
        if not shard.lo < split_at < shard.hi:
            raise SchemeError(
                f"split point {split_at:#x} outside ({shard.lo:#x}, "
                f"{shard.hi:#x})")
        moved = tuple(sorted(
            name_ for name_ in shard.members
            if binding_hash(name_) >= split_at))
        fill = tuple(m for m in shard.replicas
                     if m is not machine)[:max(0, self.replication - 1)]
        return SplitPlan(shard=shard, split_at=split_at,
                         machine=machine, moved=moved,
                         targets=(machine,) + fill)

    def apply_split(self, plan: SplitPlan,
                    targets: Optional[tuple[Machine, ...]] = None) -> Shard:
        """Commit a planned split; returns the new shard.

        *targets* overrides the plan's replica set — the resolver
        passes the subset of planned targets that actually received
        the migrated bindings, so a target that crashed mid-migration
        is excluded rather than recorded as a (stale) replica.

        Window loads of both halves reset — the post-split window
        re-measures the true distribution instead of guessing how the
        old count divides.
        """
        shard = plan.shard
        index = self._shards.index(shard)
        members = targets or plan.targets or (plan.machine,)
        new = Shard(plan.split_at, shard.hi, *members)
        new.members.update(plan.moved)
        shard.members.difference_update(plan.moved)
        shard.hi = plan.split_at
        shard.load = 0
        self._shards.insert(index + 1, new)
        return new

    # -- merging ------------------------------------------------------------

    def plan_merge(self, left: Shard, right: Shard) -> MergePlan:
        """Describe folding *right*'s range into *left* (they must be
        adjacent: ``left.hi == right.lo``).  Pure — nothing changes
        until :meth:`apply_merge`."""
        if left not in self._shards or right not in self._shards:
            raise SchemeError("both shards must belong to this map")
        if left is right:
            raise SchemeError("cannot merge a shard with itself")
        if left.hi != right.lo:
            raise SchemeError(
                f"{left!r} and {right!r} are not adjacent")
        return MergePlan(left=left, right=right,
                         moved=tuple(sorted(right.members)))

    def apply_merge(self, plan: MergePlan) -> Shard:
        """Commit a planned merge; returns the surviving left shard.

        The union is taken over *right*'s live member set rather than
        the plan's snapshot, so bindings created in the right range
        between plan and commit stay owned.  The merged window load
        resets for the same reason a split's does.
        """
        left, right = plan.left, plan.right
        if right not in self._shards:
            raise SchemeError(f"{right!r} is not a shard of this map")
        left.hi = right.hi
        left.members.update(right.members)
        left.load = 0
        self._shards.remove(right)
        return left

    # -- introspection ------------------------------------------------------

    @property
    def shards(self) -> tuple[Shard, ...]:
        return tuple(self._shards)

    def machines(self) -> list[Machine]:
        """Machines holding any replica of any shard, deduped, in
        ring order (primaries before the secondaries that follow)."""
        seen: dict[int, Machine] = {}
        for shard in self._shards:
            for machine in shard.replicas:
                seen.setdefault(id(machine), machine)
        return list(seen.values())

    def reset_window(self) -> None:
        """Zero the per-shard load counters (end of a check window)."""
        for shard in self._shards:
            shard.load = 0

    def is_partition(self) -> bool:
        """True iff the ranges exactly tile ``[0, HASH_SPACE)`` — the
        exactly-one-owner invariant, checked structurally."""
        if not self._shards:
            return False
        if self._shards[0].lo != 0 or self._shards[-1].hi != HASH_SPACE:
            return False
        return all(self._shards[i].hi == self._shards[i + 1].lo
                   and self._shards[i].span >= 1
                   for i in range(len(self._shards) - 1))

    def owners_of(self, component: str) -> list[Shard]:
        """Every shard whose range contains *component*'s hash (the
        property tests assert this is always exactly one, without
        trusting the bisect fast path)."""
        value = binding_hash(component)
        return [shard for shard in self._shards
                if shard.lo <= value < shard.hi]

    def __len__(self) -> int:
        return len(self._shards)

    def stats(self) -> dict[str, object]:
        return {
            "shards": len(self._shards),
            "machines": len(self.machines()),
            "replication": self.replication,
            "members": sum(len(s.members) for s in self._shards),
            "window_load": sum(s.load for s in self._shards),
        }

    def __repr__(self) -> str:
        return (f"<ShardMap {self.directory.label!r} "
                f"{len(self._shards)} shards over "
                f"{len(self.machines())} machines>")


class ShardManager:
    """The split policy: watch per-shard window load, split hot shards.

    Wired as ``resolver.shard_manager = ShardManager(resolver, pool=…)``
    the resolver pings :meth:`on_resolution` after every completed
    walk (including each walk *inside* a batch — a split can land
    mid-``resolve_many``, which is exactly the case the epoch protocol
    has to survive).  Every *check_every* resolutions the manager
    scans each sharded directory and splits any shard whose share of
    the window's routing hits exceeds *split_fraction*, handing the
    upper half-range to the pool machine with the lowest *measured*
    load (``resolver.load_of_machine`` — work actually done, not shard
    count), skipping machines that are down or whose circuit breaker
    is open so a dead target is never re-picked window after window.
    Splits are executed by
    :meth:`~repro.nameservice.resolver.DistributedResolver.
    split_shard`, i.e. migration runs as simulated messages and an
    unreachable target aborts the split (retried next window).

    When *merge_fraction* > 0 the manager also runs the inverse
    policy: the coldest adjacent shard pair whose combined share of
    the window falls below *merge_fraction* is folded back into one
    shard (at most one merge per map per window — merged loads reset,
    so chaining merges inside one window would act on no data).  Keep
    ``merge_fraction`` well below ``split_fraction`` for hysteresis,
    or a shard could oscillate split/merge every other window.
    """

    def __init__(self, resolver, *, pool: Iterable[Machine],
                 split_fraction: float = 0.25,
                 merge_fraction: float = 0.0,
                 check_every: int = 1000,
                 min_window: int = 100,
                 max_shards: int = 64,
                 on_split: Optional[Callable[..., None]] = None,
                 on_merge: Optional[Callable[..., None]] = None):
        self.resolver = resolver
        self.placement = resolver.placement
        self.pool = list(pool)
        self.split_fraction = split_fraction
        self.merge_fraction = merge_fraction
        self.check_every = check_every
        self.min_window = min_window
        self.max_shards = max_shards
        self.on_split = on_split
        self.on_merge = on_merge
        self.resolutions = 0
        self.splits = 0
        self.aborted_splits = 0
        self.merges = 0
        self.aborted_merges = 0

    # -- the feedback loop --------------------------------------------------

    def on_resolution(self) -> None:
        """One walk finished; maybe run a check window."""
        self.resolutions += 1
        if self.resolutions % self.check_every == 0:
            self.check()

    def check(self) -> int:
        """Scan every sharded directory once; returns splits + merges
        done."""
        done = 0
        for shard_map in self.placement.shard_maps():
            done += self._check_map(shard_map)
            if self.merge_fraction > 0:
                done += self._check_merges(shard_map)
            shard_map.reset_window()
        return done

    def _check_map(self, shard_map: ShardMap) -> int:
        done = 0
        while len(shard_map) < self.max_shards:
            window = sum(s.load for s in shard_map.shards)
            if window < self.min_window:
                break
            hot = max(shard_map.shards,
                      key=lambda s: (s.load, -s.lo))
            if hot.load <= self.split_fraction * window:
                break
            if hot.span < 2:
                break  # a single hash value cannot split further
            target = self._pick_target(shard_map, hot)
            if target is None:
                break
            if self.resolver.split_shard(shard_map.directory, hot,
                                         target):
                self.splits += 1
                done += 1
                if self.on_split is not None:
                    self.on_split(shard_map, hot, target)
            else:
                self.aborted_splits += 1
                break  # unreachable target — retry next window
        return done

    def _check_merges(self, shard_map: ShardMap) -> int:
        """Fold the coldest adjacent pair if its combined share of the
        window is below *merge_fraction*.  At most one merge per map
        per window: the merged shard's load resets, so a second merge
        in the same window would be deciding on zeroed data."""
        if len(shard_map) < 2:
            return 0
        window = sum(s.load for s in shard_map.shards)
        if window < self.min_window:
            return 0
        shards = shard_map.shards
        coldest = min(range(len(shards) - 1),
                      key=lambda i: (shards[i].load + shards[i + 1].load,
                                     i))
        left, right = shards[coldest], shards[coldest + 1]
        if left.load + right.load > self.merge_fraction * window:
            return 0
        if self.resolver.merge_shards(shard_map.directory, left, right):
            self.merges += 1
            if self.on_merge is not None:
                self.on_merge(shard_map, left, right)
            return 1
        self.aborted_merges += 1
        return 0

    def _pick_target(self, shard_map: ShardMap,
                     hot: Shard) -> Optional[Machine]:
        """The pool machine with the lowest *measured* load
        (``resolver.load_of_machine`` — messages actually handled),
        tie-broken by the number of shard primaries it already holds
        and then by pool order (deterministic per seed).  The shard
        count matters *within* a check window: several splits can land
        before any new traffic runs, so measured load alone would pile
        every split of the window onto the same idle machine.
        Machines that are down or whose circuit breaker is open are
        skipped, so the manager never re-picks a dead target window
        after window only for ``split_shard`` to abort.  The hot
        shard's own replicas are excluded unless the primary is the
        only live candidate: splitting onto the same machine narrows
        the range but sheds no load."""
        resolver = self.resolver
        best: Optional[Machine] = None
        best_key = None
        for machine in self.pool:
            if not machine.alive or machine in hot.replicas:
                continue
            if not resolver.breaker_allows(machine):
                continue
            key = (resolver.load_of_machine(machine),
                   sum(1 for s in shard_map.shards
                       if s.machine is machine))
            if best_key is None or key < best_key:
                best, best_key = machine, key
        if best is None and hot.machine.alive \
                and hot.machine in self.pool \
                and resolver.breaker_allows(hot.machine):
            return hot.machine
        return best

    def stats(self) -> dict[str, int]:
        return {"resolutions": self.resolutions, "splits": self.splits,
                "aborted_splits": self.aborted_splits,
                "merges": self.merges,
                "aborted_merges": self.aborted_merges}
