"""Distributed compound-name resolution with measured cost.

:class:`DistributedResolver` performs the section-2 recursion over
*placed* directories: each step whose directory is hosted on a machine
other than where the previous step ran costs a message round-trip
through the simulator kernel (so latencies, traces and server load are
all observable).  Two classic interaction styles are supported:

* ``ITERATIVE`` — the client asks each directory's server in turn
  (every remote step is a client↔server round trip);
* ``RECURSIVE`` — the request is forwarded server-to-server and only
  the final answer returns to the client (one hop per transfer plus
  one reply).

Two mechanisms make resolution cheap at scale (both extensions,
DNS/AFS-style, measured by ablations A5 and A7):

* a per-machine **prefix cache** (:class:`~repro.nameservice.cache.
  PrefixCache`): repeated resolutions skip the walk up to the deepest
  live cached prefix, under the same NONE/TTL/INVALIDATE coherence
  policies as the binding cache, with :meth:`DistributedResolver.rebind`
  as the write discipline that keeps INVALIDATE exact;
* a **batch API** (:meth:`DistributedResolver.resolve_many`) that
  sorts names by shared prefix, dedupes common steps within the batch,
  and coalesces queries to the same server into one round trip.

A third mechanism makes resolution *survive faults* (ablation A8):
with a :class:`~repro.nameservice.retry.RetryPolicy` the walk retries
dropped hops with exponential backoff and seeded jitter over virtual
time, keeps a per-server :class:`~repro.nameservice.retry.
CircuitBreaker`, and **fails over** to the next live replica of a
directory (:meth:`~repro.nameservice.placement.DirectoryPlacement.
place_replicated`) instead of failing the resolution.  When *no*
authoritative replica is reachable, the policy-gated ``serve_stale``
mode answers from the client's possibly-stale prefix cache and tags
the result **weakly coherent** (``cost.weak``) — degraded answers are
never silently passed off as coherent.

The resolver is semantics-preserving: with caching off its result is
always identical to :func:`repro.model.resolution.resolve` on the same
context — the distribution changes *cost*, never *meaning*.  With
caching on, coherence is weakened only in the bounded way the cache
policy allows (TTL staleness windows; nothing after an INVALIDATE
delivery; explicitly-tagged weak answers in ``serve_stale`` mode).
(Property-tested.)

When the simulator carries an :class:`~repro.obs.Instrumentation`,
every resolution becomes a typed span tree (`repro.obs`): a
``resolution`` (or ``batch``) root, one ``hop`` span per message leg
carrying trace context into the kernel, ``step`` instants per
component consumed, ``cache`` instants per prefix probe, ``retry`` /
``failover`` / ``circuit`` / ``stale`` instants for the
fault-tolerance layer, and ``rebind`` spans whose replication and
invalidation fan-outs parent their deliveries.  Span message/step
counts reconcile exactly with the returned :class:`ResolutionCost`
(tested), so the trace *is* the cost accounting, hop by hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, CompoundName, NameLike
from repro.nameservice.cache import (
    CachePolicy,
    PrefixCache,
    PrefixEntry,
    binding_dep,
    context_dep,
)
from repro.nameservice.leases import (
    LeaseManager,
    LeaseTable,
    callback_fanout,
)
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.retry import (BreakerState, CircuitBreaker,
                                     RetryPolicy)
from repro.nameservice.sharding import Shard
from repro.sim.kernel import Simulator
from repro.sim.network import Machine
from repro.sim.process import SimProcess

__all__ = ["ResolutionStyle", "ResolutionCost", "DistributedResolver",
           "check_semantics_preserved"]


class ResolutionStyle(enum.Enum):
    """Who chases the referrals."""

    ITERATIVE = "iterative"
    RECURSIVE = "recursive"

    def __str__(self) -> str:
        return self.value


@dataclass
class ResolutionCost:
    """Measured cost of one distributed resolution."""

    steps: int = 0            #: components consumed
    local_steps: int = 0      #: steps served on the current machine
    remote_steps: int = 0     #: steps that needed another machine
    cached_steps: int = 0     #: steps skipped via a cached/deduped prefix
    messages: int = 0         #: simulator messages exchanged
    latency: float = 0.0      #: virtual time spent (incl. backoff waits)
    failed_hops: int = 0      #: unrecovered lost legs / unreachable dirs
    retries: int = 0          #: hop re-sends under the retry policy
    failovers: int = 0        #: replicas abandoned for the next one
    stale_steps: int = 0      #: directory steps served from stale cache
    weak: bool = False        #: True if any step was answered degraded
    servers_touched: set[str] = field(default_factory=set)

    @property
    def failed(self) -> bool:
        """True if the walk lost a leg it could not recover — the
        answer is not authoritative (fail-fast resolutions under a
        crash/partition land here; failover resolutions only when
        every replica was unreachable and no stale serve applied)."""
        return self.failed_hops > 0

    @property
    def coherence(self) -> str:
        """``"weak"`` for degraded (stale-served) answers, else
        ``"coherent"`` — the paper's §3 distinction, operational."""
        return "weak" if self.weak else "coherent"

    def __add__(self, other: "ResolutionCost") -> "ResolutionCost":
        if not isinstance(other, ResolutionCost):
            return NotImplemented
        return ResolutionCost(
            steps=self.steps + other.steps,
            local_steps=self.local_steps + other.local_steps,
            remote_steps=self.remote_steps + other.remote_steps,
            cached_steps=self.cached_steps + other.cached_steps,
            messages=self.messages + other.messages,
            latency=self.latency + other.latency,
            failed_hops=self.failed_hops + other.failed_hops,
            retries=self.retries + other.retries,
            failovers=self.failovers + other.failovers,
            stale_steps=self.stale_steps + other.stale_steps,
            weak=self.weak or other.weak,
            servers_touched=self.servers_touched | other.servers_touched)

    def __radd__(self, other) -> "ResolutionCost":
        if other == 0:  # so sum(costs) works without a start value
            return self + ResolutionCost()
        return NotImplemented

    @classmethod
    def merge(cls, costs: Iterable["ResolutionCost"]) -> "ResolutionCost":
        """Aggregate many per-resolution costs into one report."""
        total = cls()
        for cost in costs:
            total.steps += cost.steps
            total.local_steps += cost.local_steps
            total.remote_steps += cost.remote_steps
            total.cached_steps += cost.cached_steps
            total.messages += cost.messages
            total.latency += cost.latency
            total.failed_hops += cost.failed_hops
            total.retries += cost.retries
            total.failovers += cost.failovers
            total.stale_steps += cost.stale_steps
            total.weak = total.weak or cost.weak
            total.servers_touched |= cost.servers_touched
        return total

    def __str__(self) -> str:
        extra = ""
        if self.failed_hops or self.retries or self.failovers:
            extra = (f" failed={self.failed_hops} retries={self.retries} "
                     f"failovers={self.failovers}")
        if self.weak:
            extra += " WEAK"
        return (f"steps={self.steps} remote={self.remote_steps} "
                f"cached={self.cached_steps} "
                f"messages={self.messages} latency={self.latency:g}"
                f"{extra}")


class DistributedResolver:
    """Resolves names against placed directories, through the kernel.

    Args:
        simulator: The kernel carrying the resolution traffic.
        placement: Directory → machine placement (possibly replicated).
        latency: One-way message latency for server hops.
        cache_policy: Coherence policy for the per-machine prefix
            caches (``NONE`` disables prefix caching entirely).
        cache_ttl: Expiry window for ``TTL`` prefix entries, in
            virtual time.
        retry_policy: When set, dropped hops are retried with backoff
            and seeded jitter, a per-server circuit breaker skips
            servers that keep dropping, and the walk fails over across
            a directory's replica set.  ``None`` (the default) keeps
            the seed fail-fast behaviour: a lost leg fails the walk.
        serve_stale: Policy gate for degraded reads — when no
            authoritative replica of a directory is reachable, answer
            the step from the client's possibly-stale prefix cache and
            tag the resolution weakly coherent.  Requires a cache
            policy other than ``NONE`` and a retry policy.  The
            ``LEASE`` policy implies this gate (its *grace mode*).
        breaker_threshold / breaker_cooldown: Circuit-breaker tuning
            (consecutive drops to trip; virtual-time cooldown before
            half-opening).
        lease_term: Virtual-time term of ``LEASE``-policy grants; the
            bound on claimed-coherent staleness is this term plus one
            delivery delay.
    """

    def __init__(self, simulator: Simulator,
                 placement: DirectoryPlacement,
                 latency: float = 1.0,
                 cache_policy: CachePolicy = CachePolicy.NONE,
                 cache_ttl: float = 10.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 serve_stale: bool = False,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 lease_term: float = 30.0,
                 migration_batch: int = 100_000):
        self._sim = simulator
        self._placement = placement
        self._latency = latency
        self._obs = simulator.obs
        self._servers: dict[int, SimProcess] = {}
        self.cache_policy = cache_policy
        self.cache_ttl = cache_ttl
        self.retry_policy = retry_policy
        self.serve_stale = serve_stale
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.lease_term = lease_term
        # LEASE policy: one server-side manager for the deployment,
        # one client-side table per machine (created lazily alongside
        # its prefix cache).
        self.leases: Optional[LeaseManager] = None
        self._lease_tables: dict[int, LeaseTable] = {}
        if cache_policy is CachePolicy.LEASE:
            self.leases = LeaseManager(
                term=lease_term, retry_policy=retry_policy,
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown, obs=self._obs)
        if self._obs.enabled:
            metrics = self._obs.metrics
            self._m_messages = metrics.counter("resolver_messages_total")
            self._m_invalidation_msgs = metrics.counter(
                "resolver_invalidation_messages_total")
            self._m_latency = metrics.histogram(
                "resolver_resolution_latency")
            self._m_res_messages = metrics.histogram(
                "resolver_resolution_messages",
                buckets=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0))
        self._prefix_caches: dict[int, PrefixCache] = {}
        self._machines_by_id: dict[int, Machine] = {}
        # Per-server-process circuit breakers, keyed by process uid.
        self._breakers: dict[int, CircuitBreaker] = {}
        # INVALIDATE bookkeeping: consumed binding → caching machines
        # (insertion-ordered so fan-outs are deterministic per seed).
        self._holders: dict[tuple, dict[int, None]] = {}
        # Per-server load, keyed by process uid — labels are not
        # identities (two machines may share one), so counters never
        # collide; `load` aggregates by label for reporting only.
        self._load: dict[int, int] = {}
        self._server_labels: dict[int, str] = {}
        self.invalidation_messages = 0
        self.invalidation_latency = 0.0
        self.invalidation_losses = 0
        self.replication_messages = 0
        self.anti_entropy_messages = 0
        # Sharding: bindings moved per migration message, the live
        # split policy (wired by the deployment as
        # ``resolver.shard_manager = ShardManager(resolver, pool=…)``)
        # and migration accounting.
        self.migration_batch = migration_batch
        self.shard_manager = None
        self.migration_messages = 0
        self.migration_latency = 0.0
        self.shard_splits = 0
        self.shard_split_aborts = 0
        self.shard_merges = 0
        self.shard_merge_aborts = 0

    @property
    def placement(self) -> DirectoryPlacement:
        """The placement this resolver routes against."""
        return self._placement

    def server_for(self, machine: Machine) -> SimProcess:
        """The (lazily spawned) directory-server process of a machine.

        A server whose process died with a machine crash is respawned
        here once the machine is back up — the lazy half of the
        restart story (:meth:`handle_restart` is the eager half, wired
        as a :meth:`~repro.sim.failures.FailureInjector.on_restart`
        hook, which also runs anti-entropy).
        """
        server = self._servers.get(id(machine))
        if server is None or (not server.alive and machine.alive):
            server = self._sim.spawn(machine,
                                     label=f"dirserver@{machine.label}")
            self._servers[id(machine)] = server
            self._server_labels[server.uid] = server.label
        return server

    def _breaker_for(self, server: SimProcess) -> CircuitBreaker:
        breaker = self._breakers.get(server.uid)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
                label=server.label, obs=self._obs)
            self._breakers[server.uid] = breaker
        return breaker

    def breaker_of(self, machine: Machine) -> CircuitBreaker:
        """The circuit breaker guarding a machine's current server."""
        return self._breaker_for(self.server_for(machine))

    def breaker_allows(self, machine: Machine) -> bool:
        """Whether *machine*'s breaker would admit a request — a
        **pure read** for policy decisions (the split-target choice).

        Unlike :meth:`breaker_of` this never spawns a server, and
        unlike :meth:`CircuitBreaker.allow` it never flips an open
        breaker to half-open — probing is the failover path's job, not
        a placement scan's.  A machine with no server (or no breaker)
        has no recorded failures, so it is allowed.
        """
        server = self._servers.get(id(machine))
        if server is None:
            return True
        breaker = self._breakers.get(server.uid)
        if breaker is None or breaker.state is not BreakerState.OPEN:
            return True
        return (self._sim.clock.now - breaker.opened_at
                >= breaker.cooldown)

    # -- load reporting ----------------------------------------------------

    @property
    def load(self) -> dict[str, int]:
        """Per-server load report, keyed by server label — for
        **reporting only**.

        Counters are kept per server *process*; labels are not
        identities (two servers may share one, and a respawned server
        is a new process under the old label), so this label-summed
        view is ambiguous.  Anything that *decides* off load — shard
        splitting, queue models, failover scoring — must key on uid
        via :meth:`load_by_uid`, :meth:`load_of` or
        :meth:`load_of_machine`.
        """
        report: dict[str, int] = {}
        for uid, count in self._load.items():
            label = self._server_labels[uid]
            report[label] = report.get(label, 0) + count
        return report

    def load_by_uid(self) -> dict[int, int]:
        """Per-server load keyed by server-process uid — the
        collision-free view placement decisions must use (a snapshot;
        diff two snapshots for a window)."""
        return dict(self._load)

    def load_of(self, server: SimProcess) -> int:
        """Steps served by one specific server process."""
        return self._load.get(server.uid, 0)

    def load_of_machine(self, machine: Machine) -> int:
        """Steps served by *machine*'s current server process (0 if
        no server ever ran there; a crashed-and-respawned server
        counts only its current incarnation)."""
        server = self._servers.get(id(machine))
        if server is None:
            return 0
        return self._load.get(server.uid, 0)

    def reset_load(self) -> None:
        """Clear the per-server load counters."""
        self._load.clear()

    def _charge(self, server: SimProcess) -> None:
        """Account one directory step served by *server*."""
        self._load[server.uid] = self._load.get(server.uid, 0) + 1
        if self._obs.enabled:
            self._obs.metrics.counter("resolver_server_load_total",
                                      {"server": server.label}).inc()

    # -- prefix caching ----------------------------------------------------

    def prefix_cache_of(self, machine: Machine) -> PrefixCache:
        """The (lazily created) prefix cache of a client machine."""
        cache = self._prefix_caches.get(id(machine))
        if cache is None:
            leased = self.cache_policy is CachePolicy.LEASE
            cache = PrefixCache(
                machine, obs=self._obs,
                # LEASE keeps expired entries for grace-mode serving
                # even without the explicit serve_stale gate.
                keep_expired=self.serve_stale or leased,
                lease_table=(self.lease_table_of(machine)
                             if leased else None))
            self._prefix_caches[id(machine)] = cache
            self._machines_by_id[id(machine)] = machine
        return cache

    def lease_table_of(self, machine: Machine) -> LeaseTable:
        """The (lazily created) client-side lease table of a machine."""
        table = self._lease_tables.get(id(machine))
        if table is None:
            table = LeaseTable(machine.label, obs=self._obs)
            self._lease_tables[id(machine)] = table
            self._machines_by_id[id(machine)] = machine
        return table

    def lease_stats(self) -> dict[str, int]:
        """Server-side plus aggregated client-side lease counters."""
        totals = {"grants": 0, "renewals": 0, "revocations": 0,
                  "expirations": 0, "grace_hits": 0, "revalidations": 0}
        for table in self._lease_tables.values():
            for key, value in table.stats().items():
                if key in totals:
                    totals[key] += value
        if self.leases is not None:
            for key, value in self.leases.stats().items():
                totals[f"server_{key}"] = value
        return totals

    def cache_stats(self) -> dict[str, int]:
        """Aggregate hit/miss/invalidation/expiry/stale counts over
        every machine's prefix cache."""
        totals = {"hits": 0, "misses": 0, "invalidations": 0,
                  "expirations": 0, "stale_hits": 0}
        for cache in self._prefix_caches.values():
            for key, value in cache.stats().items():
                totals[key] += value
        return totals

    # -- messaging helpers -------------------------------------------------

    def _hop(self, sender: SimProcess, receiver: SimProcess,
             cost: ResolutionCost, what: str,
             count_failure: bool = True) -> bool:
        """One message leg, pumped through the kernel only as far as
        its own delivery (a hop no longer drains unrelated events).

        Returns True if the leg was delivered.  With *count_failure*
        a lost leg is terminal: it bumps ``cost.failed_hops`` and
        fails the enclosing span.  The failover path passes False and
        does its own recovery accounting (retries / failovers).
        """
        if sender is receiver:
            return True
        obs = self._obs
        before = self._sim.clock.now
        if not sender.alive:
            # A downed server answers/refers nothing: no message ever
            # leaves it, so the walk records a failed zero-message hop
            # instead of raising out of the resolution.
            if count_failure:
                cost.failed_hops += 1
            if obs.enabled:
                span = obs.tracer.begin(
                    "hop", what, before,
                    attrs={"from": sender.label, "to": receiver.label,
                           "messages": 0})
                span.fail(f"sender {sender.label} down")
                obs.tracer.end(span, before)
                if count_failure and obs.tracer.current is not None:
                    obs.tracer.current.fail(
                        f"hop {what} lost: sender {sender.label} down")
            return False
        span = None
        if obs.enabled:
            span = obs.tracer.begin(
                "hop", what, before,
                attrs={"from": sender.label, "to": receiver.label,
                       "messages": 1})
        message = sender.send(receiver, payload={"ns": what},
                              latency=self._latency)
        if span is not None:
            message.trace_id = span.trace_id
            message.parent_span_id = span.span_id
        self._sim.run_until_settled(message)
        cost.messages += 1
        cost.latency += self._sim.clock.now - before
        if message.dropped and count_failure:
            cost.failed_hops += 1
        if span is not None:
            if message.dropped:
                span.fail(message.drop_reason)
            obs.tracer.end(span, self._sim.clock.now)
            if message.dropped and count_failure \
                    and obs.tracer.current is not None:
                # The walk lost a leg — surface it on the enclosing
                # resolution/batch span too.
                obs.tracer.current.fail(
                    f"hop {what} dropped: {message.drop_reason}")
            self._m_messages.inc()
        return not message.dropped

    def _walk_to(self, client_server: SimProcess, at: SimProcess,
                 target: SimProcess, cost: ResolutionCost,
                 style: ResolutionStyle) -> SimProcess:
        if target is at:
            return at
        cost.servers_touched.add(target.label)
        if style is ResolutionStyle.ITERATIVE:
            # Referral back to the client, then query the next server.
            self._hop(at, client_server, cost, "referral")
            self._hop(client_server, target, cost, "query")
        else:
            self._hop(at, target, cost, "forward")
        return target

    def _hop_retried(self, sender: SimProcess, receiver: SimProcess,
                     cost: ResolutionCost, what: str) -> bool:
        """A hop that honours the retry policy (no failover — the
        endpoints are fixed, e.g. the answer leg home).  Without a
        policy it is exactly :meth:`_hop`."""
        policy = self.retry_policy
        if policy is None:
            return self._hop(sender, receiver, cost, what)
        obs = self._obs
        for attempt in range(1, policy.max_attempts + 1):
            if self._hop(sender, receiver, cost, what,
                         count_failure=False):
                return True
            if attempt >= policy.max_attempts:
                break
            cost.retries += 1
            delay = policy.backoff(attempt, self._sim.rng)
            if obs.enabled:
                obs.metrics.counter("resolver_retries_total").inc()
                obs.tracer.event(
                    "retry", f"{what}→{receiver.label}",
                    self._sim.clock.now,
                    attrs={"attempt": attempt, "backoff": delay,
                           "server": receiver.label})
            before = self._sim.clock.now
            self._sim.run(until=before + delay)
            cost.latency += self._sim.clock.now - before
        cost.failed_hops += 1
        if obs.enabled and obs.tracer.current is not None:
            obs.tracer.current.fail(f"hop {what} lost after "
                                    f"{policy.max_attempts} attempts")
        return False

    def _return_home(self, client_server: SimProcess, at: SimProcess,
                     cost: ResolutionCost,
                     style: ResolutionStyle) -> None:
        if at is not client_server:
            self._hop_retried(at, client_server, cost, "answer")

    @staticmethod
    def _count_locality(client_server: SimProcess, at: SimProcess,
                        cost: ResolutionCost) -> None:
        if at is client_server:
            cost.local_steps += 1
        else:
            cost.remote_steps += 1

    def _route_host(self, directory: Entity, component: Optional[str],
                    routes: Optional[dict]) -> Optional[Machine]:
        """The machine serving *component*'s binding in *directory*,
        through the batch route memo when one is active.

        The memo saves re-hashing shared prefixes across a sorted
        batch, but a route is only as good as the placement epoch it
        was computed under: a shard split landing **mid-batch** bumps
        the epoch, and serving later names from pre-split routes would
        send them to a server whose bindings just migrated away.  The
        memo therefore records its epoch and self-clears on any bump —
        later batch items re-route against the live shard map.

        With no sharded placements at all there is nothing to hash and
        nothing for the memo to save, so the whole apparatus is
        skipped — an unsharded deployment pays one boolean check over
        the classic per-directory lookup.
        """
        if routes is None or not self._placement.has_sharding:
            return self._placement.host_of_binding(directory, component)
        epoch = self._placement.epoch
        if routes.get("epoch") != epoch:
            routes.clear()
            routes["epoch"] = epoch
        key = (directory.uid, component)
        if key in routes:
            # Memo hit — still record the routing hit against the
            # owning shard, or the split policy would go blind to
            # exactly the hot repeated lookups it exists to catch.
            self._placement.note_binding_load(directory, component)
            return routes[key]
        host = self._placement.host_of_binding(directory, component)
        routes[key] = host
        return host

    def _step_into(self, directory: Entity, at: SimProcess,
                   component: Optional[str],
                   routes: Optional[dict]) -> SimProcess:
        # Inlined no-sharding fast path (hot: once per walk step).
        placement = self._placement
        if routes is None or not placement.has_sharding:
            host = placement.host_of_binding(directory, component)
        else:
            host = self._route_host(directory, component, routes)
        if host is None:
            # Unplaced directories (e.g. per-process private roots)
            # are wherever the walk already is.
            return at
        server = self.server_for(host)
        self._charge(server)
        return server

    # -- failover ----------------------------------------------------------

    def _enter_directory(self, client_server: SimProcess,
                         directory: ObjectEntity, at: SimProcess,
                         cost: ResolutionCost,
                         style: ResolutionStyle,
                         component: Optional[str] = None,
                         routes: Optional[dict] = None,
                         ) -> Optional[SimProcess]:
        """Move the walk to the server answering the next lookup.

        *component* is the binding about to be consulted in
        *directory*: for sharded directories the serving machine is
        per-binding (the owning shard), not per-directory, so routing
        needs to know what will be asked.  ``None`` (no next lookup)
        routes to the directory's representative host.

        Without a retry policy this is the seed fail-fast path: one
        attempt against the primary, lost legs fail the walk.  With
        one, candidates are tried in replica order (preferring the
        server the walk already parks at), each with bounded backoff
        retries and a circuit breaker; stale replicas are skipped.
        Returns the server now serving the walk, or None when *every*
        replica was unreachable (the caller degrades or fails).
        """
        if self.retry_policy is None:
            return self._walk_to(client_server, at,
                                 self._step_into(directory, at,
                                                 component, routes),
                                 cost, style)
        return self._enter_with_failover(client_server, directory, at,
                                         cost, style, component)

    def _enter_with_failover(self, client_server: SimProcess,
                             directory: ObjectEntity, at: SimProcess,
                             cost: ResolutionCost,
                             style: ResolutionStyle,
                             component: Optional[str] = None,
                             ) -> Optional[SimProcess]:
        replicas = list(self._placement.replicas_for_binding(directory,
                                                             component))
        if not replicas:
            return at  # unplaced — local state, nothing to reach
        # Prefer the replica the walk is already parked at: entering
        # it is free (batch coalescing depends on this).
        if at.machine in replicas:
            replicas.remove(at.machine)
            replicas.insert(0, at.machine)
        policy = self.retry_policy
        obs = self._obs
        iterative = style is ResolutionStyle.ITERATIVE
        origin = at if at.alive else client_server
        referred = False
        # Candidates passed over (stale-skipped, breaker-skipped, or
        # attempt-exhausted) before one answered: serving from any
        # later replica is a failover.
        passed_over = 0
        for machine in replicas:
            if self._placement.is_stale(directory, machine):
                # A replica that missed a write must not serve reads
                # until anti-entropy catches it up.
                passed_over += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "resolver_stale_replica_skips_total").inc()
                    obs.tracer.event(
                        "failover", "replica.stale-skip",
                        self._sim.clock.now,
                        attrs={"directory": directory.label,
                               "replica": machine.label})
                continue
            if not machine.alive and id(machine) not in self._servers:
                # The machine is down and no server process ever ran
                # there — there is nothing to address a message to, so
                # the candidate is unreachable without spending a hop.
                passed_over += 1
                if obs.enabled:
                    obs.tracer.event(
                        "failover", "replica.down-skip",
                        self._sim.clock.now,
                        attrs={"directory": directory.label,
                               "replica": machine.label})
                continue
            server = self.server_for(machine)
            if server is at:
                self._charge(server)
                return at
            now = self._sim.clock.now
            breaker = self._breaker_for(server)
            if not breaker.allow(now):
                passed_over += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "resolver_circuit_open_skips_total").inc()
                    obs.tracer.event(
                        "circuit", "skip", now,
                        attrs={"server": server.label,
                               "directory": directory.label})
                continue
            cost.servers_touched.add(server.label)
            if iterative and not referred and at is not client_server:
                # One referral leaves the current server, however many
                # candidate queries follow.
                self._hop_retried(at, client_server, cost, "referral")
                referred = True
            sender = client_server if iterative else origin
            what = "query" if iterative else "forward"
            for attempt in range(1, policy.max_attempts + 1):
                if self._hop(sender, server, cost, what,
                             count_failure=False):
                    breaker.record_success(self._sim.clock.now)
                    self._charge(server)
                    if passed_over:
                        cost.failovers += 1
                        if obs.enabled:
                            obs.metrics.counter(
                                "resolver_failovers_total").inc()
                            obs.tracer.event(
                                "failover", directory.label,
                                self._sim.clock.now,
                                attrs={"directory": directory.label,
                                       "to": server.label,
                                       "passed_over": passed_over})
                    return server
                breaker.record_failure(self._sim.clock.now)
                if attempt >= policy.max_attempts or \
                        not breaker.allow(self._sim.clock.now):
                    break
                cost.retries += 1
                delay = policy.backoff(attempt, self._sim.rng)
                if obs.enabled:
                    obs.metrics.counter("resolver_retries_total").inc()
                    obs.tracer.event(
                        "retry", f"{what}→{server.label}",
                        self._sim.clock.now,
                        attrs={"attempt": attempt, "backoff": delay,
                               "server": server.label})
                before = self._sim.clock.now
                self._sim.run(until=before + delay)
                cost.latency += self._sim.clock.now - before
            passed_over += 1
        return None

    def _degraded_step(self, client_server: SimProcess, context: Context,
                       rooted: bool, consumed: tuple[str, ...],
                       directory: ObjectEntity, cost: ResolutionCost,
                       ) -> tuple[SimProcess, Optional[PrefixEntry]]:
        """Every replica of *directory* was unreachable: serve the
        step from the client's stale prefix cache (tagging the answer
        weakly coherent) if the ``serve_stale`` gate allows, else mark
        the walk failed.  Either way the walk continues at the client.

        Under ``LEASE`` this is *grace mode*: the client enters grace
        (it cannot renew) and keeps answering from its expired leased
        entries — returning the **cached** directory, which may predate
        a rebind it never heard about, so the caller must continue the
        walk in the returned entry's state.  The grace answer is
        always tagged weak; on heal, :meth:`LeaseTable.exit_grace`
        revalidates before anything is promoted back to fresh.

        Returns ``(server the walk continues at, stale entry or
        None)``; a non-None entry means the step was served degraded.
        """
        obs = self._obs
        now = self._sim.clock.now
        leased = self.cache_policy is CachePolicy.LEASE
        if (self.serve_stale or leased) \
                and self.cache_policy is not CachePolicy.NONE:
            cache = self.prefix_cache_of(client_server.machine)
            entry = cache.lookup_stale(context, rooted, consumed)
            if leased:
                # Grace mode: the cached entry may point at an *older*
                # directory than the true σ does (a rebind we never
                # heard about) — serve the promise we still hold,
                # weak-tagged.  A *revoked* promise (delivered break
                # callback) was dropped from the cache, so it can
                # never be resurrected here.
                if entry is not None:
                    self.lease_table_of(
                        client_server.machine).enter_grace(now)
            elif entry is not None and entry.directory is not directory:
                entry = None
            if entry is not None:
                cost.stale_steps += 1
                cost.weak = True
                if leased:
                    self.lease_table_of(
                        client_server.machine).served_in_grace(now)
                if obs.enabled:
                    obs.metrics.counter(
                        "resolver_stale_served_total").inc()
                    obs.tracer.event(
                        "stale", "serve.degraded", now,
                        attrs={"directory": entry.directory.label,
                               "prefix": "/".join(consumed),
                               "machine": client_server.machine.label})
                return client_server, entry
        cost.failed_hops += 1
        if obs.enabled:
            obs.metrics.counter("resolver_unreachable_total").inc()
            obs.tracer.event(
                "failover", "exhausted", now,
                attrs={"directory": directory.label,
                       "prefix": "/".join(consumed)})
            if obs.tracer.current is not None:
                obs.tracer.current.fail(
                    f"directory {directory.label} unreachable")
        return client_server, None

    # -- the walk ----------------------------------------------------------

    def _deepest_prefix(self, client_machine: Machine, context: Context,
                        rooted: bool, comps: list[str],
                        memo: Optional[dict]):
        """The deepest usable memoized prefix of *comps*.

        Batch-local memo entries (always coherent — nothing external
        interleaves within one batch) and the machine's policy-gated
        prefix cache are both consulted; the deeper wins.  Returns
        ``(consumed, directory, deps, source)`` or None, where
        *source* says which layer won (``"memo"`` or ``"cache"``).
        """
        best = None
        if memo is not None:
            for length in range(len(comps) - 1, 0, -1):
                hit = memo.get((id(context), rooted, tuple(comps[:length])))
                if hit is not None:
                    best = (length, hit[0], hit[1], "memo")
                    break
        if self.cache_policy is not CachePolicy.NONE:
            cache = self.prefix_cache_of(client_machine)
            found = cache.lookup_longest(context, rooted, comps,
                                         self._sim.clock.now,
                                         self._placement.epoch)
            if found is not None and (best is None or found[0] > best[0]):
                entry = found[1]
                best = (found[0], entry.directory, entry.deps, "cache")
        return best

    def _remember_prefix(self, client_machine: Machine, context: Context,
                         rooted: bool, consumed: tuple[str, ...],
                         directory: ObjectEntity, deps: tuple,
                         memo: Optional[dict]) -> None:
        if memo is not None:
            memo[(id(context), rooted, consumed)] = (directory, deps)
        if self.cache_policy is CachePolicy.NONE:
            return
        if self._placement.host_of(directory) is None:
            return  # local state — there is no walk to skip
        cache = self.prefix_cache_of(client_machine)
        ttl = self.cache_ttl if self.cache_policy is CachePolicy.TTL else None
        now = self._sim.clock.now
        epoch = self._placement.epoch
        cache.fill(context, rooted, consumed, directory, deps,
                   now, ttl, epoch)
        if self.cache_policy is CachePolicy.INVALIDATE:
            for dep in deps:
                self._holders.setdefault(
                    dep, {})[id(client_machine)] = None
        elif self.cache_policy is CachePolicy.LEASE:
            # Grants piggyback on the fill — the walk just talked to
            # the serving machines, so no extra grant messages are
            # modelled; renewals are re-walks.
            table = self.lease_table_of(client_machine)
            if table.in_grace \
                    and self._placement.host_of(directory) \
                    is not client_machine:
                # A *remote* authoritative step succeeded again: the
                # partition healed.  Revalidate before promoting
                # anything back to fresh.  (Locally-placed directories
                # answer through any partition, so they prove nothing.)
                table.exit_grace(now, epoch)
            for dep in deps:
                self.leases.grant(id(client_machine), dep, now, epoch,
                                  machine_label=client_machine.label)
                table.grant(dep, now, self.lease_term, epoch)

    def _walk_one(self, client_server: SimProcess, context: Context,
                  name_: CompoundName, style: ResolutionStyle,
                  cost: ResolutionCost, at: SimProcess,
                  memo: Optional[dict],
                  routes: Optional[dict] = None,
                  ) -> tuple[Entity, SimProcess]:
        """Resolve one coerced name; mirrors the section-2 recursion of
        :func:`repro.model.resolution.resolve_traced` exactly.

        The final answer hop is *not* sent — the caller decides when
        the walk returns home (once per resolution, or once per batch).
        Returns ``(entity, server the walk parked at)``.
        """
        parts = list(name_.parts)
        rooted = name_.rooted
        # The root binding is one walk step like any other component.
        comps = ([ROOT_NAME] + parts) if rooted else parts
        if not comps:
            return UNDEFINED_ENTITY, at

        current: Context = context
        entered: Optional[ObjectEntity] = None
        deps: list = []
        start = 0
        obs = self._obs
        # Once a step is served degraded (or unreachable) the walk's
        # remaining prefixes must not be memoized as coherent.
        tainted = False

        hit = self._deepest_prefix(client_server.machine, context,
                                   rooted, comps, memo)
        if hit is not None:
            start, directory, hit_deps, source = hit
            if obs.enabled:
                obs.tracer.event(
                    "cache", "prefix.hit", self._sim.clock.now,
                    attrs={"consumed": start, "source": source,
                           "machine": client_server.machine.label,
                           "prefix": "/".join(comps[:start])})
            cost.steps += start
            cost.cached_steps += start
            entered = directory
            current = directory.state
            deps = list(hit_deps)
            nxt = self._enter_directory(client_server, directory, at,
                                        cost, style, comps[start],
                                        routes)
            if nxt is None:
                at, stale_entry = self._degraded_step(
                    client_server, context, rooted,
                    tuple(comps[:start]), directory, cost)
                if stale_entry is not None:
                    entered = stale_entry.directory
                    current = entered.state
                tainted = True
            else:
                at = nxt
            self._count_locality(client_server, at, cost)
        elif obs.enabled and (memo is not None
                              or self.cache_policy is not CachePolicy.NONE):
            obs.tracer.event(
                "cache", "prefix.miss", self._sim.clock.now,
                attrs={"machine": client_server.machine.label,
                       "prefix": "/".join(comps[:-1])})

        for index in range(start, len(comps)):
            component = comps[index]
            entity = current(component)
            cost.steps += 1
            if obs.enabled:
                obs.tracer.event(
                    "step", component, self._sim.clock.now,
                    attrs={"index": index, "server": at.label,
                           "directory": (entered.label
                                         if entered is not None
                                         else "<context>")})
            if index == len(comps) - 1:
                return entity, at
            if not entity.is_defined():
                return UNDEFINED_ENTITY, at
            state = entity.state
            if not isinstance(state, Context):
                return UNDEFINED_ENTITY, at
            deps.append(binding_dep(entered, component)
                        if entered is not None
                        else context_dep(context, component))
            entered = entity  # type: ignore[assignment]
            current = state
            nxt = self._enter_directory(client_server, entered, at,
                                        cost, style, comps[index + 1],
                                        routes)
            if nxt is None:
                at, stale_entry = self._degraded_step(
                    client_server, context, rooted,
                    tuple(comps[:index + 1]), entered, cost)
                if stale_entry is not None:
                    # Continue in the *cached* (possibly older)
                    # directory — the degraded walk must not read
                    # through true state it could never have reached.
                    entered = stale_entry.directory
                    current = entered.state
                tainted = True
            else:
                at = nxt
            self._count_locality(client_server, at, cost)
            if not tainted:
                self._remember_prefix(client_server.machine, context,
                                      rooted, tuple(comps[:index + 1]),
                                      entered, tuple(deps), memo)
        return UNDEFINED_ENTITY, at  # pragma: no cover - loop returns

    # -- observability -----------------------------------------------------

    def _begin_resolution(self, name_: CompoundName, style: ResolutionStyle,
                          client: SimProcess, root: bool):
        """Open one name's ``resolution`` span (instrumented runs)."""
        return self._obs.tracer.begin(
            "resolution", str(name_) or "<empty>", self._sim.clock.now,
            **({"parent": None} if root else {}),
            attrs={"style": str(style), "policy": str(self.cache_policy),
                   "client": client.label})

    def _finish_resolution(self, span, cost: ResolutionCost,
                           entity: Entity, style: ResolutionStyle) -> None:
        """Close a ``resolution`` span and publish its metrics."""
        span.attrs.update(messages=cost.messages, steps=cost.steps,
                          cached_steps=cost.cached_steps,
                          resolved=entity.is_defined(),
                          coherence=cost.coherence)
        self._obs.tracer.end(span, self._sim.clock.now)
        metrics = self._obs.metrics
        metrics.counter("resolver_resolutions_total",
                        {"style": str(style)}).inc()
        metrics.counter("resolver_resolution_outcomes_total",
                        {"outcome": ("failed" if cost.failed
                                     else cost.coherence)}).inc()
        self._m_latency.observe(cost.latency)
        self._m_res_messages.observe(cost.messages)
        for kind, amount in (("local", cost.local_steps),
                             ("remote", cost.remote_steps),
                             ("cached", cost.cached_steps)):
            if amount:
                metrics.counter("resolver_steps_total",
                                {"kind": kind}).inc(amount)

    # -- API ---------------------------------------------------------------

    def resolve(self, client: SimProcess, context: Context,
                name_: NameLike,
                style: ResolutionStyle = ResolutionStyle.ITERATIVE,
                ) -> tuple[Entity, ResolutionCost]:
        """Resolve *name_* in *context* on behalf of *client*.

        The context's own bindings (including the root binding) are
        consulted locally — a process's context is kernel state on its
        own machine; only steps into *placed* directories can be
        remote.  With a cache policy active, the walk starts at the
        deepest live cached prefix instead of the root.

        Check ``cost.failed`` before trusting the answer under
        faults: a fail-fast walk that lost a leg (or a failover walk
        that exhausted every replica) is flagged there, and a
        stale-served answer carries ``cost.weak``.
        """
        name_ = CompoundName.coerce(name_)
        cost = ResolutionCost()
        client_server = self.server_for(client.machine)
        span = (self._begin_resolution(name_, style, client, root=True)
                if self._obs.enabled else None)
        entity, at = self._walk_one(client_server, context, name_, style,
                                    cost, client_server, None)
        self._return_home(client_server, at, cost, style)
        if span is not None:
            self._finish_resolution(span, cost, entity, style)
        auditor = self._obs.auditor
        if auditor is not None:
            auditor.observe_resolution(
                context, name_, entity, now=self._sim.clock.now,
                policy=self.cache_policy.value, weak=cost.weak,
                failed=cost.failed, latency=cost.latency,
                ttl=self.cache_ttl, lease_term=self.lease_term,
                placement=self._placement)
        if self.shard_manager is not None:
            self.shard_manager.on_resolution()
        return entity, cost

    def resolve_many(self, client: SimProcess, context: Context,
                     names: Sequence[NameLike],
                     style: ResolutionStyle = ResolutionStyle.ITERATIVE,
                     ) -> list[tuple[Entity, ResolutionCost]]:
        """Resolve a batch of names, amortizing shared work.

        Names are processed sorted by shared prefix; every directory
        step is paid at most once per batch (a batch-local memo layered
        over the prefix cache), and consecutive queries served by the
        same server are coalesced into its one visit — the walk parks
        at each server instead of returning home between names, and a
        single answer hop closes the batch.

        Returns one ``(entity, cost)`` per input name, **in input
        order**, entity-for-entity identical to what sequential
        :meth:`resolve` calls would yield (property-tested).  Messages
        are charged to the name that first needed them; aggregate with
        :meth:`ResolutionCost.merge`.
        """
        coerced = [CompoundName.coerce(n) for n in names]
        if not coerced:
            return []
        order = sorted(range(len(coerced)),
                       key=lambda i: (not coerced[i].rooted,
                                      coerced[i].parts, i))
        client_server = self.server_for(client.machine)
        obs = self._obs
        batch_span = None
        if obs.enabled:
            batch_span = obs.tracer.begin(
                "batch", f"resolve_many[{len(coerced)}]",
                self._sim.clock.now, parent=None,
                attrs={"names": len(coerced), "style": str(style),
                       "policy": str(self.cache_policy),
                       "client": client.label})
        results: list = [None] * len(coerced)
        auditor = obs.auditor
        memo: dict = {}
        # Batch route memo (see _route_host): epoch-guarded so a
        # shard split landing mid-batch re-routes the rest of the
        # batch instead of serving pre-split routes.
        routes: dict = {"epoch": self._placement.epoch}
        at = client_server
        for i in order:
            cost = ResolutionCost()
            span = (self._begin_resolution(coerced[i], style, client,
                                           root=False)
                    if obs.enabled else None)
            entity, at = self._walk_one(client_server, context,
                                        coerced[i], style, cost, at,
                                        memo, routes)
            results[i] = (entity, cost)
            if span is not None:
                self._finish_resolution(span, cost, entity, style)
            if auditor is not None:
                auditor.observe_resolution(
                    context, coerced[i], entity,
                    now=self._sim.clock.now,
                    policy=self.cache_policy.value, weak=cost.weak,
                    failed=cost.failed, latency=cost.latency,
                    ttl=self.cache_ttl, lease_term=self.lease_term,
                    placement=self._placement)
            if self.shard_manager is not None:
                # Per-walk, not per-batch: a hot batch must be able to
                # trigger a split while it is still running.
                self.shard_manager.on_resolution()
        # One answer hop closes the whole batch, charged to the last
        # name processed (its span parents under the batch span).
        self._return_home(client_server, at, results[order[-1]][1], style)
        if batch_span is not None:
            batch_span.attrs["messages"] = sum(
                cost.messages for _entity, cost in results)
            obs.tracer.end(batch_span, self._sim.clock.now)
        return results

    # -- writes ------------------------------------------------------------

    def rebind(self, directory: ObjectEntity, name_: str,
               entity: Entity) -> int:
        """Change ``σ(directory)(name_)`` under the write discipline.

        All binding writes to placed directories must come through
        here.  Two fan-outs happen, both traced under one ``rebind``
        span:

        * **Replication** — the write is propagated from the primary
          to every secondary replica (one message each); a secondary
          the propagation cannot reach (dead primary, dropped message)
          is marked **stale** in the placement so failover skips it
          until anti-entropy on restart (:meth:`handle_restart`).
        * **Invalidation** (policy ``INVALIDATE``) — every prefix
          entry whose walk consumed the changed binding is dropped on
          every caching machine *whose invalidation message arrived*,
          with the messages sent as one batched fan-out and a single
          bounded drain (latency accumulated in
          :attr:`invalidation_latency`); undeliverable invalidations
          are counted in :attr:`invalidation_losses` — that holder is
          stale for an unbounded time.  Under ``LEASE`` the fan-out is
          a *callback break* instead: retried per holder, acked on
          delivery, and escalated to a lease break when undeliverable,
          so the stale copy expires by the lease term.  Under TTL,
          stale prefixes live out their window; under NONE there is
          nothing to keep coherent.

        Returns the number of invalidation/callback messages sent.
        """
        context: Context = directory.state
        auditor = self._obs.auditor
        old = context(name_) if auditor is not None else None
        context.bind(name_, entity)
        # Sharded directory: the new binding belongs to exactly one
        # shard; record it so a later split migrates it.
        self._placement.note_binding(directory, name_)
        if auditor is not None:
            # The authoritative history feed: commit time + placement
            # epoch, captured the instant σ changed.
            auditor.record_write(directory, name_, old, entity,
                                 self._sim.clock.now,
                                 self._placement.epoch)
        obs = self._obs
        # Sharded directory: the write fans out across the owning
        # *shard's* replica set (pure shard read — a write must not
        # perturb the split policy's load window).  Unsharded: the
        # directory's replica set as before.
        replicas = self._placement.replicas_of(directory)
        forced_stale: tuple = ()
        if not replicas:
            shard = self._placement.shard_of_binding(directory, name_)
            if shard is not None:
                # A shard has no global primary: any live replica can
                # originate the propagation, and every dead replica
                # missed the write — including a dead ``replicas[0]``
                # and the sole copy of a degree-1 shard (which then
                # has no sync source: the range stays dark until the
                # operator re-places it).
                forced_stale = tuple(m for m in shard.replicas
                                     if not m.alive)
                replicas = tuple(m for m in shard.replicas if m.alive)
        secondaries = replicas[1:] if len(replicas) > 1 else ()
        if self.cache_policy not in (CachePolicy.INVALIDATE,
                                     CachePolicy.LEASE) \
                and not secondaries and not forced_stale:
            return 0
        span = None
        if obs.enabled:
            span = obs.tracer.begin(
                "rebind", f"{directory.label}/{name_}",
                self._sim.clock.now, parent=None,
                attrs={"directory": directory.label,
                       "component": name_})
        # -- replica propagation ------------------------------------------
        replicated = 0
        stale_marked = 0
        for machine in forced_stale:
            self._placement.mark_stale(directory, machine)
            stale_marked += 1
        if secondaries:
            primary_machine = replicas[0]
            primary_server = (self.server_for(primary_machine)
                              if primary_machine.alive
                              else self._servers.get(id(primary_machine)))
            for machine in secondaries:
                if primary_server is None or not primary_server.alive:
                    # The write cannot be propagated at all; every
                    # secondary missed it.
                    self._placement.mark_stale(directory, machine)
                    stale_marked += 1
                    continue
                if not machine.alive \
                        and id(machine) not in self._servers:
                    # No process on the downed secondary to deliver
                    # to — the write is lost on this replica.
                    self._placement.mark_stale(directory, machine)
                    stale_marked += 1
                    continue
                message = primary_server.send(
                    self.server_for(machine),
                    payload={"ns": "replicate"}, latency=self._latency)
                if span is not None:
                    message.trace_id = span.trace_id
                    message.parent_span_id = span.span_id
                self._sim.run_until_settled(message)
                self.replication_messages += 1
                if message.dropped:
                    self._placement.mark_stale(directory, machine)
                    stale_marked += 1
                else:
                    replicated += 1
        if obs.enabled:
            if replicated:
                obs.metrics.counter(
                    "resolver_replication_messages_total",
                ).inc(replicated)
            if stale_marked:
                obs.metrics.counter(
                    "resolver_replica_stale_marked_total",
                ).inc(stale_marked)
                obs.tracer.event(
                    "failover", "replica.marked-stale",
                    self._sim.clock.now,
                    attrs={"directory": directory.label,
                           "count": stale_marked})
        # -- cache invalidation -------------------------------------------
        sent = 0
        if self.cache_policy is CachePolicy.INVALIDATE:
            sent = self._invalidate_holders(directory, name_, span)
        elif self.cache_policy is CachePolicy.LEASE:
            sent = self._lease_callbacks(directory, name_, span)
        if span is not None:
            self._m_invalidation_msgs.inc(sent)
            span.attrs["messages"] = sent
            span.attrs["replicated"] = replicated
            span.attrs["stale_marked"] = stale_marked
            obs.tracer.end(span, self._sim.clock.now)
        return sent

    def _invalidate_holders(self, directory: ObjectEntity, name_: str,
                            span) -> int:
        """INVALIDATE fan-out: drop each holder's cached prefixes —
        but only where the invalidation message actually *arrived*.

        A dropped message (partition, downed client, flaky link) used
        to be silently ignored, leaving that holder stale forever with
        no record; it is now counted in :attr:`invalidation_losses`
        (and ``resolver_invalidation_losses_total``) and the holder
        stays registered so a later rebind of the same binding retries.
        """
        obs = self._obs
        dep = binding_dep(directory, name_)
        holders = self._holders.pop(dep, {})
        # Per-binding routing: the invalidation originates at the
        # server that owns the changed binding (for a sharded
        # directory, its shard's machine — not some directory-wide
        # primary).
        host = self._placement.host_of_binding(directory, name_)
        fanout: list[tuple[int, object]] = []
        sent = 0
        for machine_id in holders:
            machine = self._machines_by_id[machine_id]
            if host is None or machine is host:
                # Local holder: no message needed, drop directly.
                self._drop_holder_prefixes(machine_id, dep, span)
                continue
            message = self.server_for(host).send(
                self.server_for(machine),
                payload={"ns": "invalidate"},
                latency=self._latency)
            if span is not None:
                message.trace_id = span.trace_id
                message.parent_span_id = span.span_id
            fanout.append((machine_id, message))
            sent += 1
        self.invalidation_messages += sent
        if fanout:
            before = self._sim.clock.now
            self._sim.run_until_settled([m for _mid, m in fanout])
            self.invalidation_latency += self._sim.clock.now - before
        for machine_id, message in fanout:
            if message.dropped:
                self.invalidation_losses += 1
                self._holders.setdefault(dep, {})[machine_id] = None
                if obs.enabled:
                    obs.metrics.counter(
                        "resolver_invalidation_losses_total").inc()
                    obs.tracer.event(
                        "cache", "invalidation.lost",
                        self._sim.clock.now,
                        attrs={"machine":
                               self._machines_by_id[machine_id].label,
                               "reason": message.drop_reason})
            else:
                self._drop_holder_prefixes(machine_id, dep, span)
        return sent

    def _drop_holder_prefixes(self, machine_id: int, dep, span) -> None:
        cache = self._prefix_caches.get(machine_id)
        if cache is None:
            return
        dropped = cache.invalidate_through(dep)
        if span is not None and dropped:
            self._obs.tracer.event(
                "cache", "prefix.invalidated", self._sim.clock.now,
                attrs={"machine": self._machines_by_id[machine_id].label,
                       "count": dropped})

    def _lease_callbacks(self, directory: ObjectEntity, name_: str,
                         span) -> int:
        """LEASE fan-out: break the promise at every live holder.

        Each callback is one message with bounded retries (the shared
        :class:`RetryPolicy`/:class:`CircuitBreaker` machinery via
        :func:`callback_fanout`); a delivered callback revokes the
        holder's lease, drops its cached prefixes and is acked back; a
        holder that stays unreachable has its lease *broken* — the
        stale copy then expires by the lease term, which is what
        bounds staleness where INVALIDATE would silently lose.
        """
        obs = self._obs
        dep = binding_dep(directory, name_)
        now = self._sim.clock.now
        holders = self.leases.holders_of(dep, now)
        if not holders:
            return 0
        # Break callbacks fan out from the owning shard's machine for
        # sharded directories (per-binding routing, as in rebind).
        host = self._placement.host_of_binding(directory, name_)
        host_server = None
        if host is not None:
            host_server = (self.server_for(host) if host.alive
                           else self._servers.get(id(host)))
        counters = {"sent": 0}
        before = self._sim.clock.now

        def deliver(lease, attempt: int) -> bool:
            machine = self._machines_by_id.get(lease.machine_id)
            if machine is None:
                return False
            if host is None or machine is host:
                self._on_lease_callback(lease.machine_id, dep, span)
                return True
            if host_server is None or not host_server.alive:
                return False  # nobody left to send the callback
            message = host_server.send(
                self.server_for(machine),
                payload={"lease": {"op": "break", "dep": dep}},
                latency=self._latency)
            if span is not None:
                message.trace_id = span.trace_id
                message.parent_span_id = span.span_id
            counters["sent"] += 1
            self.invalidation_messages += 1
            self._sim.run_until_settled(message)
            if obs.enabled:
                obs.tracer.event(
                    "lease", "lease.callback", self._sim.clock.now,
                    attrs={"machine": machine.label, "dep": repr(dep),
                           "attempt": attempt,
                           "delivered": not message.dropped})
                obs.metrics.counter(
                    "lease_callbacks_total",
                    {"delivered": str(not message.dropped).lower()}
                ).inc()
            if message.dropped:
                return False
            self._on_lease_callback(lease.machine_id, dep, span)
            ack = self.server_for(machine).send(
                host_server,
                payload={"lease": {"op": "ack", "dep": dep}},
                latency=self._latency)
            if span is not None:
                ack.trace_id = span.trace_id
                ack.parent_span_id = span.span_id
            counters["sent"] += 1
            self.invalidation_messages += 1
            self._sim.run_until_settled(ack)
            if not ack.dropped:
                self.leases.record_ack(lease.machine_id, dep,
                                       self._sim.clock.now)
            return True

        def wait(delay: float) -> None:
            start = self._sim.clock.now
            self._sim.run(until=start + delay)

        report = callback_fanout(
            holders,
            now=lambda: self._sim.clock.now,
            rng=self._sim.rng,
            deliver=deliver,
            wait=wait,
            retry_policy=self.retry_policy,
            breaker_for=lambda lease: self.leases.breaker_for_machine(
                lease.machine_id,
                label="lease-cb:" + (
                    self._machines_by_id[lease.machine_id].label
                    if lease.machine_id in self._machines_by_id
                    else str(lease.machine_id))),
            on_broken=lambda lease: self.leases.break_lease(
                lease, self._sim.clock.now))
        self.invalidation_losses += report.broken
        self.invalidation_latency += self._sim.clock.now - before
        if obs.enabled and report.broken:
            obs.metrics.counter(
                "resolver_invalidation_losses_total").inc(report.broken)
        return counters["sent"]

    def _on_lease_callback(self, machine_id: int, dep, span) -> None:
        """A break callback reached its holder: revoke + drop."""
        now = self._sim.clock.now
        table = self._lease_tables.get(machine_id)
        if table is not None:
            table.revoke(dep, now)
        self._drop_holder_prefixes(machine_id, dep, span)

    # -- shard splits / migration ------------------------------------------

    def split_shard(self, directory: ObjectEntity, shard: Shard,
                    machine: Machine) -> bool:
        """Split *shard* of a sharded directory, migrating the upper
        half-range of its bindings to *machine* — as simulated
        messages, so traces, failure injection and the retry/breaker
        machinery all apply to rebalancing traffic.

        The migration is **commit-last**: binding batches stream from
        the source shard's server to the target first (⌈moved /
        :attr:`migration_batch`⌉ messages, minimum one — an empty
        range still hands off ownership), each leg going through the
        retried-hop path; only when every batch lands does
        :meth:`~repro.nameservice.placement.DirectoryPlacement.
        apply_split` commit the new map and bump the placement epoch
        exactly once.  An undeliverable batch (or a dead source)
        aborts the split with the old map — and the old epoch —
        intact, so no route ever points at a half-migrated shard; on a
        replicated map the aborted range keeps being served by the old
        shard's surviving replicas, so a crash at *any* fault point of
        the migration leaves every binding with exactly one live
        owner range.

        On a replicated map the new shard's secondaries
        (``plan.targets[1:]``) are drawn from the source shard's own
        replica set — machines that already hold the migrating
        bindings — so only the new primary receives migration traffic
        and the replication degree carries over with zero extra
        copies.

        Returns True if the split committed.
        """
        shard_map = self._placement.shard_map_of(directory)
        if shard_map is None:
            raise SchemeError(
                f"directory {directory.label!r} is not sharded")
        plan = shard_map.plan_split(shard, machine)
        obs = self._obs
        span = None
        if obs.enabled:
            span = obs.tracer.begin(
                "shard", f"split:{directory.label}", self._sim.clock.now,
                parent=None,
                attrs={"directory": directory.label,
                       "source": shard.machine.label,
                       "target": machine.label,
                       "split_at": plan.split_at,
                       "moved": len(plan.moved),
                       "replicas": len(plan.targets)})
        source_machine = shard.machine
        committed = False
        cost = ResolutionCost()  # migration accounting only
        # A migration endpoint that is down and has never had a server
        # cannot even be addressed — abort without sending anything
        # (a dead machine with an existing server still gets messages
        # sent at it, which fail and abort through the hop path).
        if ((source_machine.alive or id(source_machine) in self._servers)
                and (machine.alive or id(machine) in self._servers)):
            source = self.server_for(source_machine)
            target = self.server_for(machine)
            batches = max(
                1, -(-len(plan.moved) // max(1, self.migration_batch)))
            delivered = 0
            for _index in range(batches):
                if not self._hop_retried(source, target, cost,
                                         "migrate"):
                    break
                delivered += 1
            if delivered == batches:
                self._placement.apply_split(plan)
                committed = True
        self.migration_messages += cost.messages
        self.migration_latency += cost.latency
        if committed:
            self.shard_splits += 1
        else:
            self.shard_split_aborts += 1
        if obs.enabled:
            obs.metrics.counter(
                "resolver_shard_splits_total",
                {"outcome": "committed" if committed else "aborted"}
            ).inc()
            if cost.messages:
                obs.metrics.counter(
                    "resolver_migration_messages_total"
                ).inc(cost.messages)
            if span is not None:
                span.attrs["messages"] = cost.messages
                span.attrs["committed"] = committed
                span.attrs["shards"] = len(shard_map)
                if not committed:
                    span.fail("migration undeliverable — split aborted")
                obs.tracer.end(span, self._sim.clock.now)
        return committed

    def merge_shards(self, directory: ObjectEntity, left: Shard,
                     right: Shard) -> bool:
        """Fold *right*'s range into *left* (adjacent shards of a
        sharded directory) — the inverse of :meth:`split_shard`, under
        the same commit-last discipline.

        Binding batches stream from *right*'s primary to every *left*
        replica that is not already a *right* replica (those already
        hold the range's bindings); only when every receiver has every
        batch does :meth:`~repro.nameservice.placement.
        DirectoryPlacement.apply_merge` commit the widened map and
        bump the epoch exactly once.  Any undeliverable batch — or an
        unaddressable endpoint — aborts with the old map intact: a
        left replica that missed the data must never become an owner
        of the merged range.

        Returns True if the merge committed.
        """
        shard_map = self._placement.shard_map_of(directory)
        if shard_map is None:
            raise SchemeError(
                f"directory {directory.label!r} is not sharded")
        plan = shard_map.plan_merge(left, right)
        obs = self._obs
        span = None
        if obs.enabled:
            span = obs.tracer.begin(
                "shard", f"merge:{directory.label}", self._sim.clock.now,
                parent=None,
                attrs={"directory": directory.label,
                       "source": right.machine.label,
                       "target": left.machine.label,
                       "merge_at": right.lo,
                       "moved": len(plan.moved)})
        source_machine = right.machine
        receivers = [m for m in left.replicas
                     if m not in right.replicas]
        committed = False
        cost = ResolutionCost()  # migration accounting only
        addressable = (
            (source_machine.alive or id(source_machine) in self._servers)
            and all(m.alive or id(m) in self._servers
                    for m in receivers))
        if addressable:
            source = self.server_for(source_machine)
            batches = max(
                1, -(-len(plan.moved) // max(1, self.migration_batch)))
            delivered_all = True
            for receiver in receivers:
                target = self.server_for(receiver)
                delivered = 0
                for _index in range(batches):
                    if not self._hop_retried(source, target, cost,
                                             "migrate"):
                        break
                    delivered += 1
                if delivered != batches:
                    delivered_all = False
                    break
            if delivered_all:
                self._placement.apply_merge(plan)
                committed = True
        self.migration_messages += cost.messages
        self.migration_latency += cost.latency
        if committed:
            self.shard_merges += 1
        else:
            self.shard_merge_aborts += 1
        if obs.enabled:
            obs.metrics.counter(
                "resolver_shard_merges_total",
                {"outcome": "committed" if committed else "aborted"}
            ).inc()
            if cost.messages:
                obs.metrics.counter(
                    "resolver_migration_messages_total"
                ).inc(cost.messages)
            if span is not None:
                span.attrs["messages"] = cost.messages
                span.attrs["committed"] = committed
                span.attrs["shards"] = len(shard_map)
                if not committed:
                    span.fail("migration undeliverable — merge aborted")
                obs.tracer.end(span, self._sim.clock.now)
        return committed

    # -- restart / anti-entropy --------------------------------------------

    def handle_restart(self, machine: Machine) -> int:
        """Respawn hook: bring a restarted machine's server back and
        anti-entropy its stale replicas.

        Wire as ``injector.on_restart(resolver.handle_restart)`` so
        :meth:`~repro.sim.failures.FailureInjector.restart_machine`
        calls it.  The machine's dead directory-server process is
        re-registered (fresh process, fresh circuit breaker), and each
        directory whose copy here missed a write is synced from its
        sync source — the directory's primary, or for a sharded
        directory a live fresh fellow replica of the stale shard
        (:meth:`~repro.nameservice.placement.DirectoryPlacement.
        sync_source_for`) — one message per directory, counted in
        :attr:`anti_entropy_messages`; a sync with no reachable source
        leaves the mark in place.  Returns the number of directories
        synced.
        """
        server = self._servers.get(id(machine))
        if server is not None and not server.alive and machine.alive:
            del self._servers[id(machine)]
            server = self.server_for(machine)
        stale = self._placement.stale_uids_of(machine)
        if not stale:
            return 0
        obs = self._obs
        span = None
        if obs.enabled:
            span = obs.tracer.begin(
                "anti_entropy", machine.label, self._sim.clock.now,
                parent=None, attrs={"machine": machine.label,
                                    "stale": len(stale)})
        synced = 0
        messages = 0
        for uid in stale:
            source = self._placement.sync_source_for(uid, machine)
            if source is None and self._placement.is_placed_uid(uid):
                continue  # no live fresh source — stays stale
            if source is not None and source is not machine:
                source_server = (self.server_for(source)
                                 if source.alive
                                 else self._servers.get(id(source)))
                if source_server is None or not source_server.alive:
                    continue  # stays stale; a later restart retries
                message = source_server.send(
                    self.server_for(machine),
                    payload={"ns": "anti-entropy"}, latency=self._latency)
                if span is not None:
                    message.trace_id = span.trace_id
                    message.parent_span_id = span.span_id
                self._sim.run_until_settled(message)
                self.anti_entropy_messages += 1
                messages += 1
                if message.dropped:
                    continue  # unreachable source — stays stale
            if self._placement.clear_stale(uid, machine):
                synced += 1
        if obs.enabled:
            if synced:
                obs.metrics.counter(
                    "resolver_anti_entropy_syncs_total").inc(synced)
            if span is not None:
                span.attrs["synced"] = synced
                span.attrs["messages"] = messages
                obs.tracer.end(span, self._sim.clock.now)
        return synced


def check_semantics_preserved(resolver: DistributedResolver,
                              client: SimProcess, context: Context,
                              name_: NameLike,
                              style: ResolutionStyle =
                              ResolutionStyle.ITERATIVE) -> bool:
    """True if the distributed walk returns exactly what the local
    section-2 recursion returns (used by tests)."""
    from repro.model.resolution import resolve as local_resolve

    distributed, _cost = resolver.resolve(client, context, name_, style)
    return distributed is local_resolve(context, name_)
