"""Distributed compound-name resolution with measured cost.

:class:`DistributedResolver` performs the section-2 recursion over
*placed* directories: each step whose directory is hosted on a machine
other than where the previous step ran costs a message round-trip
through the simulator kernel (so latencies, traces and server load are
all observable).  Two classic interaction styles are supported:

* ``ITERATIVE`` — the client asks each directory's server in turn
  (every remote step is a client↔server round trip);
* ``RECURSIVE`` — the request is forwarded server-to-server and only
  the final answer returns to the client (one hop per transfer plus
  one reply).

The resolver is semantics-preserving: its result is always identical
to :func:`repro.model.resolution.resolve` on the same context — the
distribution changes *cost*, never *meaning*.  (Property-tested.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, CompoundName, NameLike
from repro.nameservice.placement import DirectoryPlacement
from repro.sim.kernel import Simulator
from repro.sim.network import Machine
from repro.sim.process import SimProcess

__all__ = ["ResolutionStyle", "ResolutionCost", "DistributedResolver"]


class ResolutionStyle(enum.Enum):
    """Who chases the referrals."""

    ITERATIVE = "iterative"
    RECURSIVE = "recursive"

    def __str__(self) -> str:
        return self.value


@dataclass
class ResolutionCost:
    """Measured cost of one distributed resolution."""

    steps: int = 0            #: components consumed
    local_steps: int = 0      #: steps served on the current machine
    remote_steps: int = 0     #: steps that needed another machine
    messages: int = 0         #: simulator messages exchanged
    latency: float = 0.0      #: virtual time spent
    servers_touched: set[str] = field(default_factory=set)

    def __str__(self) -> str:
        return (f"steps={self.steps} remote={self.remote_steps} "
                f"messages={self.messages} latency={self.latency:g}")


class DistributedResolver:
    """Resolves names against placed directories, through the kernel.

    Args:
        simulator: The kernel carrying the resolution traffic.
        placement: Directory → machine placement.
        latency: One-way message latency for server hops.
    """

    def __init__(self, simulator: Simulator,
                 placement: DirectoryPlacement,
                 latency: float = 1.0):
        self._sim = simulator
        self._placement = placement
        self._latency = latency
        self._servers: dict[int, SimProcess] = {}
        self.load: dict[str, int] = {}

    def server_for(self, machine: Machine) -> SimProcess:
        """The (lazily spawned) directory-server process of a machine."""
        server = self._servers.get(id(machine))
        if server is None:
            server = self._sim.spawn(machine,
                                     label=f"dirserver@{machine.label}")
            self._servers[id(machine)] = server
        return server

    def _hop(self, sender: SimProcess, receiver: SimProcess,
             cost: ResolutionCost, what: str) -> None:
        """One message leg, executed through the kernel."""
        if sender is receiver:
            return
        before = self._sim.clock.now
        sender.send(receiver, payload={"ns": what},
                    latency=self._latency)
        self._sim.run()
        cost.messages += 1
        cost.latency += self._sim.clock.now - before

    def resolve(self, client: SimProcess, context: Context,
                name_: NameLike,
                style: ResolutionStyle = ResolutionStyle.ITERATIVE,
                ) -> tuple[Entity, ResolutionCost]:
        """Resolve *name_* in *context* on behalf of *client*.

        The context's own bindings (including the root binding) are
        consulted locally — a process's context is kernel state on its
        own machine; only steps into *placed* directories can be
        remote.
        """
        name_ = CompoundName.coerce(name_)
        cost = ResolutionCost()
        client_server = self.server_for(client.machine)
        at: SimProcess = client_server  # where the walk currently runs

        def step_into(directory: Entity) -> SimProcess:
            host = self._placement.host_of(directory)
            if host is None:
                # Unplaced directories (e.g. per-process private
                # roots) are wherever the walk already is.
                return at
            server = self.server_for(host)
            self.load[server.label] = self.load.get(server.label, 0) + 1
            return server

        current: Context = context
        parts = list(name_.parts)
        if name_.rooted:
            root = current(ROOT_NAME)
            if not root.is_defined():
                return UNDEFINED_ENTITY, cost
            state = root.state
            if not isinstance(state, Context):
                return UNDEFINED_ENTITY, cost
            at = self._walk_to(client_server, at, step_into(root), cost,
                               style)
            cost.steps += 1
            self._count_locality(client_server, at, cost)
            current = state
            if not parts:
                self._return_home(client_server, at, cost, style)
                return root, cost

        result: Entity = UNDEFINED_ENTITY
        for index, component in enumerate(parts):
            entity = current(component)
            cost.steps += 1
            if not entity.is_defined():
                result = UNDEFINED_ENTITY
                break
            if index == len(parts) - 1:
                result = entity
                break
            state = entity.state
            if not isinstance(state, Context):
                result = UNDEFINED_ENTITY
                break
            at = self._walk_to(client_server, at, step_into(entity),
                               cost, style)
            self._count_locality(client_server, at, cost)
            current = state
        self._return_home(client_server, at, cost, style)
        return result, cost

    # -- helpers -----------------------------------------------------------

    def _walk_to(self, client_server: SimProcess, at: SimProcess,
                 target: SimProcess, cost: ResolutionCost,
                 style: ResolutionStyle) -> SimProcess:
        if target is at:
            return at
        cost.servers_touched.add(target.label)
        if style is ResolutionStyle.ITERATIVE:
            # Referral back to the client, then query the next server.
            self._hop(at, client_server, cost, "referral")
            self._hop(client_server, target, cost, "query")
        else:
            self._hop(at, target, cost, "forward")
        return target

    def _return_home(self, client_server: SimProcess, at: SimProcess,
                     cost: ResolutionCost,
                     style: ResolutionStyle) -> None:
        if at is not client_server:
            self._hop(at, client_server, cost, "answer")

    @staticmethod
    def _count_locality(client_server: SimProcess, at: SimProcess,
                        cost: ResolutionCost) -> None:
        if at is client_server:
            cost.local_steps += 1
        else:
            cost.remote_steps += 1

    def reset_load(self) -> None:
        """Clear the per-server load counters."""
        self.load.clear()


def check_semantics_preserved(resolver: DistributedResolver,
                              client: SimProcess, context: Context,
                              name_: NameLike) -> bool:
    """True if the distributed walk returns exactly what the local
    section-2 recursion returns (used by tests)."""
    from repro.model.resolution import resolve as local_resolve

    distributed, _cost = resolver.resolve(client, context, name_)
    return distributed is local_resolve(context, name_)
