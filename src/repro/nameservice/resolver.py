"""Distributed compound-name resolution with measured cost.

:class:`DistributedResolver` performs the section-2 recursion over
*placed* directories: each step whose directory is hosted on a machine
other than where the previous step ran costs a message round-trip
through the simulator kernel (so latencies, traces and server load are
all observable).  Two classic interaction styles are supported:

* ``ITERATIVE`` — the client asks each directory's server in turn
  (every remote step is a client↔server round trip);
* ``RECURSIVE`` — the request is forwarded server-to-server and only
  the final answer returns to the client (one hop per transfer plus
  one reply).

Two mechanisms make resolution cheap at scale (both extensions,
DNS/AFS-style, measured by ablations A5 and A7):

* a per-machine **prefix cache** (:class:`~repro.nameservice.cache.
  PrefixCache`): repeated resolutions skip the walk up to the deepest
  live cached prefix, under the same NONE/TTL/INVALIDATE coherence
  policies as the binding cache, with :meth:`DistributedResolver.rebind`
  as the write discipline that keeps INVALIDATE exact;
* a **batch API** (:meth:`DistributedResolver.resolve_many`) that
  sorts names by shared prefix, dedupes common steps within the batch,
  and coalesces queries to the same server into one round trip.

The resolver is semantics-preserving: with caching off its result is
always identical to :func:`repro.model.resolution.resolve` on the same
context — the distribution changes *cost*, never *meaning*.  With
caching on, coherence is weakened only in the bounded way the cache
policy allows (TTL staleness windows; nothing after an INVALIDATE
delivery).  (Property-tested.)

When the simulator carries an :class:`~repro.obs.Instrumentation`,
every resolution becomes a typed span tree (`repro.obs`): a
``resolution`` (or ``batch``) root, one ``hop`` span per message leg
carrying trace context into the kernel, ``step`` instants per
component consumed, ``cache`` instants per prefix probe, and
``rebind`` spans whose invalidation fan-out parents the INVALIDATE
deliveries.  Span message/step counts reconcile exactly with the
returned :class:`ResolutionCost` (tested), so the trace *is* the cost
accounting, hop by hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, CompoundName, NameLike
from repro.nameservice.cache import (
    CachePolicy,
    PrefixCache,
    binding_dep,
    context_dep,
)
from repro.nameservice.placement import DirectoryPlacement
from repro.sim.kernel import Simulator
from repro.sim.network import Machine
from repro.sim.process import SimProcess

__all__ = ["ResolutionStyle", "ResolutionCost", "DistributedResolver",
           "check_semantics_preserved"]


class ResolutionStyle(enum.Enum):
    """Who chases the referrals."""

    ITERATIVE = "iterative"
    RECURSIVE = "recursive"

    def __str__(self) -> str:
        return self.value


@dataclass
class ResolutionCost:
    """Measured cost of one distributed resolution."""

    steps: int = 0            #: components consumed
    local_steps: int = 0      #: steps served on the current machine
    remote_steps: int = 0     #: steps that needed another machine
    cached_steps: int = 0     #: steps skipped via a cached/deduped prefix
    messages: int = 0         #: simulator messages exchanged
    latency: float = 0.0      #: virtual time spent
    servers_touched: set[str] = field(default_factory=set)

    def __add__(self, other: "ResolutionCost") -> "ResolutionCost":
        if not isinstance(other, ResolutionCost):
            return NotImplemented
        return ResolutionCost(
            steps=self.steps + other.steps,
            local_steps=self.local_steps + other.local_steps,
            remote_steps=self.remote_steps + other.remote_steps,
            cached_steps=self.cached_steps + other.cached_steps,
            messages=self.messages + other.messages,
            latency=self.latency + other.latency,
            servers_touched=self.servers_touched | other.servers_touched)

    def __radd__(self, other) -> "ResolutionCost":
        if other == 0:  # so sum(costs) works without a start value
            return self + ResolutionCost()
        return NotImplemented

    @classmethod
    def merge(cls, costs: Iterable["ResolutionCost"]) -> "ResolutionCost":
        """Aggregate many per-resolution costs into one report."""
        total = cls()
        for cost in costs:
            total.steps += cost.steps
            total.local_steps += cost.local_steps
            total.remote_steps += cost.remote_steps
            total.cached_steps += cost.cached_steps
            total.messages += cost.messages
            total.latency += cost.latency
            total.servers_touched |= cost.servers_touched
        return total

    def __str__(self) -> str:
        return (f"steps={self.steps} remote={self.remote_steps} "
                f"cached={self.cached_steps} "
                f"messages={self.messages} latency={self.latency:g}")


class DistributedResolver:
    """Resolves names against placed directories, through the kernel.

    Args:
        simulator: The kernel carrying the resolution traffic.
        placement: Directory → machine placement.
        latency: One-way message latency for server hops.
        cache_policy: Coherence policy for the per-machine prefix
            caches (``NONE`` disables prefix caching entirely).
        cache_ttl: Expiry window for ``TTL`` prefix entries, in
            virtual time.
    """

    def __init__(self, simulator: Simulator,
                 placement: DirectoryPlacement,
                 latency: float = 1.0,
                 cache_policy: CachePolicy = CachePolicy.NONE,
                 cache_ttl: float = 10.0):
        self._sim = simulator
        self._placement = placement
        self._latency = latency
        self._obs = simulator.obs
        self._servers: dict[int, SimProcess] = {}
        self.cache_policy = cache_policy
        self.cache_ttl = cache_ttl
        if self._obs.enabled:
            metrics = self._obs.metrics
            self._m_messages = metrics.counter("resolver_messages_total")
            self._m_invalidation_msgs = metrics.counter(
                "resolver_invalidation_messages_total")
            self._m_latency = metrics.histogram(
                "resolver_resolution_latency")
            self._m_res_messages = metrics.histogram(
                "resolver_resolution_messages",
                buckets=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0))
        self._prefix_caches: dict[int, PrefixCache] = {}
        self._machines_by_id: dict[int, Machine] = {}
        # INVALIDATE bookkeeping: consumed binding → caching machines.
        self._holders: dict[tuple, set[int]] = {}
        # Per-server load, keyed by process uid — labels are not
        # identities (two machines may share one), so counters never
        # collide; `load` aggregates by label for reporting only.
        self._load: dict[int, int] = {}
        self._server_labels: dict[int, str] = {}
        self.invalidation_messages = 0
        self.invalidation_latency = 0.0

    def server_for(self, machine: Machine) -> SimProcess:
        """The (lazily spawned) directory-server process of a machine."""
        server = self._servers.get(id(machine))
        if server is None:
            server = self._sim.spawn(machine,
                                     label=f"dirserver@{machine.label}")
            self._servers[id(machine)] = server
            self._server_labels[server.uid] = server.label
        return server

    # -- load reporting ----------------------------------------------------

    @property
    def load(self) -> dict[str, int]:
        """Per-server load report, keyed by server label.

        Counters are kept per server *process* (labels are exposed
        only here, in reporting); two servers that happen to share a
        label have their counts summed in this view — use
        :meth:`load_of` for exact per-server counts.
        """
        report: dict[str, int] = {}
        for uid, count in self._load.items():
            label = self._server_labels[uid]
            report[label] = report.get(label, 0) + count
        return report

    def load_of(self, server: SimProcess) -> int:
        """Steps served by one specific server process."""
        return self._load.get(server.uid, 0)

    def reset_load(self) -> None:
        """Clear the per-server load counters."""
        self._load.clear()

    # -- prefix caching ----------------------------------------------------

    def prefix_cache_of(self, machine: Machine) -> PrefixCache:
        """The (lazily created) prefix cache of a client machine."""
        cache = self._prefix_caches.get(id(machine))
        if cache is None:
            cache = PrefixCache(machine, obs=self._obs)
            self._prefix_caches[id(machine)] = cache
            self._machines_by_id[id(machine)] = machine
        return cache

    def cache_stats(self) -> dict[str, int]:
        """Aggregate hit/miss/invalidation/expiry counts over every
        machine's prefix cache."""
        totals = {"hits": 0, "misses": 0, "invalidations": 0,
                  "expirations": 0}
        for cache in self._prefix_caches.values():
            for key, value in cache.stats().items():
                totals[key] += value
        return totals

    # -- messaging helpers -------------------------------------------------

    def _hop(self, sender: SimProcess, receiver: SimProcess,
             cost: ResolutionCost, what: str) -> None:
        """One message leg, pumped through the kernel only as far as
        its own delivery (a hop no longer drains unrelated events)."""
        if sender is receiver:
            return
        obs = self._obs
        before = self._sim.clock.now
        if not sender.alive:
            # A downed server answers/refers nothing: no message ever
            # leaves it, so the walk records a failed zero-message hop
            # instead of raising out of the resolution.
            if obs.enabled:
                span = obs.tracer.begin(
                    "hop", what, before,
                    attrs={"from": sender.label, "to": receiver.label,
                           "messages": 0})
                span.fail(f"sender {sender.label} down")
                obs.tracer.end(span, before)
                if obs.tracer.current is not None:
                    obs.tracer.current.fail(
                        f"hop {what} lost: sender {sender.label} down")
            return
        span = None
        if obs.enabled:
            span = obs.tracer.begin(
                "hop", what, before,
                attrs={"from": sender.label, "to": receiver.label,
                       "messages": 1})
        message = sender.send(receiver, payload={"ns": what},
                              latency=self._latency)
        if span is not None:
            message.trace_id = span.trace_id
            message.parent_span_id = span.span_id
        self._sim.run_until_settled(message)
        cost.messages += 1
        cost.latency += self._sim.clock.now - before
        if span is not None:
            if message.dropped:
                span.fail(message.drop_reason)
            obs.tracer.end(span, self._sim.clock.now)
            if message.dropped and obs.tracer.current is not None:
                # The walk lost a leg — surface it on the enclosing
                # resolution/batch span too.
                obs.tracer.current.fail(
                    f"hop {what} dropped: {message.drop_reason}")
            self._m_messages.inc()

    def _walk_to(self, client_server: SimProcess, at: SimProcess,
                 target: SimProcess, cost: ResolutionCost,
                 style: ResolutionStyle) -> SimProcess:
        if target is at:
            return at
        cost.servers_touched.add(target.label)
        if style is ResolutionStyle.ITERATIVE:
            # Referral back to the client, then query the next server.
            self._hop(at, client_server, cost, "referral")
            self._hop(client_server, target, cost, "query")
        else:
            self._hop(at, target, cost, "forward")
        return target

    def _return_home(self, client_server: SimProcess, at: SimProcess,
                     cost: ResolutionCost,
                     style: ResolutionStyle) -> None:
        if at is not client_server:
            self._hop(at, client_server, cost, "answer")

    @staticmethod
    def _count_locality(client_server: SimProcess, at: SimProcess,
                        cost: ResolutionCost) -> None:
        if at is client_server:
            cost.local_steps += 1
        else:
            cost.remote_steps += 1

    def _step_into(self, directory: Entity, at: SimProcess) -> SimProcess:
        host = self._placement.host_of(directory)
        if host is None:
            # Unplaced directories (e.g. per-process private roots)
            # are wherever the walk already is.
            return at
        server = self.server_for(host)
        self._load[server.uid] = self._load.get(server.uid, 0) + 1
        if self._obs.enabled:
            self._obs.metrics.counter("resolver_server_load_total",
                                      {"server": server.label}).inc()
        return server

    # -- the walk ----------------------------------------------------------

    def _deepest_prefix(self, client_machine: Machine, context: Context,
                        rooted: bool, comps: list[str],
                        memo: Optional[dict]):
        """The deepest usable memoized prefix of *comps*.

        Batch-local memo entries (always coherent — nothing external
        interleaves within one batch) and the machine's policy-gated
        prefix cache are both consulted; the deeper wins.  Returns
        ``(consumed, directory, deps, source)`` or None, where
        *source* says which layer won (``"memo"`` or ``"cache"``).
        """
        best = None
        if memo is not None:
            for length in range(len(comps) - 1, 0, -1):
                hit = memo.get((id(context), rooted, tuple(comps[:length])))
                if hit is not None:
                    best = (length, hit[0], hit[1], "memo")
                    break
        if self.cache_policy is not CachePolicy.NONE:
            cache = self.prefix_cache_of(client_machine)
            found = cache.lookup_longest(context, rooted, comps,
                                         self._sim.clock.now,
                                         self._placement.epoch)
            if found is not None and (best is None or found[0] > best[0]):
                entry = found[1]
                best = (found[0], entry.directory, entry.deps, "cache")
        return best

    def _remember_prefix(self, client_machine: Machine, context: Context,
                         rooted: bool, consumed: tuple[str, ...],
                         directory: ObjectEntity, deps: tuple,
                         memo: Optional[dict]) -> None:
        if memo is not None:
            memo[(id(context), rooted, consumed)] = (directory, deps)
        if self.cache_policy is CachePolicy.NONE:
            return
        if self._placement.host_of(directory) is None:
            return  # local state — there is no walk to skip
        cache = self.prefix_cache_of(client_machine)
        ttl = self.cache_ttl if self.cache_policy is CachePolicy.TTL else None
        cache.fill(context, rooted, consumed, directory, deps,
                   self._sim.clock.now, ttl, self._placement.epoch)
        if self.cache_policy is CachePolicy.INVALIDATE:
            for dep in deps:
                self._holders.setdefault(dep, set()).add(id(client_machine))

    def _walk_one(self, client_server: SimProcess, context: Context,
                  name_: CompoundName, style: ResolutionStyle,
                  cost: ResolutionCost, at: SimProcess,
                  memo: Optional[dict]) -> tuple[Entity, SimProcess]:
        """Resolve one coerced name; mirrors the section-2 recursion of
        :func:`repro.model.resolution.resolve_traced` exactly.

        The final answer hop is *not* sent — the caller decides when
        the walk returns home (once per resolution, or once per batch).
        Returns ``(entity, server the walk parked at)``.
        """
        parts = list(name_.parts)
        rooted = name_.rooted
        # The root binding is one walk step like any other component.
        comps = ([ROOT_NAME] + parts) if rooted else parts
        if not comps:
            return UNDEFINED_ENTITY, at

        current: Context = context
        entered: Optional[ObjectEntity] = None
        deps: list = []
        start = 0
        obs = self._obs

        hit = self._deepest_prefix(client_server.machine, context,
                                   rooted, comps, memo)
        if hit is not None:
            start, directory, hit_deps, source = hit
            if obs.enabled:
                obs.tracer.event(
                    "cache", "prefix.hit", self._sim.clock.now,
                    attrs={"consumed": start, "source": source,
                           "machine": client_server.machine.label,
                           "prefix": "/".join(comps[:start])})
            cost.steps += start
            cost.cached_steps += start
            entered = directory
            current = directory.state
            deps = list(hit_deps)
            at = self._walk_to(client_server, at,
                               self._step_into(directory, at), cost, style)
            self._count_locality(client_server, at, cost)
        elif obs.enabled and (memo is not None
                              or self.cache_policy is not CachePolicy.NONE):
            obs.tracer.event(
                "cache", "prefix.miss", self._sim.clock.now,
                attrs={"machine": client_server.machine.label,
                       "prefix": "/".join(comps[:-1])})

        for index in range(start, len(comps)):
            component = comps[index]
            entity = current(component)
            cost.steps += 1
            if obs.enabled:
                obs.tracer.event(
                    "step", component, self._sim.clock.now,
                    attrs={"index": index, "server": at.label,
                           "directory": (entered.label
                                         if entered is not None
                                         else "<context>")})
            if index == len(comps) - 1:
                return entity, at
            if not entity.is_defined():
                return UNDEFINED_ENTITY, at
            state = entity.state
            if not isinstance(state, Context):
                return UNDEFINED_ENTITY, at
            deps.append(binding_dep(entered, component)
                        if entered is not None
                        else context_dep(context, component))
            entered = entity  # type: ignore[assignment]
            current = state
            at = self._walk_to(client_server, at,
                               self._step_into(entity, at), cost, style)
            self._count_locality(client_server, at, cost)
            self._remember_prefix(client_server.machine, context, rooted,
                                  tuple(comps[:index + 1]), entered,
                                  tuple(deps), memo)
        return UNDEFINED_ENTITY, at  # pragma: no cover - loop returns

    # -- observability -----------------------------------------------------

    def _begin_resolution(self, name_: CompoundName, style: ResolutionStyle,
                          client: SimProcess, root: bool):
        """Open one name's ``resolution`` span (instrumented runs)."""
        return self._obs.tracer.begin(
            "resolution", str(name_) or "<empty>", self._sim.clock.now,
            **({"parent": None} if root else {}),
            attrs={"style": str(style), "policy": str(self.cache_policy),
                   "client": client.label})

    def _finish_resolution(self, span, cost: ResolutionCost,
                           entity: Entity, style: ResolutionStyle) -> None:
        """Close a ``resolution`` span and publish its metrics."""
        span.attrs.update(messages=cost.messages, steps=cost.steps,
                          cached_steps=cost.cached_steps,
                          resolved=entity.is_defined())
        self._obs.tracer.end(span, self._sim.clock.now)
        metrics = self._obs.metrics
        metrics.counter("resolver_resolutions_total",
                        {"style": str(style)}).inc()
        self._m_latency.observe(cost.latency)
        self._m_res_messages.observe(cost.messages)
        for kind, amount in (("local", cost.local_steps),
                             ("remote", cost.remote_steps),
                             ("cached", cost.cached_steps)):
            if amount:
                metrics.counter("resolver_steps_total",
                                {"kind": kind}).inc(amount)

    # -- API ---------------------------------------------------------------

    def resolve(self, client: SimProcess, context: Context,
                name_: NameLike,
                style: ResolutionStyle = ResolutionStyle.ITERATIVE,
                ) -> tuple[Entity, ResolutionCost]:
        """Resolve *name_* in *context* on behalf of *client*.

        The context's own bindings (including the root binding) are
        consulted locally — a process's context is kernel state on its
        own machine; only steps into *placed* directories can be
        remote.  With a cache policy active, the walk starts at the
        deepest live cached prefix instead of the root.
        """
        name_ = CompoundName.coerce(name_)
        cost = ResolutionCost()
        client_server = self.server_for(client.machine)
        span = (self._begin_resolution(name_, style, client, root=True)
                if self._obs.enabled else None)
        entity, at = self._walk_one(client_server, context, name_, style,
                                    cost, client_server, None)
        self._return_home(client_server, at, cost, style)
        if span is not None:
            self._finish_resolution(span, cost, entity, style)
        return entity, cost

    def resolve_many(self, client: SimProcess, context: Context,
                     names: Sequence[NameLike],
                     style: ResolutionStyle = ResolutionStyle.ITERATIVE,
                     ) -> list[tuple[Entity, ResolutionCost]]:
        """Resolve a batch of names, amortizing shared work.

        Names are processed sorted by shared prefix; every directory
        step is paid at most once per batch (a batch-local memo layered
        over the prefix cache), and consecutive queries served by the
        same server are coalesced into its one visit — the walk parks
        at each server instead of returning home between names, and a
        single answer hop closes the batch.

        Returns one ``(entity, cost)`` per input name, **in input
        order**, entity-for-entity identical to what sequential
        :meth:`resolve` calls would yield (property-tested).  Messages
        are charged to the name that first needed them; aggregate with
        :meth:`ResolutionCost.merge`.
        """
        coerced = [CompoundName.coerce(n) for n in names]
        if not coerced:
            return []
        order = sorted(range(len(coerced)),
                       key=lambda i: (not coerced[i].rooted,
                                      coerced[i].parts, i))
        client_server = self.server_for(client.machine)
        obs = self._obs
        batch_span = None
        if obs.enabled:
            batch_span = obs.tracer.begin(
                "batch", f"resolve_many[{len(coerced)}]",
                self._sim.clock.now, parent=None,
                attrs={"names": len(coerced), "style": str(style),
                       "policy": str(self.cache_policy),
                       "client": client.label})
        results: list = [None] * len(coerced)
        memo: dict = {}
        at = client_server
        for i in order:
            cost = ResolutionCost()
            span = (self._begin_resolution(coerced[i], style, client,
                                           root=False)
                    if obs.enabled else None)
            entity, at = self._walk_one(client_server, context,
                                        coerced[i], style, cost, at, memo)
            results[i] = (entity, cost)
            if span is not None:
                self._finish_resolution(span, cost, entity, style)
        # One answer hop closes the whole batch, charged to the last
        # name processed (its span parents under the batch span).
        self._return_home(client_server, at, results[order[-1]][1], style)
        if batch_span is not None:
            batch_span.attrs["messages"] = sum(
                cost.messages for _entity, cost in results)
            obs.tracer.end(batch_span, self._sim.clock.now)
        return results

    # -- writes ------------------------------------------------------------

    def rebind(self, directory: ObjectEntity, name_: str,
               entity: Entity) -> int:
        """Change ``σ(directory)(name_)`` under the write discipline.

        All binding writes to placed directories must come through
        here for prefix caching to stay coherent: under INVALIDATE,
        every prefix entry whose walk consumed the changed binding is
        dropped on every caching machine, with the invalidation
        messages sent as one batched fan-out and a single bounded
        drain (latency accumulated in :attr:`invalidation_latency`).
        Under TTL, stale prefixes live out their window; under NONE
        there is nothing to keep coherent.

        Returns the number of invalidation messages sent.
        """
        context: Context = directory.state
        context.bind(name_, entity)
        if self.cache_policy is not CachePolicy.INVALIDATE:
            return 0
        obs = self._obs
        span = None
        if obs.enabled:
            span = obs.tracer.begin(
                "rebind", f"{directory.label}/{name_}",
                self._sim.clock.now, parent=None,
                attrs={"directory": directory.label,
                       "component": name_})
        dep = binding_dep(directory, name_)
        holders = self._holders.pop(dep, set())
        host = self._placement.host_of(directory)
        fanout = []
        for machine_id in holders:
            machine = self._machines_by_id[machine_id]
            cache = self._prefix_caches.get(machine_id)
            if cache is not None:
                dropped = cache.invalidate_through(dep)
                if span is not None and dropped:
                    obs.tracer.event(
                        "cache", "prefix.invalidated",
                        self._sim.clock.now,
                        attrs={"machine": machine.label,
                               "count": dropped})
            if host is not None and machine is not host:
                message = self.server_for(host).send(
                    self.server_for(machine),
                    payload={"ns": "invalidate"},
                    latency=self._latency)
                if span is not None:
                    message.trace_id = span.trace_id
                    message.parent_span_id = span.span_id
                fanout.append(message)
        self.invalidation_messages += len(fanout)
        if fanout:
            before = self._sim.clock.now
            self._sim.run_until_settled(fanout)
            self.invalidation_latency += self._sim.clock.now - before
        if span is not None:
            self._m_invalidation_msgs.inc(len(fanout))
            span.attrs["messages"] = len(fanout)
            obs.tracer.end(span, self._sim.clock.now)
        return len(fanout)


def check_semantics_preserved(resolver: DistributedResolver,
                              client: SimProcess, context: Context,
                              name_: NameLike,
                              style: ResolutionStyle =
                              ResolutionStyle.ITERATIVE) -> bool:
    """True if the distributed walk returns exactly what the local
    section-2 recursion returns (used by tests)."""
    from repro.model.resolution import resolve as local_resolve

    distributed, _cost = resolver.resolve(client, context, name_, style)
    return distributed is local_resolve(context, name_)
