"""Directory placement: which machines serve which context object.

Section 2's model is location-free — a context object is just an
object whose state is a context.  In a *distributed computing
environment* those directories live somewhere: each machine runs a
directory server holding some of the system's context objects, and a
resolution that steps into a directory hosted elsewhere costs a
message round-trip.  (This is the operational reality behind §5's
remark that the shared-naming-graph approach "leads to more
loosely-coupled distributed systems than the single naming graph
approach".)

:class:`DirectoryPlacement` records the hosting machines of every
directory.  A directory may be placed on a single machine or on a
**replica set** — a primary plus k secondaries — so resolution can
fail over to a live replica when the primary is down (the paper's
weak-coherence reality: names keep resolving while hosts fail).
Replica-set membership changes bump the placement *epoch*; writes
that could not reach a replica mark it **stale** until anti-entropy
on restart clears the mark (see :meth:`~repro.nameservice.resolver.
DistributedResolver.handle_restart`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity
from repro.model.names import PARENT
from repro.sim.network import Machine

__all__ = ["DirectoryPlacement"]


class DirectoryPlacement:
    """Maps directories (context objects) to hosting machines."""

    def __init__(self) -> None:
        # uid → ordered replica machines, primary first.
        self._replicas_of: dict[int, list[Machine]] = {}
        # (uid, id(machine)) pairs that missed a propagated write.
        self._stale: set[tuple[int, int]] = set()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """A counter bumped on every placement/membership change.

        Cached resolution state (e.g. prefix-cache entries, which
        memoize *which server* hosts a directory) records the epoch it
        was derived under and treats entries from an older epoch as
        dead — re-placing a directory can never serve a lookup from
        the wrong server.  Stale marks do *not* bump the epoch (they
        change a replica's freshness, not the membership).
        """
        return self._epoch

    @staticmethod
    def _require_directory(directory: Entity) -> None:
        if not directory.is_context_object():
            raise SchemeError(
                f"only directories are placed on servers: {directory!r}")

    def place(self, directory: Entity, machine: Machine) -> None:
        """Host *directory* on *machine* alone (replacing any previous
        placement, including a replica set)."""
        self._require_directory(directory)
        self._replicas_of[directory.uid] = [machine]
        self._epoch += 1

    def place_replicated(self, directory: Entity, primary: Machine,
                         *secondaries: Machine) -> None:
        """Host *directory* on a replica set: *primary* + secondaries.

        The primary is the write target (:meth:`~repro.nameservice.
        resolver.DistributedResolver.rebind` propagates from it);
        resolution tries replicas in order and fails over past dead or
        stale ones.  Replaces any previous placement and bumps the
        epoch.
        """
        self._require_directory(directory)
        replicas = [primary]
        for machine in secondaries:
            if machine not in replicas:
                replicas.append(machine)
        self._replicas_of[directory.uid] = replicas
        self._epoch += 1

    def add_replica(self, directory: Entity, machine: Machine) -> None:
        """Add a secondary replica (no-op if already a member)."""
        self._require_directory(directory)
        replicas = self._replicas_of.get(directory.uid)
        if replicas is None:
            raise SchemeError(
                f"directory {directory.label!r} is not placed")
        if machine in replicas:
            return
        replicas.append(machine)
        self._epoch += 1

    def remove_replica(self, directory: Entity, machine: Machine) -> None:
        """Remove a replica from the set (membership change).

        Removing the primary promotes the next secondary; removing the
        last replica un-places the directory.  Bumps the epoch.
        """
        self._require_directory(directory)
        replicas = self._replicas_of.get(directory.uid)
        if replicas is None or machine not in replicas:
            raise SchemeError(
                f"{machine.label} does not host {directory.label!r}")
        replicas.remove(machine)
        self._stale.discard((directory.uid, id(machine)))
        if not replicas:
            del self._replicas_of[directory.uid]
        self._epoch += 1

    def place_subtree(self, root: ObjectEntity, machine: Machine,
                      follow_parent: bool = False) -> int:
        """Host *root* and every directory below it on *machine*.

        Stops at directories already placed elsewhere (so a mounted
        foreign subtree keeps its own placement).  Returns the number
        of directories placed.
        """
        if not root.is_context_object():
            raise SchemeError(f"not a directory: {root!r}")
        placed = 0
        stack: list[ObjectEntity] = [root]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            existing = self._replicas_of.get(node.uid)
            if existing is not None and existing[0] is not machine:
                continue
            self._replicas_of[node.uid] = [machine]
            self._epoch += 1
            placed += 1
            context: Context = node.state
            for name_ in context.names():
                if name_ == PARENT and not follow_parent:
                    continue
                child = context(name_)
                if child.is_context_object():
                    stack.append(child)  # type: ignore[arg-type]
        return placed

    def host_of(self, directory: Entity) -> Optional[Machine]:
        """The primary hosting machine, or None if unplaced."""
        replicas = self._replicas_of.get(directory.uid)
        return replicas[0] if replicas else None

    def replicas_of(self, directory: Entity) -> tuple[Machine, ...]:
        """All hosting machines, primary first (empty if unplaced)."""
        return tuple(self._replicas_of.get(directory.uid, ()))

    def require_host(self, directory: Entity) -> Machine:
        host = self.host_of(directory)
        if host is None:
            raise SchemeError(
                f"directory {directory.label!r} has no hosting machine")
        return host

    def placed_count(self) -> int:
        """Number of directories with a placement."""
        return len(self._replicas_of)

    # -- stale marks (anti-entropy bookkeeping) ------------------------------

    def mark_stale(self, directory: Entity, machine: Machine) -> None:
        """Record that *machine*'s copy of *directory* missed a write.

        A stale replica is skipped by failover resolution (it could
        answer with pre-write state) until anti-entropy on restart
        clears the mark.  Raises if *machine* is not a replica.
        """
        if machine not in self._replicas_of.get(directory.uid, []):
            raise SchemeError(
                f"{machine.label} does not host {directory.label!r}")
        self._stale.add((directory.uid, id(machine)))

    def is_stale(self, directory: Entity, machine: Machine) -> bool:
        """True if *machine*'s copy of *directory* missed a write."""
        return (directory.uid, id(machine)) in self._stale

    def stale_uids_of(self, machine: Machine) -> list[int]:
        """Uids of directories whose copy on *machine* is stale."""
        mid = id(machine)
        return sorted(uid for uid, m in self._stale if m == mid)

    def clear_stale(self, directory_uid: int, machine: Machine) -> bool:
        """Drop one stale mark (anti-entropy synced that directory)."""
        key = (directory_uid, id(machine))
        if key in self._stale:
            self._stale.discard(key)
            return True
        return False

    def primary_of_uid(self, directory_uid: int) -> Optional[Machine]:
        """The primary machine for a directory uid (anti-entropy's
        sync source), or None if the directory is no longer placed."""
        replicas = self._replicas_of.get(directory_uid)
        return replicas[0] if replicas else None

    def stale_count(self) -> int:
        """Total stale (directory, replica) marks outstanding."""
        return len(self._stale)

    def __repr__(self) -> str:
        return (f"<DirectoryPlacement {len(self._replicas_of)} directories, "
                f"{len(self._stale)} stale marks>")
