"""Directory placement: which machine serves which context object.

Section 2's model is location-free — a context object is just an
object whose state is a context.  In a *distributed computing
environment* those directories live somewhere: each machine runs a
directory server holding some of the system's context objects, and a
resolution that steps into a directory hosted elsewhere costs a
message round-trip.  (This is the operational reality behind §5's
remark that the shared-naming-graph approach "leads to more
loosely-coupled distributed systems than the single naming graph
approach".)

:class:`DirectoryPlacement` records the hosting machine of every
directory, with helpers to place whole subtrees at once.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity
from repro.model.names import PARENT
from repro.sim.network import Machine

__all__ = ["DirectoryPlacement"]


class DirectoryPlacement:
    """Maps directories (context objects) to hosting machines."""

    def __init__(self) -> None:
        self._host_of: dict[int, Machine] = {}
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """A counter bumped on every placement change.

        Cached resolution state (e.g. prefix-cache entries, which
        memoize *which server* hosts a directory) records the epoch it
        was derived under and treats entries from an older epoch as
        dead — re-placing a directory can never serve a lookup from
        the wrong server.
        """
        return self._epoch

    def place(self, directory: Entity, machine: Machine) -> None:
        """Host *directory* on *machine* (replacing any previous
        placement)."""
        if not directory.is_context_object():
            raise SchemeError(
                f"only directories are placed on servers: {directory!r}")
        self._host_of[directory.uid] = machine
        self._epoch += 1

    def place_subtree(self, root: ObjectEntity, machine: Machine,
                      follow_parent: bool = False) -> int:
        """Host *root* and every directory below it on *machine*.

        Stops at directories already placed elsewhere (so a mounted
        foreign subtree keeps its own placement).  Returns the number
        of directories placed.
        """
        if not root.is_context_object():
            raise SchemeError(f"not a directory: {root!r}")
        placed = 0
        stack: list[ObjectEntity] = [root]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            if node.uid in self._host_of and \
                    self._host_of[node.uid] is not machine:
                continue
            self._host_of[node.uid] = machine
            self._epoch += 1
            placed += 1
            context: Context = node.state
            for name_ in context.names():
                if name_ == PARENT and not follow_parent:
                    continue
                child = context(name_)
                if child.is_context_object():
                    stack.append(child)  # type: ignore[arg-type]
        return placed

    def host_of(self, directory: Entity) -> Optional[Machine]:
        """The hosting machine, or None if unplaced."""
        return self._host_of.get(directory.uid)

    def require_host(self, directory: Entity) -> Machine:
        host = self._host_of.get(directory.uid)
        if host is None:
            raise SchemeError(
                f"directory {directory.label!r} has no hosting machine")
        return host

    def placed_count(self) -> int:
        """Number of directories with a placement."""
        return len(self._host_of)

    def __repr__(self) -> str:
        return f"<DirectoryPlacement {len(self._host_of)} directories>"
