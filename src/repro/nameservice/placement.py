"""Directory placement: which machines serve which context object.

Section 2's model is location-free — a context object is just an
object whose state is a context.  In a *distributed computing
environment* those directories live somewhere: each machine runs a
directory server holding some of the system's context objects, and a
resolution that steps into a directory hosted elsewhere costs a
message round-trip.  (This is the operational reality behind §5's
remark that the shared-naming-graph approach "leads to more
loosely-coupled distributed systems than the single naming graph
approach".)

:class:`DirectoryPlacement` records the hosting machines of every
directory.  A directory may be placed on a single machine or on a
**replica set** — a primary plus k secondaries — so resolution can
fail over to a live replica when the primary is down (the paper's
weak-coherence reality: names keep resolving while hosts fail).
Replica-set membership changes bump the placement *epoch*; writes
that could not reach a replica mark it **stale** until anti-entropy
on restart clears the mark (see :meth:`~repro.nameservice.resolver.
DistributedResolver.handle_restart`).

Directories too hot for any single machine can instead be **sharded**
(:meth:`DirectoryPlacement.place_sharded`): their bindings split
across shard servers by consistent hashing of the binding name, with
a :class:`~repro.nameservice.sharding.ShardMap` carried under the
same epoch protocol — a shard split bumps the epoch exactly once, the
same signal a membership change sends, so every cached route dies
with the map that produced it.  Binding-aware callers route through
:meth:`~DirectoryPlacement.host_of_binding` /
:meth:`~DirectoryPlacement.replicas_for_binding`, which collapse to
the classic per-directory answer for unsharded placements.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity
from repro.model.names import PARENT
from repro.nameservice.sharding import (MergePlan, Shard, ShardMap,
                                        SplitPlan)
from repro.sim.network import Machine

__all__ = ["DirectoryPlacement"]


class DirectoryPlacement:
    """Maps directories (context objects) to hosting machines."""

    def __init__(self) -> None:
        # uid → ordered replica machines, primary first.
        self._replicas_of: dict[int, list[Machine]] = {}
        # uid → ShardMap (mutually exclusive with a replica set).
        self._shard_maps: dict[int, ShardMap] = {}
        # (uid, id(machine)) pairs that missed a propagated write.
        self._stale: set[tuple[int, int]] = set()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """A counter bumped on every placement/membership change.

        Cached resolution state (e.g. prefix-cache entries, which
        memoize *which server* hosts a directory) records the epoch it
        was derived under and treats entries from an older epoch as
        dead — re-placing a directory can never serve a lookup from
        the wrong server.  Stale marks do *not* bump the epoch (they
        change a replica's freshness, not the membership).
        """
        return self._epoch

    @staticmethod
    def _require_directory(directory: Entity) -> None:
        if not directory.is_context_object():
            raise SchemeError(
                f"only directories are placed on servers: {directory!r}")

    def _prune_stale(self, uid: int, keep: Iterable[Machine]) -> None:
        """Drop stale marks for machines no longer hosting *uid*.

        A stale mark is a property of a *replica's copy*; when a
        placement change drops the machine from the set, the mark must
        go with it — otherwise re-adding the machine later (via
        :meth:`add_replica`) resurrects a mark about a copy that no
        longer exists, and failover skips a perfectly fresh replica.
        """
        kept = {id(machine) for machine in keep}
        self._stale = {(u, m) for u, m in self._stale
                       if u != uid or m in kept}

    def place(self, directory: Entity, machine: Machine) -> None:
        """Host *directory* on *machine* alone (replacing any previous
        placement, including a replica set or shard map)."""
        self._require_directory(directory)
        self._shard_maps.pop(directory.uid, None)
        self._replicas_of[directory.uid] = [machine]
        self._prune_stale(directory.uid, (machine,))
        self._epoch += 1

    def place_replicated(self, directory: Entity, primary: Machine,
                         *secondaries: Machine) -> None:
        """Host *directory* on a replica set: *primary* + secondaries.

        The primary is the write target (:meth:`~repro.nameservice.
        resolver.DistributedResolver.rebind` propagates from it);
        resolution tries replicas in order and fails over past dead or
        stale ones.  Replaces any previous placement and bumps the
        epoch; stale marks for machines leaving the set are dropped.
        """
        self._require_directory(directory)
        replicas = [primary]
        for machine in secondaries:
            if machine not in replicas:
                replicas.append(machine)
        self._shard_maps.pop(directory.uid, None)
        self._replicas_of[directory.uid] = replicas
        self._prune_stale(directory.uid, replicas)
        self._epoch += 1

    def add_replica(self, directory: Entity, machine: Machine) -> None:
        """Add a secondary replica (no-op if already a member)."""
        self._require_directory(directory)
        replicas = self._replicas_of.get(directory.uid)
        if replicas is None:
            raise SchemeError(
                f"directory {directory.label!r} is not placed")
        if machine in replicas:
            return
        replicas.append(machine)
        self._epoch += 1

    def remove_replica(self, directory: Entity, machine: Machine) -> None:
        """Remove a replica from the set (membership change).

        Removing the primary promotes the next secondary; removing the
        last replica un-places the directory.  Bumps the epoch.
        """
        self._require_directory(directory)
        replicas = self._replicas_of.get(directory.uid)
        if replicas is None or machine not in replicas:
            raise SchemeError(
                f"{machine.label} does not host {directory.label!r}")
        replicas.remove(machine)
        self._stale.discard((directory.uid, id(machine)))
        if not replicas:
            del self._replicas_of[directory.uid]
        self._epoch += 1

    def place_subtree(self, root: ObjectEntity, machine: Machine,
                      follow_parent: bool = False) -> int:
        """Host *root* and every directory below it on *machine*.

        Stops at directories already placed elsewhere (so a mounted
        foreign subtree keeps its own placement) and at sharded
        directories (their bindings have per-shard owners).  Returns
        the number of directories placed.  The epoch is bumped exactly
        **once** per call that changes any placement — re-placing a
        subtree is one membership change, not one per directory, so
        caches built mid-walk under epoch N stay valid for the final
        placement rather than dying N-at-a-time.
        """
        if not root.is_context_object():
            raise SchemeError(f"not a directory: {root!r}")
        placed = 0
        stack: list[ObjectEntity] = [root]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            if node.uid in self._shard_maps:
                continue
            existing = self._replicas_of.get(node.uid)
            if existing is not None and existing[0] is not machine:
                continue
            self._replicas_of[node.uid] = [machine]
            self._prune_stale(node.uid, (machine,))
            placed += 1
            context: Context = node.state
            for name_ in context.names():
                if name_ == PARENT and not follow_parent:
                    continue
                child = context(name_)
                if child.is_context_object():
                    stack.append(child)  # type: ignore[arg-type]
        if placed:
            self._epoch += 1
        return placed

    # -- sharded placement ---------------------------------------------------

    def place_sharded(self, directory: Entity, *machines: Machine,
                      replicas: int = 1) -> ShardMap:
        """Split *directory*'s bindings across *machines* by consistent
        hashing of the binding name.

        With ``replicas=N`` every shard carries a replica set of N
        machines (ring neighbours of its primary), so the resolver's
        failover/stale-mark/anti-entropy machinery applies per shard —
        a crashed primary no longer takes its range dark.

        Replaces any replica-set placement (and its stale marks — a
        sharded directory's freshness is tracked per shard replica)
        and bumps the epoch once.  Returns the live :class:`ShardMap`.
        """
        self._require_directory(directory)
        shard_map = ShardMap(directory, machines,  # type: ignore[arg-type]
                             replicas=replicas)
        self._replicas_of.pop(directory.uid, None)
        self._prune_stale(directory.uid, ())
        self._shard_maps[directory.uid] = shard_map
        self._epoch += 1
        return shard_map

    def is_sharded(self, directory: Entity) -> bool:
        return directory.uid in self._shard_maps

    @property
    def has_sharding(self) -> bool:
        """True if *any* directory is sharded — the resolver's hot
        path uses this to skip all per-binding routing bookkeeping on
        deployments that never shard."""
        return bool(self._shard_maps)

    def shard_map_of(self, directory: Entity) -> Optional[ShardMap]:
        return self._shard_maps.get(directory.uid)

    def shard_maps(self) -> list[ShardMap]:
        """Every live shard map, in directory-uid order (deterministic
        iteration for the split-policy scan)."""
        return [self._shard_maps[uid]
                for uid in sorted(self._shard_maps)]

    def apply_split(self, plan: SplitPlan,
                    targets: Optional[tuple[Machine, ...]] = None) -> Shard:
        """Commit a planned shard split and bump the epoch exactly
        once — the same signal a replica-membership change sends, so
        prefix-cache entries routed under the pre-split map die.

        *targets* (when given) overrides the plan's replica set with
        the machines that actually received the migrated bindings —
        a planned replica that crashed mid-migration is excluded
        instead of joining the new shard stale.

        Callers that migrate state (:meth:`~repro.nameservice.resolver.
        DistributedResolver.split_shard`) must move the bindings
        *before* committing; an aborted migration never reaches this
        point and the epoch stays put.
        """
        for shard_map in self._shard_maps.values():
            if plan.shard in shard_map.shards:
                new = shard_map.apply_split(plan, targets=targets)
                self._epoch += 1
                return new
        raise SchemeError("split plan does not match a live shard map")

    def apply_merge(self, plan: MergePlan) -> Shard:
        """Commit a planned shard merge and bump the epoch exactly
        once (same discipline as :meth:`apply_split`).  Stale marks
        for machines that leave the directory's replica population
        with the merged-away shard are dropped — the copy they
        described no longer hosts anything.
        """
        uid = None
        for map_uid, shard_map in self._shard_maps.items():
            if plan.right in shard_map.shards:
                merged = shard_map.apply_merge(plan)
                uid = map_uid
                break
        else:
            raise SchemeError(
                "merge plan does not match a live shard map")
        keep = [machine for shard in self._shard_maps[uid].shards
                for machine in shard.replicas]
        self._prune_stale(uid, keep)
        self._epoch += 1
        return merged

    # -- routing -------------------------------------------------------------

    def host_of(self, directory: Entity) -> Optional[Machine]:
        """The primary hosting machine, or None if unplaced.

        For a *sharded* directory there is no single host; this
        returns the first shard's machine as a documented
        representative (directory-level operations like answer hops
        need *a* server).  Binding routing must use
        :meth:`host_of_binding`.
        """
        replicas = self._replicas_of.get(directory.uid)
        if replicas:
            return replicas[0]
        shard_map = self._shard_maps.get(directory.uid)
        if shard_map is not None:
            return shard_map.shards[0].machine
        return None

    def replicas_of(self, directory: Entity) -> tuple[Machine, ...]:
        """All hosting machines, primary first (empty if unplaced).

        Empty for sharded directories — there is no replica set to
        fail over across; callers must route per binding.
        """
        return tuple(self._replicas_of.get(directory.uid, ()))

    def host_of_binding(self, directory: Entity,
                        component: Optional[str]) -> Optional[Machine]:
        """The machine serving *component*'s binding in *directory*.

        Sharded directory → the owning shard's machine (and the
        routing hit is recorded for the split policy); replica set →
        the primary; unplaced → None.  A ``None`` component (no
        binding in play, e.g. a bare enter) falls back to
        :meth:`host_of`.
        """
        if not self._shard_maps:
            replicas = self._replicas_of.get(directory.uid)
            return replicas[0] if replicas else None
        shard_map = self._shard_maps.get(directory.uid)
        if shard_map is not None and component is not None:
            shard = shard_map.owner_of(component)
            shard.load += 1
            return shard.machine
        return self.host_of(directory)

    def replicas_for_binding(self, directory: Entity,
                             component: Optional[str]
                             ) -> tuple[Machine, ...]:
        """Candidate machines for *component*'s binding, preferred
        first.  Sharded → the owning shard's replica set (primary
        first — failover hops along it exactly as it does for a
        replicated directory); replicated → the replica set;
        unplaced → empty."""
        if not self._shard_maps:
            return tuple(self._replicas_of.get(directory.uid, ()))
        shard_map = self._shard_maps.get(directory.uid)
        if shard_map is not None:
            if component is None:
                return shard_map.shards[0].replicas
            shard = shard_map.owner_of(component)
            shard.load += 1
            return shard.replicas
        return tuple(self._replicas_of.get(directory.uid, ()))

    def shard_of_binding(self, directory: Entity,
                         component: Optional[str]):
        """The shard owning *component*'s binding — a **pure read**.

        Unlike :meth:`host_of_binding` / :meth:`replicas_for_binding`
        this never bumps the shard's window load counter, so observers
        (the coherence auditor labels staleness samples per shard
        through here) cannot perturb the split policy's decisions.
        Returns ``None`` for unsharded directories or a ``None``
        component.
        """
        if component is None:
            return None
        shard_map = self._shard_maps.get(directory.uid)
        if shard_map is None:
            return None
        return shard_map.owner_of(component)

    def note_binding(self, directory: Entity, component: str) -> None:
        """Track a binding created in a sharded directory after its
        map was built (the rebind write discipline calls this)."""
        shard_map = self._shard_maps.get(directory.uid)
        if shard_map is not None:
            shard_map.add_member(component)

    def note_binding_load(self, directory: Entity,
                          component: Optional[str]) -> None:
        """Record one routing hit against *component*'s owning shard
        without re-resolving the host (memoized-route bookkeeping)."""
        shard_map = self._shard_maps.get(directory.uid)
        if shard_map is not None and component is not None:
            shard_map.note_load(component)

    def require_host(self, directory: Entity) -> Machine:
        host = self.host_of(directory)
        if host is None:
            raise SchemeError(
                f"directory {directory.label!r} has no hosting machine")
        return host

    def placed_count(self) -> int:
        """Number of directories with a placement (sharded included)."""
        return len(self._replicas_of) + len(self._shard_maps)

    # -- stale marks (anti-entropy bookkeeping) ------------------------------

    def mark_stale(self, directory: Entity, machine: Machine) -> None:
        """Record that *machine*'s copy of *directory* missed a write.

        A stale replica is skipped by failover resolution (it could
        answer with pre-write state) until anti-entropy on restart
        clears the mark.  *machine* may be a member of the directory's
        replica set or of any of its shards' replica sets (a sharded
        directory's freshness is tracked per shard replica under the
        same marks).  Raises otherwise.
        """
        if machine not in self._replicas_of.get(directory.uid, []):
            shard_map = self._shard_maps.get(directory.uid)
            if shard_map is None or not any(
                    machine in shard.replicas
                    for shard in shard_map.shards):
                raise SchemeError(
                    f"{machine.label} does not host {directory.label!r}")
        self._stale.add((directory.uid, id(machine)))

    def is_stale(self, directory: Entity, machine: Machine) -> bool:
        """True if *machine*'s copy of *directory* missed a write."""
        return (directory.uid, id(machine)) in self._stale

    def stale_uids_of(self, machine: Machine) -> list[int]:
        """Uids of directories whose copy on *machine* is stale."""
        mid = id(machine)
        return sorted(uid for uid, m in self._stale if m == mid)

    def clear_stale(self, directory_uid: int, machine: Machine) -> bool:
        """Drop one stale mark (anti-entropy synced that directory)."""
        key = (directory_uid, id(machine))
        if key in self._stale:
            self._stale.discard(key)
            return True
        return False

    def primary_of_uid(self, directory_uid: int) -> Optional[Machine]:
        """The primary machine for a directory uid (anti-entropy's
        sync source), or None if the directory is no longer placed."""
        replicas = self._replicas_of.get(directory_uid)
        return replicas[0] if replicas else None

    def is_placed_uid(self, directory_uid: int) -> bool:
        """True if *directory_uid* still has any placement (replica
        set or shard map)."""
        return (directory_uid in self._replicas_of
                or directory_uid in self._shard_maps)

    def sync_source_for(self, directory_uid: int,
                        machine: Machine) -> Optional[Machine]:
        """The machine anti-entropy should copy *directory_uid*'s
        fresh state from, to resync a stale copy on *machine*.

        Replicated directory → the primary (historical behaviour; may
        be *machine* itself, in which case the caller clears the mark
        for free).  Sharded directory → the first live, non-stale
        fellow replica of a shard that has *machine* in its set —
        there is no global primary, but any fresh shard replica holds
        the range's state.  None if nothing can serve the sync (the
        mark must stay).
        """
        replicas = self._replicas_of.get(directory_uid)
        if replicas:
            return replicas[0]
        shard_map = self._shard_maps.get(directory_uid)
        if shard_map is None:
            return None
        for shard in shard_map.shards:
            if machine not in shard.replicas:
                continue
            for candidate in shard.replicas:
                if candidate is machine or not candidate.alive:
                    continue
                if (directory_uid, id(candidate)) in self._stale:
                    continue
                return candidate
        return None

    def stale_count(self) -> int:
        """Total stale (directory, replica) marks outstanding."""
        return len(self._stale)

    def __repr__(self) -> str:
        return (f"<DirectoryPlacement {len(self._replicas_of)} directories, "
                f"{len(self._shard_maps)} sharded, "
                f"{len(self._stale)} stale marks>")
