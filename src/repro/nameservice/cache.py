"""Cached bindings and cache-coherence policies (extension).

A binding cache copies entries of remote directories onto a client's
machine.  The copy is *part of a context living in another part of the
system* — so cache staleness is literally the paper's incoherence: the
same name, resolved at two places, denoting different entities.  The
paper predates this engineering (its §1 cites the general problem);
this module adds the operational layer the calibration note calls
"coherent naming in practice" (DNS/ZooKeeper-style caching), as a
clearly-marked extension measured by ablation A5.

Three policies:

* ``NONE`` — no caching; every remote step pays messages, nothing can
  go stale;
* ``TTL`` — entries expire after a virtual-time window; rebinds become
  visible only when the entry times out (bounded staleness);
* ``INVALIDATE`` — the directory service tracks which machines cached
  each entry and sends invalidations on rebind (no staleness after
  the invalidation is delivered, at the cost of extra messages);
* ``LEASE`` — invalidation callbacks *with an expiry promise*
  (:mod:`repro.nameservice.leases`): entries are fresh only while a
  covering lease is unexpired, so even a dropped callback bounds
  staleness by the lease term plus one delivery delay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity
from repro.nameservice.leases import (
    LeaseManager,
    LeaseTable,
    callback_fanout,
)
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.retry import RetryPolicy
from repro.obs.instrument import NO_OBS, Instrumentation
from repro.sim.kernel import Simulator
from repro.sim.network import Machine

__all__ = ["CachePolicy", "CacheEntry", "BindingCache",
           "CachingDirectoryService", "PrefixEntry", "PrefixCache",
           "binding_dep", "context_dep"]


class CachePolicy(enum.Enum):
    """How cached bindings are kept coherent."""

    NONE = "none"
    TTL = "ttl"
    INVALIDATE = "invalidate"
    LEASE = "lease"

    def __str__(self) -> str:
        return self.value


@dataclass
class CacheEntry:
    """One cached binding: (directory, name) → entity."""

    entity: Entity
    cached_at: float
    expires_at: Optional[float] = None  # None = no expiry (INVALIDATE)

    def live(self, now: float) -> bool:
        return self.expires_at is None or now < self.expires_at


class BindingCache:
    """A per-machine cache of remote directory bindings."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._entries: dict[tuple[int, str], CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.expirations = 0

    def lookup(self, directory: ObjectEntity, name_: str,
               now: float) -> Optional[Entity]:
        """The cached entity, or None on miss/expiry."""
        key = (directory.uid, name_)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.live(now):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry.entity

    def fill(self, directory: ObjectEntity, name_: str, entity: Entity,
             now: float, ttl: Optional[float]) -> None:
        """Install a binding copy."""
        expires = None if ttl is None else now + ttl
        self._entries[(directory.uid, name_)] = CacheEntry(
            entity, cached_at=now, expires_at=expires)

    def invalidate(self, directory: ObjectEntity, name_: str) -> None:
        """Drop a cached binding (invalidation protocol)."""
        if self._entries.pop((directory.uid, name_), None) is not None:
            self.invalidations += 1

    def expire(self, directory: ObjectEntity, name_: str) -> None:
        """Drop a cached binding whose covering lease ran out."""
        if self._entries.pop((directory.uid, name_), None) is not None:
            self.expirations += 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "expirations": self.expirations}


# -- prefix caching ----------------------------------------------------------

#: A dependency key: one binding a cached prefix walk consumed.  Either
#: ``("d", directory_uid, component)`` for a step through a placed
#: directory, or ``("c", id(context), component)`` for a step through a
#: process's own (unplaced) starting context.
DepKey = tuple[str, int, str]

#: A cached-prefix key: ``(id(context), rooted, consumed components)``.
#: For rooted names the consumed tuple begins with the root name ``/``.
PrefixKey = tuple[int, bool, tuple[str, ...]]


def binding_dep(directory: ObjectEntity, component: str) -> DepKey:
    """The dependency key for one binding of a directory object."""
    return ("d", directory.uid, component)


def context_dep(context: Context, component: str) -> DepKey:
    """The dependency key for a binding of a raw starting context."""
    return ("c", id(context), component)


@dataclass
class PrefixEntry:
    """One memoized prefix: the directory reached after consuming a
    leading run of a compound name's components.

    Attributes:
        context: The starting context the prefix was resolved in (held
            to pin identity — a recycled ``id()`` can never alias).
        directory: The context object the prefix walk arrived at.
        deps: Every binding the walk consumed, for invalidation.
        cached_at / expires_at: As for :class:`CacheEntry`.
        epoch: The placement epoch at fill time; entries from an older
            epoch are dead (a re-placed directory would make the cached
            hosting server wrong).
    """

    context: Context
    directory: ObjectEntity
    deps: tuple[DepKey, ...]
    cached_at: float
    expires_at: Optional[float] = None
    epoch: int = 0
    #: Set once the entry's expiry has been counted (an entry retained
    #: for stale serving is probed repeatedly but expires only once).
    expiry_counted: bool = False

    def live(self, now: float, epoch: int) -> bool:
        return (self.epoch == epoch
                and (self.expires_at is None or now < self.expires_at))


class PrefixCache:
    """A per-machine memo of resolved compound-name prefixes.

    Where :class:`BindingCache` copies one binding, a prefix cache
    memoizes a whole resolved *path prefix*
    ``(context, n1 … ni) → directory`` — the DNS-resolver trick: a
    repeated resolution skips straight to the deepest live prefix
    instead of re-walking (and re-paying message hops) from the root.
    Coherence is governed by the same :class:`CachePolicy` values as
    the binding cache, and every entry records the bindings its walk
    consumed so a ``rebind`` can invalidate exactly the prefixes that
    pass through the changed binding.

    With ``keep_expired`` (the resolver sets it in ``serve_stale``
    mode) entries past their TTL or epoch are *retained* instead of
    dropped — never served as live, but available to
    :meth:`lookup_stale`, the policy-gated degraded-read path that
    answers from possibly-stale bindings when no authoritative replica
    is reachable (the paper's weak coherence made operational).
    """

    def __init__(self, machine: Machine,
                 obs: Optional[Instrumentation] = None,
                 keep_expired: bool = False,
                 lease_table: Optional["LeaseTable"] = None):
        self.machine = machine
        self._obs = obs if obs is not None else NO_OBS
        self.keep_expired = keep_expired
        #: Under ``CachePolicy.LEASE`` entries carry no TTL; they are
        #: fresh iff every dependency holds an unexpired lease here.
        self.lease_table = lease_table
        self._entries: dict[PrefixKey, PrefixEntry] = {}
        # Reverse index: consumed binding → prefix keys through it.
        self._through: dict[DepKey, set[PrefixKey]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.expirations = 0
        self.stale_hits = 0
        if self._obs.enabled:
            labels = {"machine": machine.label}
            metrics = self._obs.metrics
            self._m_hits = metrics.counter(
                "cache_prefix_hits_total", labels)
            self._m_misses = metrics.counter(
                "cache_prefix_misses_total", labels)
            self._m_expirations = metrics.counter(
                "cache_prefix_expirations_total", labels)
            self._m_invalidations = metrics.counter(
                "cache_prefix_invalidations_total", labels)

    def lookup_longest(self, context: Context, rooted: bool,
                       comps: list[str], now: float,
                       epoch: int) -> Optional[tuple[int, PrefixEntry]]:
        """The deepest live cached prefix of *comps*, or None.

        Only proper prefixes are considered (the final component's
        lookup is the resolution result itself, not a directory to
        step into).  Returns ``(consumed, entry)`` where *consumed* is
        the number of leading components the entry covers.
        """
        for length in range(len(comps) - 1, 0, -1):
            key = (id(context), rooted, tuple(comps[:length]))
            entry = self._entries.get(key)
            if entry is None:
                continue
            if entry.context is not context:
                continue  # stale id() alias — never served
            leased = (self.lease_table is None
                      or self.lease_table.covers_all(entry.deps, now))
            if not entry.live(now, epoch) or not leased:
                if self.keep_expired:
                    # Retained for lookup_stale; count the expiry once.
                    if entry.expiry_counted:
                        continue
                    entry.expiry_counted = True
                else:
                    self._drop(key, entry)
                self.expirations += 1
                if self._obs.enabled:
                    self._m_expirations.inc()
                    self._obs.tracer.event(
                        "cache", "prefix.expired", now,
                        attrs={"machine": self.machine.label,
                               "prefix": "/".join(key[2])})
                continue
            self.hits += 1
            if self._obs.enabled:
                self._m_hits.inc()
            return length, entry
        self.misses += 1
        if self._obs.enabled:
            self._m_misses.inc()
        return None

    def lookup_stale(self, context: Context, rooted: bool,
                     consumed: tuple[str, ...]) -> Optional[PrefixEntry]:
        """The memoized prefix for *consumed*, **ignoring** TTL expiry
        and placement epoch — the degraded-read path.

        Only meaningful in ``keep_expired`` mode; the caller must tag
        any answer derived from the result as weakly coherent (the
        entry may predate rebinds or re-placements).  Returns None if
        the prefix was never cached (or was invalidated — an
        INVALIDATE drop is an *observed* write, not mere staleness, so
        it is never resurrected).
        """
        entry = self._entries.get((id(context), rooted, consumed))
        if entry is None or entry.context is not context:
            return None
        self.stale_hits += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "cache_prefix_stale_served_total",
                {"machine": self.machine.label}).inc()
        return entry

    def fill(self, context: Context, rooted: bool,
             comps_prefix: tuple[str, ...], directory: ObjectEntity,
             deps: tuple[DepKey, ...], now: float, ttl: Optional[float],
             epoch: int) -> None:
        """Memoize one resolved prefix."""
        key = (id(context), rooted, comps_prefix)
        old = self._entries.get(key)
        if old is not None:
            self._drop(key, old)
        expires = None if ttl is None else now + ttl
        entry = PrefixEntry(context=context, directory=directory,
                            deps=deps, cached_at=now,
                            expires_at=expires, epoch=epoch)
        self._entries[key] = entry
        for dep in deps:
            self._through.setdefault(dep, set()).add(key)

    def invalidate_through(self, dep: DepKey) -> int:
        """Drop every prefix whose walk consumed *dep*; returns the
        number of entries dropped (the invalidation protocol)."""
        keys = self._through.pop(dep, set())
        dropped = 0
        for key in keys:
            entry = self._entries.pop(key, None)
            if entry is None:
                continue
            for other in entry.deps:
                if other != dep:
                    self._through.get(other, set()).discard(key)
            dropped += 1
        self.invalidations += dropped
        if dropped and self._obs.enabled:
            self._m_invalidations.inc(dropped)
        return dropped

    def _drop(self, key: PrefixKey, entry: PrefixEntry) -> None:
        self._entries.pop(key, None)
        for dep in entry.deps:
            self._through.get(dep, set()).discard(key)

    def clear(self) -> None:
        self._entries.clear()
        self._through.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "expirations": self.expirations,
                "stale_hits": self.stale_hits}


class CachingDirectoryService:
    """Directory reads/writes with per-machine binding caches.

    All binding *writes* go through :meth:`rebind`, which is what lets
    the INVALIDATE policy know whom to notify — the same discipline a
    ReplicaRegistry imposes on replica state.

    Reads (:meth:`lookup`) consult the client machine's cache first;
    a miss on a remotely-hosted directory costs one round-trip (two
    messages) through the kernel and fills the cache per policy.
    """

    def __init__(self, simulator: Simulator,
                 placement: DirectoryPlacement,
                 policy: CachePolicy = CachePolicy.NONE,
                 ttl: float = 10.0, latency: float = 1.0,
                 retry_policy: Optional[RetryPolicy] = None):
        self._sim = simulator
        self._placement = placement
        self.policy = policy
        self.ttl = ttl
        self._latency = latency
        self.retry_policy = retry_policy
        self._caches: dict[int, BindingCache] = {}
        # (directory uid, name) -> machines holding a cached copy.
        # Under LEASE the same information lives in the LeaseManager's
        # holder index (with expiry), so _copies is INVALIDATE-only.
        self._copies: dict[tuple[int, str], dict[int, None]] = {}
        self._machines_by_id: dict[int, Machine] = {}
        self._agents: dict[int, object] = {}
        self.remote_reads = 0
        self.invalidation_messages = 0
        self.invalidation_latency = 0.0
        self.invalidation_losses = 0
        # LEASE policy state: one server-side manager, per-machine
        # client tables.  ``ttl`` doubles as the lease term.
        self.leases: Optional[LeaseManager] = None
        self._lease_tables: dict[int, LeaseTable] = {}
        if policy is CachePolicy.LEASE:
            self.leases = LeaseManager(term=ttl,
                                       retry_policy=retry_policy,
                                       obs=simulator.obs)

    # -- cache plumbing -----------------------------------------------------

    def cache_of(self, machine: Machine) -> BindingCache:
        cache = self._caches.get(id(machine))
        if cache is None:
            cache = BindingCache(machine)
            self._caches[id(machine)] = cache
            self._machines_by_id[id(machine)] = machine
        return cache

    def lease_table_of(self, machine: Machine) -> LeaseTable:
        """The LEASE policy's client-side table for *machine*."""
        table = self._lease_tables.get(id(machine))
        if table is None:
            table = LeaseTable(machine.label, obs=self._sim.obs)
            self._lease_tables[id(machine)] = table
        return table

    def _agent(self, machine: Machine):
        """A per-machine process carrying cache/invalidation traffic."""
        agent = self._agents.get(id(machine))
        if agent is None:
            agent = self._sim.spawn(machine,
                                    label=f"cacheagent@{machine.label}")
            self._agents[id(machine)] = agent
        return agent

    def _round_trip(self, client: Machine, server: Machine) -> None:
        if client is server:
            return
        sender = self._agent(client)
        receiver = self._agent(server)
        request = sender.send(receiver, payload={"cache": "read"},
                              latency=self._latency)
        self._sim.run_until_settled(request)
        reply = receiver.send(sender, payload={"cache": "reply"},
                              latency=self._latency)
        self._sim.run_until_settled(reply)
        self.remote_reads += 1

    # -- reads ------------------------------------------------------------------

    def lookup(self, client_machine: Machine, directory: ObjectEntity,
               name_: str) -> Entity:
        """Read ``σ(directory)(name_)`` from *client_machine*.

        Locally-hosted (or unplaced) directories are read directly;
        remote ones go through the cache.
        """
        if not directory.is_context_object():
            raise SchemeError(f"not a directory: {directory!r}")
        # Per-binding routing: a sharded directory serves each binding
        # from its owning shard's machine, so locality (and therefore
        # whether this read goes through the cache) is decided against
        # that machine, not a directory-wide primary.
        host = self._placement.host_of_binding(directory, name_)
        context: Context = directory.state
        if host is None or host is client_machine:
            return context(name_)
        now = self._sim.clock.now
        if self.policy is not CachePolicy.NONE:
            cache = self.cache_of(client_machine)
            if self.policy is CachePolicy.LEASE:
                # Leased entries carry no TTL; the covering lease is
                # the freshness gate (expired lease = expired entry).
                table = self.lease_table_of(client_machine)
                if not table.fresh(binding_dep(directory, name_), now):
                    cache.expire(directory, name_)
            cached = cache.lookup(directory, name_, now)
            if cached is not None:
                auditor = self._sim.obs.auditor
                if auditor is not None:
                    # Binding-level audit: is the cached copy still
                    # what the authoritative history says it is?
                    auditor.observe_lookup(
                        directory, name_, cached, now=now,
                        policy=self.policy.value, ttl=self.ttl,
                        lease_term=self.ttl,
                        placement=self._placement)
                return cached
        # Miss: fetch from the hosting server.
        self._round_trip(client_machine, host)
        now = self._sim.clock.now
        entity = context(name_)
        if self.policy is not CachePolicy.NONE and entity.is_defined():
            ttl = self.ttl if self.policy is CachePolicy.TTL else None
            self.cache_of(client_machine).fill(
                directory, name_, entity, now, ttl)
            if self.policy is CachePolicy.INVALIDATE:
                self._copies.setdefault(
                    (directory.uid, name_), {})[id(client_machine)] = None
            elif self.policy is CachePolicy.LEASE:
                dep = binding_dep(directory, name_)
                epoch = self._placement.epoch
                self.leases.grant(id(client_machine), dep, now, epoch,
                                  machine_label=client_machine.label)
                self.lease_table_of(client_machine).grant(
                    dep, now, self.ttl, epoch)
        return entity

    # -- writes --------------------------------------------------------------------

    def rebind(self, directory: ObjectEntity, name_: str,
               entity: Entity) -> None:
        """Change a binding; under INVALIDATE/LEASE, notify copies.

        Invalidations are messages (one per caching machine) sent from
        the hosting server's agent as one batched fan-out: all sends
        are enqueued first, then a single bounded drain delivers them
        before this call returns, modelling a synchronous invalidation
        protocol.  The drain's virtual time is accumulated in
        :attr:`invalidation_latency`, so the INVALIDATE policy's write
        cost is measured alongside its message count.  Under TTL,
        stale copies simply live out their window.

        Crucially, a holder's cache is only invalidated when its
        invalidation message was actually *delivered*.  A dropped
        message (partition, downed client, flaky link) leaves the
        holder's stale copy in place and is counted in
        :attr:`invalidation_losses` — under INVALIDATE that holder is
        now weakly coherent for an unbounded time (the holder is
        re-registered so a later rebind retries); under LEASE the
        undeliverable callback *breaks the lease* instead, so the
        stale copy expires by the lease term (bounded staleness).
        """
        context: Context = directory.state
        auditor = self._sim.obs.auditor
        old = context(name_) if auditor is not None else None
        context.bind(name_, entity)
        # New bindings in a sharded directory belong to exactly one
        # shard; record membership so later splits migrate them.
        self._placement.note_binding(directory, name_)
        if auditor is not None:
            auditor.record_write(directory, name_, old, entity,
                                 self._sim.clock.now,
                                 self._placement.epoch)
        if self.policy is CachePolicy.INVALIDATE:
            self._invalidate_copies(directory, name_)
        elif self.policy is CachePolicy.LEASE:
            self._lease_callbacks(directory, name_)

    def _invalidate_copies(self, directory: ObjectEntity,
                           name_: str) -> None:
        host = self._placement.host_of_binding(directory, name_)
        holders = self._copies.pop((directory.uid, name_), {})
        fanout: list[tuple[int, object]] = []
        for machine_id in holders:
            machine = self._machines_by_id[machine_id]
            if host is None or machine is host:
                # Local copy: no message needed, drop it directly.
                self._caches[machine_id].invalidate(directory, name_)
                continue
            message = self._agent(host).send(
                self._agent(machine),
                payload={"cache": "invalidate"},
                latency=self._latency)
            self.invalidation_messages += 1
            fanout.append((machine_id, message))
        if not fanout:
            return
        before = self._sim.clock.now
        self._sim.run_until_settled([msg for _mid, msg in fanout])
        self.invalidation_latency += self._sim.clock.now - before
        for machine_id, message in fanout:
            if message.dropped:
                # Silent loss made loud: the holder still has a stale
                # copy; keep it registered so a later rebind retries.
                self.invalidation_losses += 1
                self._copies.setdefault(
                    (directory.uid, name_), {})[machine_id] = None
            else:
                self._caches[machine_id].invalidate(directory, name_)

    def _lease_callbacks(self, directory: ObjectEntity,
                         name_: str) -> None:
        """Break the promise: call back every live lease holder."""
        dep = binding_dep(directory, name_)
        host = self._placement.host_of_binding(directory, name_)
        now = self._sim.clock.now
        holders = self.leases.holders_of(dep, now)
        if not holders:
            return
        before = self._sim.clock.now

        def deliver(lease, attempt: int) -> bool:
            machine = self._machines_by_id.get(lease.machine_id)
            if machine is None:
                return False
            if host is None or machine is host:
                self._on_callback(lease, directory, name_)
                return True
            message = self._agent(host).send(
                self._agent(machine),
                payload={"lease": {"op": "break", "dep": dep}},
                latency=self._latency)
            self.invalidation_messages += 1
            self._sim.run_until_settled(message)
            if message.dropped:
                return False
            self._on_callback(lease, directory, name_)
            ack = self._agent(machine).send(
                self._agent(host),
                payload={"lease": {"op": "ack", "dep": dep}},
                latency=self._latency)
            self.invalidation_messages += 1
            self._sim.run_until_settled(ack)
            if not ack.dropped:
                self.leases.record_ack(lease.machine_id, dep,
                                       self._sim.clock.now)
            return True

        def wait(delay: float) -> None:
            self._sim.run(until=self._sim.clock.now + delay)

        report = callback_fanout(
            holders,
            now=lambda: self._sim.clock.now,
            rng=self._sim.rng,
            deliver=deliver,
            wait=wait,
            retry_policy=self.retry_policy,
            breaker_for=lambda lease: self.leases.breaker_for_machine(
                lease.machine_id,
                label=self._machine_label(lease.machine_id)),
            on_broken=lambda lease: self.leases.break_lease(
                lease, self._sim.clock.now))
        self.invalidation_losses += report.broken
        self.invalidation_latency += self._sim.clock.now - before

    def _on_callback(self, lease, directory: ObjectEntity,
                     name_: str) -> None:
        """A break callback reached its holder: drop the leased copy."""
        now = self._sim.clock.now
        table = self._lease_tables.get(lease.machine_id)
        if table is not None:
            table.revoke(lease.dep, now)
        cache = self._caches.get(lease.machine_id)
        if cache is not None:
            cache.invalidate(directory, name_)

    def _machine_label(self, machine_id: int) -> str:
        machine = self._machines_by_id.get(machine_id)
        return machine.label if machine is not None else str(machine_id)

    # -- reporting --------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        totals = {"remote_reads": self.remote_reads,
                  "invalidation_messages": self.invalidation_messages,
                  "invalidation_latency": self.invalidation_latency,
                  "invalidation_losses": self.invalidation_losses,
                  "hits": 0, "misses": 0, "invalidations": 0,
                  "expirations": 0}
        for cache in self._caches.values():
            for key, value in cache.stats().items():
                totals[key] += value
        if self.leases is not None:
            for key, value in self.leases.stats().items():
                totals[f"lease_{key}"] = value
        return totals
