"""Retry, backoff and circuit-breaking for the fault-tolerant walk.

The paper's weak-coherence notion (§3) exists because real naming
schemes keep serving names while individual hosts fail; operationally
that requires the resolver to *re-ask* (bounded retries with
exponential backoff), to *stop asking* servers that keep dropping
requests (a per-server circuit breaker), and to *ask someone else*
(replica failover, :mod:`repro.nameservice.placement`).  This module
holds the two policy objects those mechanisms share:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *seeded* jitter over virtual time, so retry schedules are
  deterministic per kernel seed and reproducible run-to-run;
* :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine, trips after consecutive drops, half-opens after a
  cooldown, and publishes every transition through `repro.obs`
  (``circuit_transitions_total{breaker,to}`` plus ``circuit`` trace
  events).

Both are transport-agnostic: :class:`~repro.nameservice.resolver.
DistributedResolver` uses them for its synchronous walk and
:class:`~repro.nameservice.protocol.AsyncNameClient` reuses
:class:`RetryPolicy` for its timeout-driven resends.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.obs.instrument import NO_OBS, Instrumentation

__all__ = ["RetryPolicy", "BreakerState", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Attributes:
        max_attempts: Total attempts per server (1 = no retry).
        base_backoff: Virtual-time wait before the first retry.
        backoff_factor: Multiplier applied per further retry.
        max_backoff: Cap on the un-jittered backoff.
        jitter: Fraction of the backoff added as random spread; the
            draw comes from the *kernel's* seeded RNG, so schedules
            are deterministic per seed (never wall-clock random).
    """

    max_attempts: int = 3
    base_backoff: float = 0.5
    backoff_factor: float = 2.0
    max_backoff: float = 8.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise SimulationError("backoff times must be nonnegative")
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The wait before retry *attempt* (1-based count of failures).

        Exponential in *attempt*, capped at :attr:`max_backoff`, with
        up to ``jitter`` fractional spread drawn from *rng* (pass the
        kernel's seeded RNG for reproducible schedules).
        """
        if attempt < 1:
            raise SimulationError("attempt is 1-based")
        raw = min(self.base_backoff * self.backoff_factor ** (attempt - 1),
                  self.max_backoff)
        return raw * (1.0 + self.jitter * rng.random())


class BreakerState(enum.Enum):
    """The circuit breaker's three classic states."""

    CLOSED = "closed"        #: healthy — requests flow
    OPEN = "open"            #: tripped — requests are skipped
    HALF_OPEN = "half_open"  #: cooled down — probing again

    def __str__(self) -> str:
        return self.value


class CircuitBreaker:
    """Per-server failure memory: skip servers that keep dropping.

    Closed while the server answers; trips open after
    ``failure_threshold`` *consecutive* drops (each failed hop counts
    one); an open breaker rejects attempts until ``cooldown`` virtual
    time has passed, then half-opens and lets a probe through — a
    probe failure re-opens it, a success closes it.

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        cooldown: Virtual time an open breaker waits before probing.
        label: Name used in metrics labels and trace events (usually
            the guarded server's process label).
        obs: Instrumentation transitions are published into.
        clock: Optional ``now()`` source (a transport's clock).  When
            set, the *now* argument of :meth:`allow` /
            :meth:`record_success` / :meth:`record_failure` /
            :meth:`reset` may be omitted and the breaker reads its
            own time — virtual seconds bound to a
            :class:`~repro.transport.sim.SimTransport`, wall seconds
            bound to an asyncio transport.  Passing *now* explicitly
            always wins, so clock-bound and legacy call styles mix
            freely (and sim behaviour is bit-identical either way).
    """

    def __init__(self, failure_threshold: int = 3, cooldown: float = 30.0,
                 label: str = "",
                 obs: Optional[Instrumentation] = None,
                 clock: Optional[Callable[[], float]] = None):
        if failure_threshold < 1:
            raise SimulationError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise SimulationError("cooldown must be nonnegative")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.label = label
        self.clock = clock
        self._obs = obs if obs is not None else NO_OBS
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.transitions = 0

    def _resolve_now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if self.clock is None:
            raise SimulationError(
                f"breaker {self.label!r} has no clock; pass now= explicitly")
        return self.clock()

    def _transition(self, to: BreakerState, now: float) -> None:
        self.state = to
        self.transitions += 1
        if self._obs.enabled:
            self._obs.metrics.counter(
                "circuit_transitions_total",
                {"breaker": self.label or "?", "to": str(to)}).inc()
            self._obs.tracer.event(
                "circuit", f"{self.label or '?'}→{to}", now,
                trace_id=None, parent_span_id=None,
                attrs={"breaker": self.label, "to": str(to)})

    def allow(self, now: Optional[float] = None) -> bool:
        """May a request be attempted at time *now* (defaulting to the
        bound :attr:`clock`)?

        An open breaker whose cooldown has elapsed half-opens as a
        side effect (the caller's attempt is the probe).
        """
        now = self._resolve_now(now)
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.cooldown:
                self._transition(BreakerState.HALF_OPEN, now)
                return True
            return False
        return True

    def record_success(self, now: Optional[float] = None) -> None:
        """An attempt got through: close and forget past failures."""
        now = self._resolve_now(now)
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: Optional[float] = None) -> None:
        """An attempt was dropped: count it, maybe trip open."""
        now = self._resolve_now(now)
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self.opened_at = now
            self._transition(BreakerState.OPEN, now)
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self.opened_at = now
            self._transition(BreakerState.OPEN, now)

    def reset(self, now: float = 0.0) -> None:
        """Forcibly close (e.g. the guarded server was restarted)."""
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now)

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.label!r} {self.state} "
                f"failures={self.consecutive_failures}>")
