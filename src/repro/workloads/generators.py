"""Deterministic workload generators for the three name sources.

A workload is a sequence of
:class:`~repro.closure.meta.ResolutionEvent` objects — occurrences of
names with their ground-truth intent — drawn with a seeded RNG so
every experiment is reproducible.

One generator per Figure-1 source:

* :func:`internal_events` — names generated internally (including
  user-typed names): some activity *uses* a well-known name; the
  intent is the denotation of the name for a designated *author*
  (e.g. the user-interface activity that coined it);
* :func:`exchange_events` — names sent in messages: the intent is the
  *sender's* denotation at send time;
* :func:`embedded_events` — names read from objects: the intent was
  recorded when the structured object was authored.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent
from repro.errors import SimulationError
from repro.model.entities import Activity, Entity, ObjectEntity
from repro.model.names import CompoundName, NameLike
from repro.model.resolution import resolve

__all__ = [
    "EmbeddedUse",
    "internal_events",
    "exchange_events",
    "embedded_events",
    "mixed_workload",
]


@dataclass(frozen=True)
class EmbeddedUse:
    """One embedded-name occurrence prepared by an authoring step:
    *name* embedded in *container*, meant to denote *intended*."""

    container: ObjectEntity
    name: CompoundName
    intended: Optional[Entity]


def _intent(registry: ContextRegistry, activity: Activity,
            name_: CompoundName) -> Optional[Entity]:
    denoted = resolve(registry.context_of(activity), name_)
    return denoted if denoted.is_defined() else None


def internal_events(registry: ContextRegistry,
                    activities: Sequence[Activity],
                    names: Sequence[NameLike],
                    rng: random.Random,
                    count: int,
                    author: Optional[Activity] = None,
                    ) -> list[ResolutionEvent]:
    """INTERNAL-source events: a random activity uses a random
    well-known name.

    The ground-truth intent is the denotation for *author* (default:
    the first activity), modelling §4 case 1: the population wants a
    common reference to the entity the name's introducer meant.
    """
    if not activities or not names:
        raise SimulationError("internal_events needs activities and names")
    reference = author if author is not None else activities[0]
    probe_names = [CompoundName.coerce(n) for n in names]
    events = []
    for _ in range(count):
        name_ = rng.choice(probe_names)
        resolver = rng.choice(list(activities))
        events.append(ResolutionEvent(
            name=name_, source=NameSource.INTERNAL, resolver=resolver,
            intended=_intent(registry, reference, name_)))
    return events


def exchange_events(registry: ContextRegistry,
                    activities: Sequence[Activity],
                    names: Sequence[NameLike],
                    rng: random.Random,
                    count: int,
                    ) -> list[ResolutionEvent]:
    """MESSAGE-source events: a random sender sends a random name to a
    random (distinct) receiver; intent = the sender's denotation."""
    if len(activities) < 2 or not names:
        raise SimulationError(
            "exchange_events needs >= 2 activities and names")
    probe_names = [CompoundName.coerce(n) for n in names]
    population = list(activities)
    events = []
    for _ in range(count):
        sender, receiver = rng.sample(population, 2)
        name_ = rng.choice(probe_names)
        events.append(ResolutionEvent(
            name=name_, source=NameSource.MESSAGE, resolver=receiver,
            sender=sender, intended=_intent(registry, sender, name_)))
    return events


def embedded_events(readers: Sequence[Activity],
                    uses: Sequence[EmbeddedUse],
                    rng: random.Random,
                    count: int,
                    ) -> list[ResolutionEvent]:
    """OBJECT-source events: a random reader encounters a prepared
    embedded-name occurrence."""
    if not readers or not uses:
        raise SimulationError("embedded_events needs readers and uses")
    events = []
    for _ in range(count):
        use = rng.choice(list(uses))
        reader = rng.choice(list(readers))
        events.append(ResolutionEvent(
            name=use.name, source=NameSource.OBJECT, resolver=reader,
            source_object=use.container, intended=use.intended))
    return events


def mixed_workload(registry: ContextRegistry,
                   activities: Sequence[Activity],
                   names: Sequence[NameLike],
                   uses: Sequence[EmbeddedUse],
                   rng: random.Random,
                   count: int,
                   proportions: tuple[float, float, float] = (1.0, 1.0, 1.0),
                   ) -> list[ResolutionEvent]:
    """A shuffled mixture of all three sources.

    Args:
        proportions: Relative weights (internal, message, object).
    """
    weights_total = sum(proportions)
    if weights_total <= 0:
        raise SimulationError("proportions must have positive sum")
    n_internal = round(count * proportions[0] / weights_total)
    n_message = round(count * proportions[1] / weights_total)
    n_object = max(0, count - n_internal - n_message)
    events = []
    if n_internal:
        events += internal_events(registry, activities, names, rng,
                                  n_internal)
    if n_message:
        events += exchange_events(registry, activities, names, rng,
                                  n_message)
    if n_object and uses:
        events += embedded_events(activities, uses, rng, n_object)
    rng.shuffle(events)
    return events
