"""Organization-shaped population builders (§7-scale scenarios).

Builders that assemble realistic multi-organization environments —
divisions, user home directories under ``/users``, services under
``/services`` — on top of the scheme implementations.  Used by the
federation experiments (E12), the examples, and the scale tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.federation.scopes import FederationEnvironment, Scope
from repro.model.entities import Activity
from repro.model.names import CompoundName
from repro.namespaces.shared_graph import SharedGraphSystem

__all__ = ["OrgSpec", "BuiltOrg", "build_federation", "build_campus"]


@dataclass(frozen=True)
class OrgSpec:
    """Shape of one organization."""

    label: str
    divisions: int = 2
    users_per_division: int = 3
    services: int = 2
    activities_per_division: int = 2


@dataclass
class BuiltOrg:
    """One constructed organization inside a federation."""

    spec: OrgSpec
    scope: Scope
    division_scopes: list[Scope] = field(default_factory=list)
    activities: list[Activity] = field(default_factory=list)
    user_names: list[CompoundName] = field(default_factory=list)
    service_names: list[CompoundName] = field(default_factory=list)


def build_federation(specs: list[OrgSpec], seed: int = 0,
                     ) -> tuple[FederationEnvironment, list[BuiltOrg]]:
    """Build a federation of organizations per the §7 architecture.

    Each org publishes ``/users`` (home directories of its users,
    one ``plan`` file per user) and ``/services`` at org scope; each
    division is a child scope publishing ``/division`` with a divisional
    notes file; activities are spawned per division.
    """
    rng = random.Random(seed)
    env = FederationEnvironment()
    built: list[BuiltOrg] = []
    for spec in specs:
        org_scope = env.add_scope(spec.label)
        users_tree = org_scope.publish("users")
        services_tree = org_scope.publish("services")
        record = BuiltOrg(spec=spec, scope=org_scope)
        for service_index in range(spec.services):
            service = f"svc{service_index}"
            services_tree.mkfile(f"{service}/endpoint")
            record.service_names.append(
                CompoundName.parse(f"/services/{service}/endpoint"))
        for division_index in range(spec.divisions):
            division_label = f"{spec.label}-div{division_index}"
            division_scope = env.add_scope(division_label,
                                           parent=org_scope)
            division_tree = division_scope.publish("division")
            division_tree.mkfile("notes")
            record.division_scopes.append(division_scope)
            for user_index in range(spec.users_per_division):
                user = f"u{division_index}x{user_index}"
                users_tree.mkfile(f"{user}/plan")
                record.user_names.append(
                    CompoundName.parse(f"/users/{user}/plan"))
            for activity_index in range(spec.activities_per_division):
                record.activities.append(env.spawn(
                    division_scope,
                    f"{division_label}-p{activity_index}"))
        rng.shuffle(record.user_names)
        built.append(record)
    return env, built


def build_campus(clients: int = 4, local_files_per_client: int = 3,
                 shared_files: int = 6, replicated_commands: int = 3,
                 processes_per_client: int = 2, seed: int = 0,
                 ) -> SharedGraphSystem:
    """Build an Andrew-style campus: shared ``/vice`` tree, client
    workstations with private files and replicated ``/bin`` commands,
    and a process population.
    """
    rng = random.Random(seed)
    campus = SharedGraphSystem(label="campus")
    for file_index in range(shared_files):
        owner = f"user{file_index % max(1, shared_files // 2)}"
        campus.shared.mkfile(f"usr/{owner}/f{file_index}")
    for client_index in range(clients):
        client = campus.add_client(f"ws{client_index}")
        for file_index in range(local_files_per_client):
            client.tree.mkfile(f"tmp/local{file_index}")
        for process_index in range(processes_per_client):
            client.spawn(f"ws{client_index}-p{process_index}")
    for command_index in range(replicated_commands):
        campus.replicate_command(f"bin/cmd{command_index}")
    # A deterministic shuffle keeps downstream sampling honest without
    # affecting the structures built above.
    _ = rng.random()
    return campus
