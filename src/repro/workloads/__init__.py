"""Workload generators, organization builders, packaged scenarios."""

from repro.workloads.generators import (
    EmbeddedUse,
    embedded_events,
    exchange_events,
    internal_events,
    mixed_workload,
)
from repro.workloads.organizations import (
    BuiltOrg,
    OrgSpec,
    build_campus,
    build_federation,
)
from repro.workloads.shell import ShellResult, UserShell
from repro.workloads.scenarios import (
    PqidPopulation,
    RuleScenario,
    build_pqid_population,
    build_rule_scenario,
)
from repro.workloads.zipf import (
    ZipfNamespace,
    ZipfSampler,
    build_zipf_namespace,
    open_loop_arrivals,
)

__all__ = [
    "BuiltOrg",
    "EmbeddedUse",
    "OrgSpec",
    "PqidPopulation",
    "RuleScenario",
    "ShellResult",
    "UserShell",
    "ZipfNamespace",
    "ZipfSampler",
    "build_campus",
    "build_federation",
    "build_pqid_population",
    "build_rule_scenario",
    "build_zipf_namespace",
    "embedded_events",
    "exchange_events",
    "internal_events",
    "mixed_workload",
    "open_loop_arrivals",
]
