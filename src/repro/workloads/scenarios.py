"""Packaged scenario builders shared by tests, benches and examples.

Two scenarios recur across the suite:

* :func:`build_rule_scenario` — a population of activities with
  per-activity contexts mixing *global* names (bound to the same
  entity everywhere) and *homonyms* (the same textual name bound to a
  different entity per activity), plus authored structured objects.
  This is the §4 setting in which the resolution-rule matrix is
  measured (E2, E3, A1).

* :func:`build_pqid_population` — a multi-network, multi-machine
  simulator population for the §6 Example-1 experiments (E9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.closure.meta import ContextRegistry
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName
from repro.model.state import GlobalState
from repro.embedded.objects import StructuredContent, structured_object
from repro.sim.kernel import Simulator
from repro.sim.network import Machine, Network
from repro.sim.process import SimProcess
from repro.workloads.generators import EmbeddedUse

__all__ = ["RuleScenario", "build_rule_scenario",
           "PqidPopulation", "build_pqid_population"]


@dataclass
class RuleScenario:
    """The §4 measurement setting."""

    sigma: GlobalState
    #: Per-activity contexts: the operating-system ``R(a)`` store.
    activity_registry: ContextRegistry
    #: Per-object contexts: the ``R(o)`` store (each object's context
    #: is its author's context).
    object_registry: ContextRegistry
    activities: list[Activity] = field(default_factory=list)
    #: Names bound to the same entity in every context.
    global_names: list[CompoundName] = field(default_factory=list)
    #: Names bound to a different entity per activity.
    homonym_names: list[CompoundName] = field(default_factory=list)
    #: Authored embedded-name occurrences with ground-truth intents.
    embedded_uses: list[EmbeddedUse] = field(default_factory=list)

    @property
    def all_names(self) -> list[CompoundName]:
        return self.global_names + self.homonym_names


def build_rule_scenario(seed: int = 0, n_activities: int = 4,
                        n_global: int = 3, n_homonym: int = 3,
                        n_objects: int = 3) -> RuleScenario:
    """Build the §4 setting.

    Every activity's context binds ``shared<i>`` to one common entity
    (global names) and ``local<j>`` to its *own* entity (homonyms —
    think per-machine ``/tmp/paper``).  Each structured object is
    authored by one activity and embeds a mix of both name kinds; the
    object's ``R(o)`` context is its author's context and the recorded
    intent is the author's denotation.
    """
    rng = random.Random(seed)
    sigma = GlobalState()
    scenario = RuleScenario(sigma=sigma,
                            activity_registry=ContextRegistry(label="R(a)"),
                            object_registry=ContextRegistry(label="R(o)"))

    shared_entities = []
    for index in range(n_global):
        entity = ObjectEntity(f"shared-entity-{index}")
        sigma.add(entity)
        shared_entities.append(entity)
        scenario.global_names.append(CompoundName([f"shared{index}"]))
    for index in range(n_homonym):
        scenario.homonym_names.append(CompoundName([f"local{index}"]))

    for a_index in range(n_activities):
        activity = Activity(f"act{a_index}")
        sigma.add(activity)
        context = Context(label=f"ctx:act{a_index}")
        for index, entity in enumerate(shared_entities):
            context.bind(f"shared{index}", entity)
        for index in range(n_homonym):
            own = ObjectEntity(f"local{index}@act{a_index}")
            sigma.add(own)
            context.bind(f"local{index}", own)
        scenario.activity_registry.register(activity, context)
        scenario.activities.append(activity)

    for o_index in range(n_objects):
        author = scenario.activities[o_index % n_activities]
        author_context = scenario.activity_registry.context_of(author)
        content = StructuredContent()
        names_in_object = []
        if scenario.global_names:
            names_in_object.append(rng.choice(scenario.global_names))
        if scenario.homonym_names:
            names_in_object.append(rng.choice(scenario.homonym_names))
        for name_ in names_in_object:
            content.include(name_)
        obj = structured_object(f"obj{o_index}@{author.label}", content,
                                sigma=sigma)
        scenario.object_registry.register(obj, author_context)
        for name_ in names_in_object:
            intended = author_context(name_.first)
            scenario.embedded_uses.append(EmbeddedUse(
                container=obj, name=name_,
                intended=intended if intended.is_defined() else None))
    return scenario


@dataclass
class PqidPopulation:
    """A simulator population for the pid experiments."""

    simulator: Simulator
    networks: list[Network] = field(default_factory=list)
    machines: list[Machine] = field(default_factory=list)
    processes: list[SimProcess] = field(default_factory=list)

    def random_pair(self, rng: random.Random,
                    ) -> tuple[SimProcess, SimProcess]:
        """A random ordered pair of distinct live processes."""
        first, second = rng.sample(
            [p for p in self.processes if p.alive], 2)
        return first, second


def build_pqid_population(seed: int = 0, n_networks: int = 2,
                          machines_per_network: int = 3,
                          processes_per_machine: int = 3,
                          ) -> PqidPopulation:
    """Build the §6 Example-1 topology: networks of machines of
    processes, all live, addresses dense from 1."""
    simulator = Simulator(seed=seed)
    population = PqidPopulation(simulator=simulator)
    for n_index in range(n_networks):
        network = simulator.network(f"net{n_index}")
        population.networks.append(network)
        for m_index in range(machines_per_network):
            machine = simulator.machine(network,
                                        label=f"n{n_index}m{m_index}")
            population.machines.append(machine)
            for p_index in range(processes_per_machine):
                population.processes.append(simulator.spawn(
                    machine, label=f"n{n_index}m{m_index}p{p_index}"))
    return population
