"""A scripted user shell: names from a human, operationally (§4).

"We also include in this category names obtained from a user; this is
modelled by the user-interface activity generating the name."  The
:class:`UserShell` is that user-interface activity made concrete: it
executes a deterministic script of commands against a Unix-style
scheme, emitting the resolution events each command implies —

* ``open <name>``   — an INTERNAL use of a user-typed name;
* ``cd <path>``     — a context modification (working directory);
* ``run <label> <name> ...`` — fork a child and pass the names as
  arguments (MESSAGE uses, child resolving);
* ``cat <name>``    — read a structured object; its embedded names
  become OBJECT uses for the shell.

The emitted events carry ground-truth intents (what the name denoted
to the shell when the command ran), so a
:class:`~repro.coherence.auditor.CoherenceAuditor` can score any
closure rule against a realistic mixed workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.closure.meta import NameSource, ResolutionEvent
from repro.embedded.objects import embedded_names
from repro.errors import SchemeError
from repro.model.entities import Activity, Entity
from repro.model.names import CompoundName
from repro.namespaces.unix import UnixSystem

__all__ = ["ShellResult", "UserShell"]


@dataclass
class ShellResult:
    """What a script execution produced."""

    events: list[ResolutionEvent] = field(default_factory=list)
    children: list[Activity] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    def by_source(self, source: NameSource) -> list[ResolutionEvent]:
        return [e for e in self.events if e.source is source]


class UserShell:
    """A user's shell process on a Unix-style system.

    >>> unix = UnixSystem("box")
    >>> _ = unix.tree.mkfile("etc/passwd")
    >>> shell = UserShell(unix)
    >>> result = shell.execute(["open /etc/passwd"])
    >>> result.events[0].source
    <NameSource.INTERNAL: 'internal'>
    """

    def __init__(self, system: UnixSystem, label: str = "shell"):
        self.system = system
        self.process = system.spawn(label)
        self._child_counter = 0

    # -- commands --------------------------------------------------------

    def execute(self, script: list[str]) -> ShellResult:
        """Run a command script; unknown commands are recorded as
        errors, not raised (a shell keeps going)."""
        result = ShellResult()
        for line in script:
            parts = line.split()
            if not parts:
                continue
            command, arguments = parts[0], parts[1:]
            handler = getattr(self, f"_cmd_{command}", None)
            if handler is None:
                result.errors.append(f"unknown command: {line}")
                continue
            try:
                handler(arguments, result)
            except SchemeError as error:
                result.errors.append(f"{line}: {error}")
        return result

    def _intent(self, name_: CompoundName) -> Entity | None:
        denoted = self.system.resolve_for(self.process, name_)
        return denoted if denoted.is_defined() else None

    def _cmd_open(self, arguments: list[str],
                  result: ShellResult) -> None:
        """``open <name>`` — the user types a name; the shell uses it."""
        for text in arguments:
            name_ = CompoundName.parse(text)
            result.events.append(ResolutionEvent(
                name=name_, source=NameSource.INTERNAL,
                resolver=self.process, intended=self._intent(name_)))

    def _cmd_cd(self, arguments: list[str],
                result: ShellResult) -> None:
        """``cd <path>`` — modify the shell's working directory."""
        if len(arguments) != 1:
            raise SchemeError("cd takes exactly one path")
        self.system.chdir(self.process, arguments[0])

    def _cmd_run(self, arguments: list[str],
                 result: ShellResult) -> None:
        """``run <label> <name>...`` — fork a child, pass name args.

        The child resolves each argument in its own context (Unix
        behaviour); intents are the *shell's* denotations at exec
        time, per §4 case 2.
        """
        if not arguments:
            raise SchemeError("run needs a command label")
        label, names = arguments[0], arguments[1:]
        self._child_counter += 1
        child = self.system.fork(self.process,
                                 f"{label}-{self._child_counter}")
        result.children.append(child)
        for text in names:
            name_ = CompoundName.parse(text)
            result.events.append(ResolutionEvent(
                name=name_, source=NameSource.MESSAGE,
                resolver=child, sender=self.process,
                intended=self._intent(name_)))

    def _cmd_cat(self, arguments: list[str],
                 result: ShellResult) -> None:
        """``cat <name>`` — read an object; embedded names become
        OBJECT-source uses (intents resolved relative to the shell,
        the authoring convention of the rule scenario)."""
        if len(arguments) != 1:
            raise SchemeError("cat takes exactly one name")
        name_ = CompoundName.parse(arguments[0])
        obj = self.system.resolve_for(self.process, name_)
        if not obj.is_defined() or obj.is_activity():
            raise SchemeError(f"cannot cat {name_}")
        for inner in embedded_names(obj):  # type: ignore[arg-type]
            result.events.append(ResolutionEvent(
                name=inner, source=NameSource.OBJECT,
                resolver=self.process, source_object=obj,
                intended=self._intent(inner)))
