"""Open-loop Zipf-skewed workloads at "millions of users" scale.

The sharding experiment (A10) needs the workload the ROADMAP's north
star describes: a directory of ≥10^6 names, hammered by ≥10^5
resolutions whose popularity follows a Zipf law — the skew that makes
one server saturate while the aggregate would fit comfortably on a
handful.  Everything here is seeded and allocation-conscious:

* :class:`ZipfSampler` — ranks drawn from a Zipf(s) distribution over
  ``count`` items via a precomputed cumulative table + bisect (no
  numpy; rejection-free; deterministic per ``random.Random`` seed);
* :func:`build_zipf_namespace` — a flat hot directory of ``count``
  bindings built by direct context binds (no per-name tree walk).
  Only the ``distinct`` hottest ranks get their own leaf entity;
  colder ranks share one filler object, keeping a million-binding
  directory in tens of MB — the experiment measures routing and load,
  which depend on *bindings*, not on leaf identity;
* :func:`open_loop_arrivals` — arrival timestamps decoupled from
  service completions (the defining property of an open-loop load:
  clients do not wait for answer ``i`` before issuing ``i+1``, so a
  saturated server builds queue, it doesn't throttle the offered
  rate).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.model.context import Context
from repro.model.entities import ObjectEntity
from repro.namespaces.tree import NamingTree

__all__ = ["ZipfSampler", "ZipfNamespace", "build_zipf_namespace",
           "open_loop_arrivals"]


class ZipfSampler:
    """Seeded Zipf(s) rank sampler over ``{0, …, count-1}``.

    Rank *r* (0-based) is drawn with probability proportional to
    ``1/(r+1)**skew``.  The cumulative weight table costs O(count)
    once; each draw is one RNG float plus a bisect — fast enough for
    10^5+ draws over 10^6 ranks.
    """

    def __init__(self, count: int, skew: float = 1.0,
                 rng: Optional[random.Random] = None):
        if count < 1:
            raise SimulationError("ZipfSampler needs count >= 1")
        if skew < 0:
            raise SimulationError("ZipfSampler needs skew >= 0")
        self.count = count
        self.skew = skew
        self._rng = rng if rng is not None else random.Random(0)
        cumulative = []
        total = 0.0
        for rank in range(count):
            total += (rank + 1.0) ** -skew
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self) -> int:
        """One rank draw (0 = hottest)."""
        return bisect_left(self._cumulative,
                           self._rng.random() * self._total)

    def sample_many(self, draws: int) -> list[int]:
        """*draws* rank draws, in draw order."""
        rand = self._rng.random
        total = self._total
        cumulative = self._cumulative
        return [bisect_left(cumulative, rand() * total)
                for _ in range(draws)]

    def head_share(self, head: int) -> float:
        """Probability mass of the *head* hottest ranks (how skewed
        the workload is — reported by A10's notes)."""
        head = min(head, self.count)
        if head <= 0:
            return 0.0
        return self._cumulative[head - 1] / self._total


@dataclass
class ZipfNamespace:
    """A built hot directory plus the vocabulary to sample from."""

    tree: NamingTree
    directory: ObjectEntity       #: the flat hot directory
    path: tuple[str, ...]         #: path of *directory* in *tree*
    names: list[str]              #: binding names, index == Zipf rank
    shared_leaf: ObjectEntity     #: filler entity bound past `distinct`

    def name_of(self, rank: int) -> str:
        return self.names[rank]

    def full_name(self, rank: int) -> tuple[str, ...]:
        """The compound name resolving rank *rank* through the tree."""
        return self.path + (self.names[rank],)


def build_zipf_namespace(tree: NamingTree, path: str = "hot",
                         count: int = 1_000_000,
                         prefix: str = "u",
                         distinct: int = 4096) -> ZipfNamespace:
    """Populate ``tree/path`` with *count* bindings, rank-ordered.

    Bindings are written straight into the directory's context (one
    dict insert each) rather than through ``tree.mkfile`` — a
    million-name build must not pay a path resolution per name.  Leaf
    entities beyond the *distinct* hottest ranks share one filler
    object and skip σ registration; the experiment's subject is the
    *bindings* (what shards, migrates and routes), so cold leaves
    carrying identity would only burn memory.
    """
    if count < 1:
        raise SimulationError("build_zipf_namespace needs count >= 1")
    directory = tree.mkdir(path)
    context: Context = directory.state
    bindings = context.bindings
    names: list[str] = []
    shared = ObjectEntity(f"{prefix}-cold")
    append = names.append
    for rank in range(count):
        name_ = f"{prefix}{rank}"
        append(name_)
        if name_ in bindings:
            raise SimulationError(
                f"{name_!r} is already bound in {path!r}")
        leaf = (ObjectEntity(name_) if rank < distinct else shared)
        context.bind(name_, leaf)
    return ZipfNamespace(
        tree=tree, directory=directory,
        path=tuple(p for p in path.split("/") if p),
        names=names, shared_leaf=shared)


def open_loop_arrivals(count: int, rate: float,
                       start: float = 0.0) -> list[float]:
    """Deterministic open-loop arrival instants: request *i* arrives
    at ``start + i/rate``, regardless of how the service keeps up.

    Uniform spacing (not Poisson) is intentional: the experiment's
    comparisons hinge on *offered rate vs service rate*, and a
    deterministic arrival overlay keeps the latency distribution a
    pure function of the seed-determined sample sequence.
    """
    if count < 0:
        raise SimulationError("open_loop_arrivals needs count >= 0")
    if rate <= 0:
        raise SimulationError("open_loop_arrivals needs rate > 0")
    step = 1.0 / rate
    return [start + index * step for index in range(count)]
