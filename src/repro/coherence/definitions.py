"""Coherence in naming — the paper's central definitions (§4, §5).

*Coherence* for a name ``n`` across a set of activities means the
entity denoted by ``n`` is the same for each of them: for all
activities ``a1, a2`` in the set, ``R(a1)(n) = R(a2)(n)``.  A *global
name* is a name that denotes the same entity in the context of *every*
activity of the system.

*Weak coherence* (§5) relaxes "the same entity" to "replicas of the
same replicated object": when objects ``o1 ... og`` satisfy
``σ(o1) = ... = σ(og)`` in every legal state, it does not matter which
replica a name denotes.  Weak coherence is parameterised here by an
*equivalence* predicate on entities, supplied by
:mod:`repro.replication` (identity is the default, giving strong
coherence).

These definitions are *static*: they compare the per-activity contexts
``R(a)`` directly, which is how §5 analyses naming schemes ("the degree
of coherence can be determined by comparing the contexts R(a)").  The
*dynamic* counterpart — scoring actual resolution events produced by a
workload under a resolution rule — is :mod:`repro.coherence.auditor`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Callable

from repro.closure.meta import ContextRegistry
from repro.model.entities import Activity, Entity
from repro.model.names import CompoundName, NameLike
from repro.model.resolution import resolve

__all__ = [
    "EntityEquivalence",
    "strict_identity",
    "coherent",
    "weakly_coherent",
    "denotations",
    "is_global_name",
    "coherent_name_set",
    "global_name_set",
]

#: An equivalence predicate on entities.  Strong coherence uses
#: :func:`strict_identity`; weak coherence uses a replica relation
#: (see :func:`repro.replication.weak.replica_equivalence`).
EntityEquivalence = Callable[[Entity, Entity], bool]


def strict_identity(first: Entity, second: Entity) -> bool:
    """The strong-coherence equivalence: the very same entity."""
    return first is second


def denotations(name_: NameLike, activities: Sequence[Activity],
                registry: ContextRegistry) -> list[Entity]:
    """``[R(a)(n) for a in activities]`` — what the name denotes to each.

    Compound names are resolved with the section-2 recursion, so the
    comparison covers multi-component path names, not just atomic ones.
    """
    name_ = CompoundName.coerce(name_)
    return [resolve(registry.context_of(a), name_) for a in activities]


def _all_equivalent(entities: Iterable[Entity],
                    equivalence: EntityEquivalence,
                    require_defined: bool) -> bool:
    entities = list(entities)
    if not entities:
        return True
    first = entities[0]
    if require_defined and not first.is_defined():
        return False
    for other in entities[1:]:
        if require_defined and not other.is_defined():
            return False
        if not equivalence(first, other):
            return False
    return True


def coherent(name_: NameLike, activities: Sequence[Activity],
             registry: ContextRegistry, *,
             equivalence: EntityEquivalence = strict_identity,
             require_defined: bool = True) -> bool:
    """True if *name_* denotes the same entity for every activity.

    Args:
        name_: The name to test (atomic or compound).
        activities: The activities among which coherence is asked.
        registry: The store of per-activity contexts ``R(a)``.
        equivalence: "Sameness" of denoted entities; pass a replica
            relation for weak coherence.
        require_defined: When True (default), a name that is unbound
            for some activity is *not* coherent — there is no common
            reference.  Pass False to treat "undefined everywhere the
            same way" as vacuous agreement (useful when analysing
            which unbound names would be safe to introduce).

    With fewer than two activities the question is vacuous: True.
    """
    if len(activities) < 2:
        return True
    return _all_equivalent(denotations(name_, activities, registry),
                           equivalence, require_defined)


def weakly_coherent(name_: NameLike, activities: Sequence[Activity],
                    registry: ContextRegistry,
                    equivalence: EntityEquivalence) -> bool:
    """True if *name_* denotes replicas of the same replicated object
    (or the same entity) for every activity (§5's weak coherence)."""
    return coherent(name_, activities, registry, equivalence=equivalence)


def is_global_name(name_: NameLike, activities: Sequence[Activity],
                   registry: ContextRegistry, *,
                   equivalence: EntityEquivalence = strict_identity) -> bool:
    """True if *name_* is a global name over *activities*.

    A global name denotes the same (defined) entity in the context of
    each activity.  "Global" is always relative to a population: the
    paper stresses that names may be global only in limited scopes.
    """
    if not activities:
        return False
    values = denotations(name_, activities, registry)
    return _all_equivalent(values, equivalence, require_defined=True)


def coherent_name_set(candidates: Iterable[NameLike],
                      activities: Sequence[Activity],
                      registry: ContextRegistry, *,
                      equivalence: EntityEquivalence = strict_identity,
                      ) -> set[CompoundName]:
    """The subset of *candidates* coherent across *activities*."""
    return {CompoundName.coerce(n) for n in candidates
            if coherent(n, activities, registry, equivalence=equivalence)}


def global_name_set(candidates: Iterable[NameLike],
                    activities: Sequence[Activity],
                    registry: ContextRegistry) -> set[CompoundName]:
    """The subset of *candidates* that are global names over
    *activities*."""
    return {CompoundName.coerce(n) for n in candidates
            if is_global_name(n, activities, registry)}
