"""Degree-of-coherence metrics (§5: "the degree of coherence can be
determined by comparing the contexts R(a)").

The paper speaks qualitatively of a naming scheme's *degree of
coherence* — which activities agree, for which names.  This module
makes the notion quantitative so the experiments can print comparable
numbers:

* :func:`pairwise_matrix` — for each pair of activities, the fraction
  of probe names on which their contexts agree;
* :class:`CoherenceDegree` — a summary over a probe-name population:
  the coherent fraction, the global-name fraction, and the coherent
  fraction per activity group (e.g. per machine, per client subsystem);
* :func:`group_coherence` — coherence restricted to activity groups,
  matching statements like "there is coherence only among processes on
  the same machine" (§5.1, Newcastle).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.closure.meta import ContextRegistry
from repro.coherence.definitions import (
    EntityEquivalence,
    coherent,
    is_global_name,
    strict_identity,
)
from repro.model.entities import Activity
from repro.model.names import CompoundName, NameLike

__all__ = [
    "CoherenceDegree",
    "measure_degree",
    "pairwise_matrix",
    "group_coherence",
    "agreement_fraction",
]


def agreement_fraction(first: Activity, second: Activity,
                       probes: Sequence[CompoundName],
                       registry: ContextRegistry, *,
                       equivalence: EntityEquivalence = strict_identity,
                       ) -> float:
    """The fraction of *probes* on which two activities' contexts agree
    (with both denotations defined).  1.0 for an empty probe set."""
    if not probes:
        return 1.0
    agreeing = sum(
        1 for n in probes
        if coherent(n, [first, second], registry, equivalence=equivalence))
    return agreeing / len(probes)


def pairwise_matrix(activities: Sequence[Activity],
                    probes: Sequence[NameLike],
                    registry: ContextRegistry, *,
                    equivalence: EntityEquivalence = strict_identity,
                    ) -> dict[tuple[str, str], float]:
    """Agreement fraction for every unordered pair of activities.

    Keys are ``(label_i, label_j)`` with ``i < j`` in input order.
    """
    probes = [CompoundName.coerce(n) for n in probes]
    matrix: dict[tuple[str, str], float] = {}
    for i, first in enumerate(activities):
        for second in activities[i + 1:]:
            matrix[(first.label, second.label)] = agreement_fraction(
                first, second, probes, registry, equivalence=equivalence)
    return matrix


@dataclass
class CoherenceDegree:
    """Summary of a scheme's degree of coherence over a probe set.

    Attributes:
        probes: Number of probe names measured.
        coherent_fraction: Fraction of probes coherent across *all*
            activities.
        global_fraction: Fraction of probes that are global names
            (defined and identical everywhere) — always ≤
            ``coherent_fraction`` when ``require_defined`` semantics
            match, since global names are exactly the defined-coherent
            ones.
        mean_pairwise: Mean pairwise agreement fraction.
        per_group: Coherent fraction within each named activity group.
        coherent_names: The probes coherent across all activities.
    """

    probes: int
    coherent_fraction: float
    global_fraction: float
    mean_pairwise: float
    per_group: dict[str, float] = field(default_factory=dict)
    coherent_names: set[CompoundName] = field(default_factory=set)

    def __str__(self) -> str:
        groups = ", ".join(f"{g}={v:.2f}" for g, v in
                           sorted(self.per_group.items()))
        return (f"coherent={self.coherent_fraction:.2f} "
                f"global={self.global_fraction:.2f} "
                f"pairwise={self.mean_pairwise:.2f}"
                + (f" [{groups}]" if groups else ""))


def group_coherence(groups: Mapping[str, Sequence[Activity]],
                    probes: Sequence[CompoundName],
                    registry: ContextRegistry, *,
                    equivalence: EntityEquivalence = strict_identity,
                    ) -> dict[str, float]:
    """Coherent fraction of *probes* within each activity group.

    A group with fewer than two activities is trivially 1.0.
    """
    out: dict[str, float] = {}
    for label, members in groups.items():
        if not probes or len(members) < 2:
            out[label] = 1.0
            continue
        hits = sum(1 for n in probes
                   if coherent(n, list(members), registry,
                               equivalence=equivalence))
        out[label] = hits / len(probes)
    return out


def measure_degree(activities: Sequence[Activity],
                   probes: Iterable[NameLike],
                   registry: ContextRegistry, *,
                   groups: Mapping[str, Sequence[Activity]] | None = None,
                   equivalence: EntityEquivalence = strict_identity,
                   ) -> CoherenceDegree:
    """Measure a scheme's degree of coherence over a probe-name set.

    This is the workhorse behind the §5 scheme analyses: give it the
    scheme's activities, its per-activity context registry, and a
    population of probe names; optionally group activities (per
    machine, per subsystem) to reproduce the paper's "coherence only
    within ..." statements.
    """
    probe_list = [CompoundName.coerce(n) for n in probes]
    coherent_names = {
        n for n in probe_list
        if coherent(n, list(activities), registry, equivalence=equivalence)}
    global_names = {
        n for n in probe_list
        if is_global_name(n, list(activities), registry,
                          equivalence=equivalence)}
    matrix = pairwise_matrix(list(activities), probe_list, registry,
                             equivalence=equivalence)
    mean_pairwise = (sum(matrix.values()) / len(matrix)) if matrix else 1.0
    per_group = group_coherence(groups or {}, probe_list, registry,
                                equivalence=equivalence)
    total = len(probe_list)
    return CoherenceDegree(
        probes=total,
        coherent_fraction=(len(coherent_names) / total) if total else 1.0,
        global_fraction=(len(global_names) / total) if total else 1.0,
        mean_pairwise=mean_pairwise,
        per_group=per_group,
        coherent_names=coherent_names,
    )
