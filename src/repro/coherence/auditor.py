"""Dynamic coherence auditing: score resolution events under a rule.

The static definitions (:mod:`repro.coherence.definitions`) compare
contexts; the auditor instead watches *actual uses of names* — the
resolution events a workload produces — and classifies each as
coherent or incoherent under a chosen resolution rule.

A use is **coherent** when the consumer, resolving the name under the
rule, obtains the entity the producer intended (recorded as
``event.intended`` by the workload).  This operationalises §4: "an
activity sends a message containing a name denoting an entity to
another activity which then uses the name to refer to *the same
entity*".  With a replica equivalence it scores **weak coherence**.
An event with no recorded intent is scored only for *definedness*
(did the name resolve at all).

The auditor is the measurement instrument behind every experiment
table in :mod:`repro.bench`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.closure.meta import NameSource, ResolutionEvent
from repro.closure.rules import ResolutionRule, rule_resolve_traced
from repro.coherence.definitions import EntityEquivalence, strict_identity
from repro.errors import ResolutionRuleError
from repro.model.entities import Entity, UNDEFINED_ENTITY

__all__ = ["Verdict", "AuditRecord", "AuditSummary", "CoherenceAuditor"]


class Verdict(Enum):
    """Classification of one audited resolution event."""

    COHERENT = "coherent"          #: resolved to the intended entity
    WEAKLY_COHERENT = "weak"       #: resolved to a replica of it
    INCOHERENT = "incoherent"      #: resolved to a different entity
    UNRESOLVED = "unresolved"      #: resolved to ⊥E
    INAPPLICABLE = "inapplicable"  #: the rule could not select a context

    def __str__(self) -> str:
        return self.value


@dataclass
class AuditRecord:
    """Outcome of auditing a single resolution event."""

    event: ResolutionEvent
    verdict: Verdict
    resolved: Entity = UNDEFINED_ENTITY

    @property
    def ok(self) -> bool:
        """True for coherent or weakly coherent outcomes."""
        return self.verdict in (Verdict.COHERENT, Verdict.WEAKLY_COHERENT)

    def __repr__(self) -> str:
        return (f"<audit {self.event.source} {self.event.name} "
                f"→ {self.resolved.label}: {self.verdict}>")


@dataclass
class AuditSummary:
    """Aggregate of audit records, overall and per name source."""

    total: int = 0
    counts: dict[Verdict, int] = field(default_factory=dict)
    by_source: dict[NameSource, dict[Verdict, int]] = field(
        default_factory=dict)

    def add(self, record: AuditRecord) -> None:
        self.total += 1
        self.counts[record.verdict] = self.counts.get(record.verdict, 0) + 1
        per = self.by_source.setdefault(record.event.source, {})
        per[record.verdict] = per.get(record.verdict, 0) + 1

    def count(self, verdict: Verdict,
              source: Optional[NameSource] = None) -> int:
        """Number of records with *verdict* (optionally per source)."""
        if source is None:
            return self.counts.get(verdict, 0)
        return self.by_source.get(source, {}).get(verdict, 0)

    def rate(self, verdict: Verdict,
             source: Optional[NameSource] = None) -> float:
        """Fraction of records with *verdict* (optionally per source)."""
        if source is None:
            denom = self.total
        else:
            denom = sum(self.by_source.get(source, {}).values())
        if denom == 0:
            return 0.0
        return self.count(verdict, source) / denom

    def coherence_rate(self, source: Optional[NameSource] = None) -> float:
        """Fraction of events that were coherent or weakly coherent."""
        return (self.rate(Verdict.COHERENT, source)
                + self.rate(Verdict.WEAKLY_COHERENT, source))

    def source_total(self, source: NameSource) -> int:
        """Number of audited events with the given source."""
        return sum(self.by_source.get(source, {}).values())

    def __str__(self) -> str:
        parts = [f"{v}:{c}" for v, c in sorted(
            self.counts.items(), key=lambda kv: kv[0].value)]
        return f"<{self.total} events {' '.join(parts)}>"


class CoherenceAuditor:
    """Audits resolution events against a resolution rule.

    Args:
        rule: The closure mechanism under test.
        equivalence: Entity "sameness".  With :func:`strict_identity`
            only exact matches count as coherent; with a replica
            relation, replica matches are classified
            :attr:`Verdict.WEAKLY_COHERENT`.

    Usage::

        auditor = CoherenceAuditor(RSender(registry))
        for event in workload.events():
            auditor.observe(event)
        print(auditor.summary.coherence_rate(NameSource.MESSAGE))
    """

    def __init__(self, rule: ResolutionRule, *,
                 equivalence: EntityEquivalence = strict_identity):
        self.rule = rule
        self.equivalence = equivalence
        self.records: list[AuditRecord] = []
        self.summary = AuditSummary()

    def observe(self, event: ResolutionEvent) -> AuditRecord:
        """Resolve *event* under the rule and record the verdict."""
        try:
            trace = rule_resolve_traced(self.rule, event)
        except ResolutionRuleError:
            record = AuditRecord(event, Verdict.INAPPLICABLE)
            self._store(record)
            return record
        resolved = trace.result
        record = AuditRecord(event, self._classify(event, resolved), resolved)
        self._store(record)
        return record

    def observe_all(self, events: Iterable[ResolutionEvent],
                    ) -> "CoherenceAuditor":
        """Audit every event in *events*; returns self for chaining."""
        for event in events:
            self.observe(event)
        return self

    def _classify(self, event: ResolutionEvent, resolved: Entity) -> Verdict:
        if not resolved.is_defined():
            return Verdict.UNRESOLVED
        if event.intended is None:
            return Verdict.COHERENT
        if resolved is event.intended:
            return Verdict.COHERENT
        if self.equivalence(resolved, event.intended):
            return Verdict.WEAKLY_COHERENT
        return Verdict.INCOHERENT

    def _store(self, record: AuditRecord) -> None:
        self.records.append(record)
        self.summary.add(record)

    def incoherent_records(self) -> list[AuditRecord]:
        """Records whose verdict was INCOHERENT (for failure reports)."""
        return [r for r in self.records if r.verdict is Verdict.INCOHERENT]

    def reset(self) -> None:
        """Clear all records and the summary."""
        self.records.clear()
        self.summary = AuditSummary()
