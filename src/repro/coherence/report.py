"""Plain-text report formatting for coherence measurements.

Every experiment in :mod:`repro.bench` ends by printing a small table;
this module renders them uniformly (monospace, deterministic ordering)
so the benchmark output can be compared run-to-run and against
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.closure.meta import NameSource
from repro.coherence.auditor import AuditSummary, Verdict
from repro.coherence.metrics import CoherenceDegree

__all__ = ["format_table", "format_degree", "format_summary",
           "format_matrix"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["rule", "rate"], [["R(sender)", 1.0]]))
    rule       rate
    ---------  -----
    R(sender)  1.000
    """
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(t.ljust(w) for t, w in zip(row, widths)))
    return "\n".join(lines)


def format_degree(label: str, degree: CoherenceDegree) -> str:
    """One-scheme degree-of-coherence block."""
    rows: list[Sequence[Any]] = [
        ["probes", degree.probes],
        ["coherent fraction", degree.coherent_fraction],
        ["global-name fraction", degree.global_fraction],
        ["mean pairwise agreement", degree.mean_pairwise],
    ]
    for group, value in sorted(degree.per_group.items()):
        rows.append([f"coherent within {group}", value])
    return format_table(["metric", "value"], rows, title=label)


def format_summary(label: str, summary: AuditSummary) -> str:
    """Audit-summary block: verdict counts overall and per source."""
    rows: list[Sequence[Any]] = []
    for verdict in Verdict:
        if summary.count(verdict):
            rows.append(["(all)", str(verdict), summary.count(verdict),
                         summary.rate(verdict)])
    for source in NameSource:
        for verdict in Verdict:
            if summary.count(verdict, source):
                rows.append([str(source), str(verdict),
                             summary.count(verdict, source),
                             summary.rate(verdict, source)])
    return format_table(["source", "verdict", "count", "rate"],
                        rows, title=label)


def format_matrix(label: str,
                  matrix: Mapping[tuple[str, str], float]) -> str:
    """Pairwise agreement matrix as rows of (a, b, agreement)."""
    rows = [[a, b, v] for (a, b), v in sorted(matrix.items())]
    return format_table(["activity a", "activity b", "agreement"],
                        rows, title=label)
