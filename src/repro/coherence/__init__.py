"""Coherence in naming — the paper's primary contribution (§4, §5).

Static definitions (compare the per-activity contexts ``R(a)``),
quantitative degree-of-coherence metrics, the dynamic auditor that
scores actual resolution events under a closure rule, and report
formatting.
"""

from repro.coherence.auditor import (
    AuditRecord,
    AuditSummary,
    CoherenceAuditor,
    Verdict,
)
from repro.coherence.explain import Divergence, explain_incoherence
from repro.coherence.definitions import (
    EntityEquivalence,
    coherent,
    coherent_name_set,
    denotations,
    global_name_set,
    is_global_name,
    strict_identity,
    weakly_coherent,
)
from repro.coherence.metrics import (
    CoherenceDegree,
    agreement_fraction,
    group_coherence,
    measure_degree,
    pairwise_matrix,
)
from repro.coherence.report import (
    format_degree,
    format_matrix,
    format_summary,
    format_table,
)

__all__ = [
    "AuditRecord",
    "AuditSummary",
    "CoherenceAuditor",
    "CoherenceDegree",
    "Divergence",
    "EntityEquivalence",
    "Verdict",
    "agreement_fraction",
    "coherent",
    "coherent_name_set",
    "denotations",
    "explain_incoherence",
    "format_degree",
    "format_matrix",
    "format_summary",
    "format_table",
    "global_name_set",
    "group_coherence",
    "is_global_name",
    "measure_degree",
    "pairwise_matrix",
    "strict_identity",
    "weakly_coherent",
]
