"""Explaining incoherence: where two resolutions diverge.

`coherent()` answers *whether* a name means the same thing to two
activities; :func:`explain_incoherence` answers *why not* — it walks
both resolution traces side by side and reports the first component at
which they part ways (different directory reached, or one side
unbound).  This is the debugging view of §5's "comparing the contexts
R(a)", and the experiments' failure output uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.closure.meta import ContextRegistry
from repro.model.entities import Activity, Entity
from repro.model.names import ROOT_NAME, CompoundName, NameLike
from repro.model.resolution import ResolutionTrace, resolve_traced

__all__ = ["Divergence", "explain_incoherence"]


@dataclass
class Divergence:
    """Where and how two activities' resolutions of a name part ways.

    Attributes:
        name: The probed name.
        first: The first activity (and its trace).
        second: The second activity (and its trace).
        component: The component at which the walks diverge, or None
            when the resolutions agree (no divergence).
        index: Position of that component in the walk (the root
            binding counts as position 0 for rooted names).
        reason: Human-readable one-liner.
    """

    name: CompoundName
    first: Activity
    second: Activity
    first_trace: ResolutionTrace
    second_trace: ResolutionTrace
    component: Optional[str] = None
    index: Optional[int] = None
    reason: str = "resolutions agree"

    @property
    def diverged(self) -> bool:
        return self.component is not None

    def render(self) -> str:
        """A short report block."""
        lines = [f"{self.name} for {self.first.label} vs "
                 f"{self.second.label}:"]
        lines.append(f"  {self.first.label}: → "
                     f"{self.first_trace.result.label}")
        lines.append(f"  {self.second.label}: → "
                     f"{self.second_trace.result.label}")
        lines.append(f"  {self.reason}")
        return "\n".join(lines)


def _step_labels(trace: ResolutionTrace) -> list[tuple[str, Entity]]:
    return [(step.component, step.result) for step in trace.steps]


def explain_incoherence(name_: NameLike, first: Activity,
                        second: Activity,
                        registry: ContextRegistry) -> Divergence:
    """Compare two activities' resolutions of *name_* step by step."""
    name_ = CompoundName.coerce(name_)
    first_trace = resolve_traced(registry.context_of(first), name_)
    second_trace = resolve_traced(registry.context_of(second), name_)
    divergence = Divergence(name=name_, first=first, second=second,
                            first_trace=first_trace,
                            second_trace=second_trace)
    if first_trace.result is second_trace.result and \
            first_trace.result.is_defined():
        return divergence

    steps_a = _step_labels(first_trace)
    steps_b = _step_labels(second_trace)
    for index, ((comp_a, ent_a), (comp_b, ent_b)) in enumerate(
            zip(steps_a, steps_b)):
        if ent_a is not ent_b:
            divergence.component = comp_a
            divergence.index = index
            where = ("the root binding" if comp_a == ROOT_NAME
                     else f"component {comp_a!r}")
            if not ent_a.is_defined() or not ent_b.is_defined():
                unbound = first.label if not ent_a.is_defined() \
                    else second.label
                divergence.reason = (f"diverges at {where}: unbound "
                                     f"for {unbound}")
            else:
                divergence.reason = (
                    f"diverges at {where}: {first.label} reaches "
                    f"{ent_a.label}, {second.label} reaches "
                    f"{ent_b.label}")
            return divergence
    # Same walk prefix but one trace is shorter (stuck earlier), or
    # both reached the same undefined result.
    if len(steps_a) != len(steps_b):
        shorter = first if len(steps_a) < len(steps_b) else second
        index = min(len(steps_a), len(steps_b))
        divergence.component = name_.parts[min(index,
                                               len(name_.parts) - 1)]
        divergence.index = index
        divergence.reason = (f"{shorter.label}'s walk ends early at "
                             f"step {index}")
    elif not first_trace.result.is_defined():
        divergence.component = steps_a[-1][0] if steps_a else None
        divergence.index = len(steps_a) - 1 if steps_a else None
        divergence.reason = "unbound for both (no common reference)"
    return divergence
