"""Algol-style scope resolution for embedded names (§6 Ex. 2, Fig. 6).

"The context R(file) is determined using the Algol scope rules;
instead of nested blocks, there are nested subtrees.  A name embedded
in a node n is resolved using a matching binding at the closest
ancestor in the tree.  The binding is found by searching up the tree,
from node n to the root of the tree, for a directory node that has a
binding matching the first component of the name."

Resulting properties (all exercised by experiment E10):

* the name has the same meaning regardless of the process accessing
  the file and its site of execution;
* the subtree can be simultaneously attached in different parts of the
  environment, relocated, or copied, without changing the meaning of
  its embedded names;
* several structured objects can be combined, and used concurrently,
  without name conflicts.

:class:`UpwardScopeContext` performs the upward search lazily at each
lookup; :func:`scope_rule` packages it as the ``R(file)`` resolution
rule for the closure machinery.
"""

from __future__ import annotations

from typing import Optional

from repro.closure.rules import RScoped
from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Entity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import PARENT
from repro.model.state import GlobalState

__all__ = ["UpwardScopeContext", "parent_directory_of", "scope_context_for",
           "scope_rule"]

#: Safety bound on upward searches (a ``..`` cycle would otherwise
#: loop; trees built by :class:`~repro.namespaces.tree.NamingTree`
#: terminate at a self-parented root long before this).
_MAX_ASCENT = 256


class UpwardScopeContext(Context):
    """A derived context: lookups search up the ``..`` chain.

    The context binds nothing itself; an atomic lookup walks from the
    *start* directory toward the root, returning the first matching
    binding (``..`` itself is looked up only at the start directory —
    an embedded name may legitimately begin with ``..``).
    """

    __slots__ = ("_start",)

    def __init__(self, start: ObjectEntity, label: str = ""):
        if not start.is_context_object():
            raise SchemeError(f"scope start must be a directory: {start!r}")
        super().__init__(label=label or f"scope:{start.label}")
        self._start = start

    @property
    def start(self) -> ObjectEntity:
        """The directory the upward search starts from."""
        return self._start

    def __call__(self, name_: str) -> Entity:
        node: Entity = self._start
        for _ in range(_MAX_ASCENT):
            if not node.is_context_object():
                return UNDEFINED_ENTITY
            context: Context = node.state
            if name_ == PARENT:
                return context(PARENT)
            if context.binds(name_):
                return context(name_)
            parent = context(PARENT)
            if not parent.is_defined() or parent is node:
                return UNDEFINED_ENTITY
            node = parent
        return UNDEFINED_ENTITY

    def copy(self, label: str = "") -> "UpwardScopeContext":
        """A scope context over the same start directory (overrides
        the base copy, which would lose the derived behaviour)."""
        return UpwardScopeContext(self._start,
                                  label=label or self.label)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UpwardScopeContext):
            return self._start is other._start
        return NotImplemented

    def __repr__(self) -> str:
        return f"<UpwardScopeContext from {self._start.label!r}>"


def parent_directory_of(obj: Entity, sigma: GlobalState,
                        ) -> Optional[ObjectEntity]:
    """Find the directory containing *obj*.

    Directories carry their own ``..``; for leaf objects the directory
    is found by scanning σ's context objects (deterministically, by
    uid) for a binding to *obj*.  Returns the first container, or
    None.  An object bound in several directories (hard links) uses
    the earliest-created container, a deterministic choice.
    """
    if obj.is_context_object():
        parent = obj.state(PARENT)
        return parent if parent.is_defined() else None  # type: ignore
    for directory in sorted(sigma.context_objects(), key=lambda d: d.uid):
        context: Context = directory.state
        for name_ in context.names():
            if name_ != PARENT and context(name_) is obj:
                return directory  # type: ignore[return-value]
    return None


def scope_context_for(obj: Entity, sigma: GlobalState) -> Context:
    """The ``R(file)`` context of *obj*: upward search from the node
    the object is embedded in.

    For a directory the search starts at the directory itself (names
    embedded in a directory-like object see its own bindings first);
    for a leaf the search starts at its containing directory.
    """
    if obj.is_context_object():
        return UpwardScopeContext(obj)  # type: ignore[arg-type]
    parent = parent_directory_of(obj, sigma)
    if parent is None:
        raise SchemeError(
            f"{obj!r} is not bound in any directory; R(file) needs the "
            f"containing subtree")
    return UpwardScopeContext(parent)


def scope_rule(sigma: GlobalState) -> RScoped:
    """The ``R(file)`` resolution rule over a system state σ."""
    return RScoped(lambda obj: scope_context_for(obj, sigma),
                   formula="R(file)")
