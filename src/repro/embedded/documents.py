"""Document assembly: evaluating a structured object's meaning.

"The meaning of a structured object depends on the meanings of the
embedded names, that is, on the objects denoted by the embedded
names."  :func:`flatten` computes that meaning operationally — the
fully assembled text, following includes recursively, resolving every
embedded name under a chosen resolution rule on behalf of a chosen
activity.  Two activities for which :func:`flatten` returns the same
assembly *see the same structured object*; experiment E3/E10 compare
assemblies across activities and rules.
"""

from __future__ import annotations

from typing import Optional

from repro.closure.meta import NameSource, ResolutionEvent
from repro.closure.rules import ResolutionRule, rule_resolve
from repro.embedded.objects import (
    EmbeddedName,
    StructuredContent,
    embedded_names,
)
from repro.errors import SchemeError
from repro.model.entities import Activity, Entity, ObjectEntity

__all__ = ["flatten", "resolve_embedded", "assembly_equal"]

#: Bound on include depth (an include cycle is a user error surfaced
#: as a SchemeError rather than a RecursionError).
_MAX_DEPTH = 64


def resolve_embedded(obj: ObjectEntity, reader: Activity,
                     rule: ResolutionRule) -> list[tuple[str, Entity]]:
    """Resolve each name embedded in *obj* under *rule* for *reader*.

    Returns ``[(textual name, resolved entity), ...]`` in occurrence
    order; unresolved names map to the undefined entity.
    """
    out: list[tuple[str, Entity]] = []
    for name_ in embedded_names(obj):
        event = ResolutionEvent(name=name_, source=NameSource.OBJECT,
                                resolver=reader, source_object=obj)
        out.append((str(name_), rule_resolve(rule, event)))
    return out


def flatten(obj: ObjectEntity, reader: Activity, rule: ResolutionRule,
            _depth: int = 0) -> str:
    """Assemble the full text of structured object *obj* for *reader*.

    Embedded names are resolved under *rule*; included objects are
    flattened recursively.  An unresolved include renders as
    ``⟨name:⊥⟩`` (so incoherence is *visible* in the assembly instead
    of raising), and including a non-structured object renders its
    state as text.

    Raises:
        SchemeError: on include cycles deeper than the bound.
    """
    if _depth > _MAX_DEPTH:
        raise SchemeError(f"include depth exceeded flattening {obj.label!r} "
                          f"(include cycle?)")
    state = obj.state
    if not isinstance(state, StructuredContent):
        return "" if state is None else str(state)
    parts: list[str] = []
    for segment in state.segments:
        if isinstance(segment, EmbeddedName):
            event = ResolutionEvent(name=segment.name,
                                    source=NameSource.OBJECT,
                                    resolver=reader, source_object=obj)
            target = rule_resolve(rule, event)
            if not target.is_defined():
                parts.append(f"⟨{segment.name}:⊥⟩")
            elif isinstance(target, ObjectEntity):
                parts.append(flatten(target, reader, rule,
                                     _depth=_depth + 1))
            else:
                parts.append(f"⟨{segment.name}:{target.label}⟩")
        else:
            parts.append(segment)
    return "".join(parts)


def assembly_equal(obj: ObjectEntity, readers: list[Activity],
                   rule: ResolutionRule,
                   reference: Optional[str] = None) -> bool:
    """True if *obj* flattens identically for every reader.

    This is "the meaning of the structured object is the same for each
    activity" made checkable.  With *reference*, assemblies must also
    equal that expected text.
    """
    assemblies = [flatten(obj, reader, rule) for reader in readers]
    if not assemblies:
        return True
    expected = reference if reference is not None else assemblies[0]
    return all(assembly == expected for assembly in assemblies)
