"""Subtree relocation, copying, and multi-attach (§6 Example 2).

"The subtree containing the structured object can be simultaneously
attached in different parts of the distributed environment, and also
relocated or copied without changing the meaning of the embedded
names.  Furthermore several structured objects (stored in subtrees)
can be combined to form a larger structured object."

These helpers perform the three operations over
:class:`~repro.namespaces.tree.NamingTree` and are paired in the test
suite with assertions that Figure-6 scope resolution is invariant
under them.
"""

from __future__ import annotations

from repro.embedded.objects import StructuredContent
from repro.errors import SchemeError
from repro.model.entities import ObjectEntity
from repro.model.names import CompoundName, NameLike
from repro.namespaces.tree import NamingTree

__all__ = ["move_subtree", "copy_structured_subtree", "multi_attach"]


def move_subtree(tree: NamingTree, source: NameLike,
                 destination: NameLike) -> ObjectEntity:
    """Relocate the subtree at *source* to *destination*.

    The subtree's internal structure — including the ``..`` bindings
    its scope resolution depends on below its root — is untouched; the
    subtree root's own ``..`` is rebound to the new parent.
    """
    node = tree.detach(source)
    if not node.is_context_object():
        raise SchemeError(f"{CompoundName.coerce(source)} is not a subtree")
    tree.attach(destination, node, set_parent=True)
    return node  # type: ignore[return-value]


def copy_structured_subtree(tree: NamingTree, source: NameLike,
                            destination: NameLike) -> ObjectEntity:
    """Deep-copy the subtree at *source* to *destination*.

    Structured leaf objects are cloned with their content (so the copy
    is an independent structured object whose embedded names resolve
    inside the *copy*); unstructured leaves are shared.
    """
    node = tree.lookup(source)
    if not node.is_defined() or not node.is_context_object():
        raise SchemeError(f"{CompoundName.coerce(source)} is not a subtree")

    def clone_leaf(leaf: ObjectEntity) -> ObjectEntity:
        if isinstance(leaf.state, StructuredContent):
            fresh = ObjectEntity(leaf.label)
            fresh.state = StructuredContent(list(leaf.state.segments))
            return fresh
        return leaf

    copy = tree.copy_subtree(node, copy_leaf=clone_leaf)
    tree.attach(destination, copy, set_parent=True)
    return copy


def multi_attach(subtree_root: ObjectEntity,
                 placements: list[tuple[NamingTree, NameLike]]) -> None:
    """Attach one subtree simultaneously at several places.

    ``set_parent=False`` everywhere: the subtree's internal ``..``
    chain is left alone, so Figure-6 upward search behaves identically
    through every attachment point (for bindings inside the subtree).
    """
    if not subtree_root.is_context_object():
        raise SchemeError(f"{subtree_root!r} is not a subtree root")
    for tree, path in placements:
        tree.attach(path, subtree_root, set_parent=False)
