"""Embedded names and structured objects (§6 Example 2, Figure 6)."""

from repro.embedded.documents import assembly_equal, flatten, resolve_embedded
from repro.embedded.objects import (
    EmbeddedName,
    StructuredContent,
    embedded_names,
    structured_object,
)
from repro.embedded.relocate import (
    copy_structured_subtree,
    move_subtree,
    multi_attach,
)
from repro.embedded.scoping import (
    UpwardScopeContext,
    parent_directory_of,
    scope_context_for,
    scope_rule,
)

__all__ = [
    "EmbeddedName",
    "StructuredContent",
    "UpwardScopeContext",
    "assembly_equal",
    "copy_structured_subtree",
    "embedded_names",
    "flatten",
    "move_subtree",
    "multi_attach",
    "parent_directory_of",
    "resolve_embedded",
    "scope_context_for",
    "scope_rule",
    "structured_object",
]
