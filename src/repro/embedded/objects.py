"""Structured objects: names embedded in objects (Figure 1 source 3).

"Names can be embedded in objects to build structured objects" — a
LaTeX document including chapter files, a C source including headers,
an executable split over several files.  "The meaning of a structured
object depends on the meanings of the embedded names."

A structured object is an ordinary
:class:`~repro.model.entities.ObjectEntity` whose state is a
:class:`StructuredContent`: an ordered mix of literal text segments
and :class:`EmbeddedName` references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.model.entities import ObjectEntity
from repro.model.names import CompoundName, NameLike
from repro.model.state import GlobalState

__all__ = ["EmbeddedName", "StructuredContent", "structured_object",
           "embedded_names"]


@dataclass(frozen=True)
class EmbeddedName:
    """One embedded name reference inside a structured object."""

    name: CompoundName

    def __str__(self) -> str:
        return f"⟨{self.name}⟩"


#: A content segment: literal text or an embedded name.
Segment = Union[str, EmbeddedName]


class StructuredContent:
    """The state of a structured object: ordered segments.

    >>> content = StructuredContent(["preamble ", "chapters/intro",
    ...                              " postamble"], embed_odd=False)
    >>> [str(s) for s in content.segments]
    ['preamble ', 'chapters/intro', ' postamble']
    """

    def __init__(self, segments: list[Segment] | None = None,
                 embed_odd: bool = True):
        # embed_odd is accepted for symmetry with builders but unused;
        # callers pass explicit EmbeddedName objects or use include().
        self.segments: list[Segment] = list(segments or [])

    def text(self, text_segment: str) -> "StructuredContent":
        """Append a literal text segment (chainable)."""
        self.segments.append(text_segment)
        return self

    def include(self, name_: NameLike) -> "StructuredContent":
        """Append an embedded name reference (chainable)."""
        self.segments.append(EmbeddedName(CompoundName.coerce(name_)))
        return self

    def embedded(self) -> list[CompoundName]:
        """The embedded names, in order of occurrence."""
        return [segment.name for segment in self.segments
                if isinstance(segment, EmbeddedName)]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StructuredContent):
            return self.segments == other.segments
        return NotImplemented

    def __repr__(self) -> str:
        return f"<StructuredContent {len(self.segments)} segments>"


def structured_object(label: str,
                      content: StructuredContent | None = None,
                      sigma: GlobalState | None = None) -> ObjectEntity:
    """Create an object whose state is structured content."""
    obj = ObjectEntity(label)
    obj.state = content if content is not None else StructuredContent()
    if sigma is not None:
        sigma.add(obj)
    return obj


def embedded_names(obj: ObjectEntity) -> list[CompoundName]:
    """The names embedded in *obj* (empty for unstructured objects)."""
    state = obj.state
    if isinstance(state, StructuredContent):
        return state.embedded()
    return []
