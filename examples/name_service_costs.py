#!/usr/bin/env python
"""What coherence costs: distributed resolution over placed directories.

Section 5's designs differ not only in coherence but in coupling.
This demo hosts each design's directories on simulated machines and
drives the same workload through a distributed resolver, counting the
messages each name lookup generates and where the load lands —
the operational reading of the paper's remark that the shared naming
graph "leads to more loosely-coupled distributed systems than the
single naming graph approach".

Run:  python examples/name_service_costs.py
"""

from repro.coherence import format_table
from repro.namespaces import SharedGraphSystem
from repro.nameservice import (
    DirectoryPlacement,
    DistributedResolver,
    ResolutionStyle,
)
from repro.sim import Simulator


def main() -> None:
    simulator = Simulator(seed=0)
    network = simulator.network("campus")
    campus = SharedGraphSystem(sigma=simulator.sigma)
    campus.shared.mkfile("usr/alice/thesis")
    campus.shared.mkfile("proj/svn/trunk")

    placement = DirectoryPlacement()
    vice_machine = simulator.machine(network, "vice-server")
    placement.place_subtree(campus.shared.root, vice_machine)

    clients = []
    for label in ("ws1", "ws2"):
        client = campus.add_client(label)
        client.tree.mkfile("tmp/build.log")
        machine = simulator.machine(network, label)
        placement.place_subtree(client.tree.root, machine)
        sim_process = simulator.spawn(machine, f"{label}-proc")
        process = client.spawn(sim_process.label, activity=sim_process)
        clients.append((sim_process, campus.registry.context_of(process)))

    resolver = DistributedResolver(simulator, placement)

    rows = []
    for name_ in ("/tmp/build.log", "/vice/usr/alice/thesis",
                  "/vice/proj/svn/trunk"):
        for style in (ResolutionStyle.ITERATIVE,
                      ResolutionStyle.RECURSIVE):
            client, context = clients[0]
            entity, cost = resolver.resolve(client, context, name_, style)
            rows.append([name_, str(style), entity.label, cost.steps,
                         cost.messages, cost.latency])
    print(format_table(
        ["name", "style", "resolved to", "steps", "messages", "latency"],
        rows,
        title="Distributed resolution from ws1 (directories placed on "
              "servers)"))

    print("\nServer load after the workload:")
    for label, count in sorted(resolver.load.items()):
        print(f"  {label}: {count} directory steps")

    print("\nLocal names never leave the workstation; only /vice names "
          "pay a round trip to\nthe shared server — the coupling half "
          "of section 5's coherence trade-off.")


if __name__ == "__main__":
    main()
