#!/usr/bin/env python
"""Remote execution across three naming designs (§5.1, §5.2, §6-II).

The same task everywhere: a parent process on one machine launches a
child on another and passes it three file names.  How many arguments
still denote what the parent meant?

Compared designs:
  * Newcastle Connection, target-root and invoker-root variants;
  * Andrew-style shared naming graph (only /vice names survive);
  * per-process namespaces (the paper's §6-II facility): everything
    survives, without global names, and the child still sees its
    local machine.

Run:  python examples/remote_execution.py
"""

from repro.coherence import format_table
from repro.namespaces import (
    NewcastleSystem,
    PerProcessSystem,
    RemoteRootPolicy,
    SharedGraphSystem,
)
from repro.remote import evaluate_remote_exec


def newcastle_rows():
    nc = NewcastleSystem()
    for machine in ("alpha", "beta"):
        nc.add_machine(machine)
    nc.machine_tree("alpha").mkfile("home/u/in.txt")
    nc.machine_tree("alpha").mkfile("home/u/cfg")
    nc.machine_tree("alpha").mkfile("lib/tool")
    arguments = ["/home/u/in.txt", "/home/u/cfg", "/lib/tool"]
    parent = nc.spawn("alpha", "parent")
    rows = []
    for policy in (RemoteRootPolicy.TARGET, RemoteRootPolicy.INVOKER):
        child = nc.remote_spawn(parent, "beta", f"child-{policy.value}",
                                policy)
        report = evaluate_remote_exec(nc.registry, parent, child,
                                      arguments,
                                      f"newcastle/{policy.value}-root")
        rows.append(report.row())
    return rows


def andrew_rows():
    campus = SharedGraphSystem()
    campus.shared.mkfile("proj/in.txt")
    home = campus.add_client("home-ws")
    campus.add_client("exec-server")
    home.tree.mkfile("tmp/cfg")
    home.tree.mkfile("tmp/tool")
    parent = home.spawn("parent")
    child = campus.remote_spawn(parent, "exec-server", "child")
    arguments = ["/vice/proj/in.txt", "/tmp/cfg", "/tmp/tool"]
    report = evaluate_remote_exec(campus.registry, parent, child,
                                  arguments, "andrew/shared-graph")
    return [report.row()]


def perprocess_rows():
    port = PerProcessSystem()
    for machine in ("workstation", "server"):
        port.add_machine(machine)
    port.machine_tree("workstation").mkfile("u/in.txt")
    port.machine_tree("workstation").mkfile("u/cfg")
    port.machine_tree("workstation").mkfile("u/tool")
    port.machine_tree("server").mkfile("scratch/space")
    parent = port.spawn("workstation", "parent",
                        mounts=[("home", "workstation")])
    child = port.remote_spawn(parent, "server", "child")
    arguments = ["/home/u/in.txt", "/home/u/cfg", "/home/u/tool"]
    report = evaluate_remote_exec(port.registry, parent, child,
                                  arguments, "per-process/import")
    local = port.resolve_for(child, "/local/scratch/space").is_defined()
    row = report.row()
    row.append("yes" if local else "no")
    return [row]


def main() -> None:
    rows = []
    for row in newcastle_rows() + andrew_rows():
        rows.append(list(row) + ["-"])
    rows.extend(perprocess_rows())
    print(format_table(
        ["design", "args", "coherent", "incoherent", "unresolved",
         "rate", "child sees local fs"],
        rows,
        title="Remote execution: argument coherence by naming design"))
    print("\nThe §6-II per-process facility is the only design that "
          "passes every argument\nAND gives the child local access — "
          "without any global names.")


if __name__ == "__main__":
    main()
