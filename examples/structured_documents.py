#!/usr/bin/env python
"""Structured documents with embedded names (§6 Example 2, Figure 6).

A LaTeX-style book whose chapters live in separate files, stored in a
subtree with Algol-scope name resolution.  The demo shows the three
guarantees the paper claims for the R(file) rule:

  1. every reader assembles the same text, wherever they run;
  2. the subtree can be relocated, copied, and attached in several
     places at once without changing the meaning of embedded names;
  3. two documents with clashing internal names can be combined.

It also shows the failure mode the rule fixes: under the usual
R(activity) rule, the same embedded names break for readers whose
contexts differ.

Run:  python examples/structured_documents.py
"""

from repro.closure import ContextRegistry, RActivity
from repro.embedded import (
    StructuredContent,
    flatten,
    move_subtree,
    multi_attach,
    scope_rule,
    structured_object,
)
from repro.model import Activity, Context, GlobalState
from repro.namespaces import NamingTree


def build_book(tree: NamingTree, sigma: GlobalState, prefix: str,
               flavour: str):
    """A book subtree: chapters/ + main file including them."""
    intro = tree.mkfile(f"{prefix}/chapters/intro")
    intro.state = f"[{flavour} intro]"
    body = tree.mkfile(f"{prefix}/chapters/body")
    body.state = f"[{flavour} body]"
    main = tree.add(f"{prefix}/main", structured_object(
        f"{flavour}-main",
        StructuredContent()
        .text(f"{flavour.upper()}: ")
        .include("chapters/intro")
        .text(" + ")
        .include("chapters/body"),
        sigma=sigma))
    return main


def main() -> None:
    sigma = GlobalState()
    tree = NamingTree("fs", sigma=sigma, parent_links=True)
    book = build_book(tree, sigma, "books/thesis", "thesis")

    readers = [Activity(f"reader-{i}") for i in range(3)]
    for reader in readers:
        sigma.add(reader)
    rule = scope_rule(sigma)

    print("1. Same meaning for every reader:")
    for reader in readers:
        print(f"   {reader.label}: {flatten(book, reader, rule)}")

    print("\n2. Relocate the subtree …")
    moved = move_subtree(tree, "books/thesis", "archive/thesis")
    print("   after move:", flatten(book, readers[0], rule))

    print("   … and attach it at two more places simultaneously:")
    site = NamingTree("other-site", sigma=sigma, parent_links=True)
    multi_attach(moved, [(site, "mnt/a/thesis"), (site, "mnt/b/thesis")])
    print("   via site mounts:", flatten(
        site.lookup("mnt/a/thesis/main"), readers[1], rule))

    print("\n3. Combine two documents with clashing internal names:")
    build_book(tree, sigma, "books/report", "report")
    for path in ("archive/thesis/main", "books/report/main"):
        print(f"   {path}: {flatten(tree.lookup(path), readers[2], rule)}")

    print("\n4. The failure the rule fixes — R(activity) instead of "
          "R(file):")
    broken_rule = RActivity(ContextRegistry(default=Context(),
                                            label="empty-contexts"))
    print("   ", flatten(book, readers[0], broken_rule))
    print("   (⊥ marks embedded names that no longer resolve)")


if __name__ == "__main__":
    main()
